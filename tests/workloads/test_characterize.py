"""Tests for workload characterization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hints import RefForm, SemanticHints
from repro.workloads.characterize import characterize
from repro.workloads.trace import MemoryAccess, TraceBuilder


def make_trace(addrs, **kwargs):
    tb = TraceBuilder()
    for addr in addrs:
        tb.load(addr, "x", **kwargs)
    return tb.accesses


class TestBasicCounts:
    def test_accesses_and_instructions(self):
        profile = characterize(make_trace([0x1000, 0x2000], gap=4))
        assert profile.accesses == 2
        assert profile.instructions == 10
        assert profile.memory_intensity == pytest.approx(0.2)

    def test_unique_lines_and_footprint(self):
        profile = characterize(make_trace([0x1000, 0x1008, 0x2000]))
        assert profile.unique_lines == 2
        assert profile.footprint_bytes == 128

    def test_empty_trace(self):
        profile = characterize([])
        assert profile.accesses == 0
        assert profile.memory_intensity == 0.0
        assert profile.cold_fraction == 0.0


class TestFractions:
    def test_dependent_fraction(self):
        tb = TraceBuilder()
        tb.load(0x1000, "a")
        tb.load(0x2000, "b", depends=True)
        profile = characterize(tb.accesses)
        assert profile.dependent_fraction == pytest.approx(0.5)

    def test_hinted_fraction(self):
        tb = TraceBuilder()
        tb.load(0x1000, "a", hints=SemanticHints(type_id=1, ref_form=RefForm.ARROW))
        tb.load(0x2000, "b")
        profile = characterize(tb.accesses)
        assert profile.hinted_fraction == pytest.approx(0.5)

    def test_store_fraction(self):
        tb = TraceBuilder()
        tb.load(0x1000, "a")
        tb.store(0x2000, "b")
        profile = characterize(tb.accesses)
        assert profile.store_fraction == pytest.approx(0.5)

    def test_branch_rate(self):
        tb = TraceBuilder()
        tb.branch(True)
        tb.branch(False)
        tb.load(0x1000, "a")
        tb.load(0x2000, "b")
        profile = characterize(tb.accesses)
        assert profile.branch_rate == pytest.approx(1.0)


class TestStrides:
    def test_dominant_unit_stride(self):
        profile = characterize(make_trace([0x1000 + 8 * i for i in range(100)]))
        assert profile.dominant_stride() == 8
        assert profile.top_strides[0] == (8, pytest.approx(1.0))

    def test_no_dominant_stride_on_random(self):
        import random

        rng = random.Random(3)
        addrs = [rng.randrange(1, 1 << 28) * 8 for _ in range(200)]
        profile = characterize(make_trace(addrs))
        assert profile.dominant_stride() is None


class TestReuse:
    def test_streaming_trace_is_cold(self):
        profile = characterize(make_trace([0x1000 + 64 * i for i in range(200)]))
        assert profile.cold_fraction == pytest.approx(1.0)

    def test_hot_loop_has_tiny_reuse_distance(self):
        addrs = [0x1000 + 64 * (i % 4) for i in range(400)]
        profile = characterize(make_trace(addrs))
        assert profile.cold_fraction < 0.05
        assert profile.reuse_p90 <= 4

    def test_large_loop_has_large_reuse_distance(self):
        addrs = [0x1000 + 64 * (i % 256) for i in range(1024)]
        profile = characterize(make_trace(addrs))
        assert profile.reuse_p50 == pytest.approx(256, rel=0.05)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=300))
    def test_reuse_distances_bounded_by_footprint(self, line_ids):
        addrs = [0x1000 + 64 * i for i in line_ids]
        profile = characterize(make_trace(addrs), reuse_sample_every=1)
        assert profile.reuse_p90 <= profile.unique_lines


class TestProxyProfilesHonest:
    def test_pointer_proxy_is_dependent(self):
        from repro.workloads.spec_proxy import SpecProxyProgram

        profile = characterize(SpecProxyProgram("mcf", num_accesses=3000).trace())
        assert profile.dependent_fraction > 0.5

    def test_streaming_proxy_has_unit_stride(self):
        from repro.workloads.spec_proxy import SpecProxyProgram

        profile = characterize(
            SpecProxyProgram("libquantum", num_accesses=3000).trace()
        )
        assert profile.dominant_stride() == 8

    def test_memory_intensity_tracks_profile(self):
        from repro.workloads.spec_proxy import SPEC_PROFILES, SpecProxyProgram

        for name in ("sjeng", "lbm"):
            profile = characterize(SpecProxyProgram(name, num_accesses=3000).trace())
            declared = SPEC_PROFILES[name].mem_ratio
            assert profile.memory_intensity == pytest.approx(declared, rel=0.35)
