"""Tests for the Context-States Table."""

from hypothesis import given, settings, strategies as st

from repro.core.config import ContextPrefetcherConfig
from repro.core.cst import ContextStatesTable


def make_cst(**overrides) -> ContextStatesTable:
    return ContextStatesTable(ContextPrefetcherConfig(**overrides))


KEY = 0x12345  # any 19-bit reduced hash


class TestAssociations:
    def test_add_then_lookup(self):
        cst = make_cst()
        assert cst.add_association(KEY, delta=5)
        entry = cst.lookup(KEY)
        assert entry is not None
        assert entry.find(5).score == 0

    def test_duplicate_delta_not_duplicated(self):
        cst = make_cst()
        cst.add_association(KEY, 5)
        cst.add_association(KEY, 5)
        assert len(cst.lookup(KEY).candidates) == 1

    def test_at_most_four_links(self):
        cst = make_cst()
        for delta in range(1, 10):
            cst.add_association(KEY, delta)
        assert len(cst.lookup(KEY).candidates) <= 4

    def test_out_of_range_delta_rejected(self):
        cst = make_cst()
        assert not cst.add_association(KEY, 128)  # beyond +127
        assert not cst.add_association(KEY, -129)
        assert cst.associations_rejected_range == 2

    def test_extreme_valid_deltas_accepted(self):
        cst = make_cst()
        assert cst.add_association(KEY, 127)
        assert cst.add_association(KEY, -128)


class TestScoreBasedReplacement:
    def test_zero_score_victim_replaced(self):
        cst = make_cst()
        for delta in (1, 2, 3, 4):
            cst.add_association(KEY, delta)
        assert cst.add_association(KEY, 9)  # all scores 0 <= threshold
        assert cst.lookup(KEY).find(9) is not None

    def test_rewarded_candidates_survive(self):
        cst = make_cst()
        for delta in (1, 2, 3, 4):
            cst.add_association(KEY, delta)
            cst.apply_reward(KEY, delta, +5)
        assert not cst.add_association(KEY, 9)
        assert cst.associations_rejected_full == 1

    def test_demoted_candidate_becomes_victim(self):
        cst = make_cst()
        for delta in (1, 2, 3, 4):
            cst.add_association(KEY, delta)
            cst.apply_reward(KEY, delta, +5)
        cst.apply_reward(KEY, 3, -10)  # score -5
        assert cst.add_association(KEY, 9)
        entry = cst.lookup(KEY)
        assert entry.find(3) is None
        assert entry.find(9) is not None


class TestRewards:
    def test_reward_accumulates(self):
        cst = make_cst()
        cst.add_association(KEY, 5)
        cst.apply_reward(KEY, 5, 3)
        cst.apply_reward(KEY, 5, 2)
        assert cst.lookup(KEY).find(5).score == 5

    def test_score_saturates_both_ways(self):
        cst = make_cst()
        cst.add_association(KEY, 5)
        for _ in range(100):
            cst.apply_reward(KEY, 5, 8)
        assert cst.lookup(KEY).find(5).score == 127
        for _ in range(100):
            cst.apply_reward(KEY, 5, -8)
        assert cst.lookup(KEY).find(5).score == -128

    def test_reward_for_missing_entry_is_noop(self):
        cst = make_cst()
        assert not cst.apply_reward(KEY, 5, 3)

    def test_reward_for_missing_delta_is_noop(self):
        cst = make_cst()
        cst.add_association(KEY, 5)
        assert not cst.apply_reward(KEY, 7, 3)


class TestIndexing:
    def test_split_key_partition(self):
        cst = make_cst()
        index, tag = cst.split_key(0x7FFFF)
        assert index < 2048
        assert tag < 256

    def test_tag_conflict_evicts(self):
        cst = make_cst()
        other = KEY + 2048  # same index, different tag
        cst.add_association(KEY, 5)
        cst.add_association(other, 6)
        assert cst.lookup(KEY) is None
        assert cst.lookup(other) is not None
        assert cst.conflict_evictions == 1

    def test_ranked_orders_by_score(self):
        cst = make_cst()
        cst.add_association(KEY, 1)
        cst.add_association(KEY, 2)
        cst.apply_reward(KEY, 2, 5)
        ranked = cst.lookup(KEY).ranked()
        assert [c.delta for c in ranked] == [2, 1]


class TestPointerAccounting:
    def test_add_remove_pointer(self):
        cst = make_cst()
        cst.add_pointer(KEY)
        cst.add_pointer(KEY)
        assert cst.pointer_count(KEY) == 2
        cst.remove_pointer(KEY)
        assert cst.pointer_count(KEY) == 1

    def test_remove_never_goes_negative(self):
        cst = make_cst()
        cst.add_pointer(KEY)
        cst.remove_pointer(KEY)
        cst.remove_pointer(KEY)
        assert cst.pointer_count(KEY) == 0


class TestDeltaOf:
    def test_line_granularity_scaling(self):
        cst = make_cst()  # 32B blocks, 64B delta granularity
        assert cst.delta_of(context_block=0, target_block=4) == 2

    def test_same_line_rejected(self):
        cst = make_cst()
        assert cst.delta_of(0, 1) is None  # both blocks in line 0

    def test_out_of_reach_rejected(self):
        cst = make_cst()
        assert cst.delta_of(0, 2 * 300) is None  # 300 lines away

    @settings(max_examples=50)
    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_delta_reconstructs_target_line(self, ctx, tgt):
        cst = make_cst()
        delta = cst.delta_of(ctx, tgt)
        if delta is not None:
            assert ctx // 2 + delta == tgt // 2


class TestReset:
    def test_reset_clears(self):
        cst = make_cst()
        cst.add_association(KEY, 5)
        cst.reset()
        assert cst.lookup(KEY) is None
        assert cst.occupancy() == 0
