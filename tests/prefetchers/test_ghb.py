"""Tests for the GHB delta-correlation prefetcher."""

import pytest

from repro.prefetchers.base import AccessInfo
from repro.prefetchers.ghb import GHBConfig, GHBPrefetcher


def miss(index, addr, pc=0x400000):
    return AccessInfo(index=index, cycle=0, addr=addr, pc=pc, primary_miss=True)


def feed(pf, addrs, pc=0x400000):
    reqs = []
    for i, addr in enumerate(addrs):
        reqs = pf.on_access(miss(i, addr, pc=pc))
    return reqs


class TestConfig:
    def test_rejects_unknown_localization(self):
        with pytest.raises(ValueError):
            GHBConfig(localization="banana")

    def test_rejects_zero_match_length(self):
        with pytest.raises(ValueError):
            GHBConfig(match_length=0)

    def test_flavour_names(self):
        assert GHBPrefetcher(GHBConfig(localization="global")).name == "ghb-gdc"
        assert GHBPrefetcher(GHBConfig(localization="pc")).name == "ghb-pcdc"


class TestDeltaCorrelation:
    def test_unit_line_stride_replays(self):
        pf = GHBPrefetcher(GHBConfig(match_length=2, degree=3))
        # line stride of 64: deltas (64, 64) recur
        reqs = feed(pf, [0x1000 + i * 64 for i in range(8)])
        assert [r.addr for r in reqs] == [0x1000 + 8 * 64, 0x1000 + 9 * 64, 0x1000 + 10 * 64]

    def test_alternating_delta_pattern(self):
        pf = GHBPrefetcher(GHBConfig(match_length=2, degree=2))
        # pattern +64, +192 repeating: addresses 0, 64, 256, 320, 512, ...
        addrs = [0x10000]
        for i in range(9):
            addrs.append(addrs[-1] + (64 if i % 2 == 0 else 192))
        reqs = feed(pf, addrs)
        expected_next = addrs[-1] + (64 if len(addrs) % 2 == 1 else 192)
        assert reqs and reqs[0].addr == expected_next

    def test_no_match_no_prefetch(self):
        pf = GHBPrefetcher(GHBConfig(match_length=3))
        reqs = feed(pf, [0x1000, 0x5000, 0x2000, 0x9000, 0x3000])
        assert reqs == []

    def test_needs_enough_history(self):
        pf = GHBPrefetcher(GHBConfig(match_length=3))
        assert feed(pf, [0x1000 + i * 64 for i in range(3)]) == []


class TestLocalization:
    def test_pc_localization_separates_streams(self):
        pf = GHBPrefetcher(GHBConfig(localization="pc", match_length=2))
        # interleave two streams at different PCs; each is clean per-PC
        reqs_a = reqs_b = []
        for i in range(8):
            reqs_a = pf.on_access(miss(2 * i, 0x1000 + i * 64, pc=0x100))
            reqs_b = pf.on_access(miss(2 * i + 1, 0x90000 + i * 128, pc=0x200))
        assert reqs_a and reqs_a[0].addr == 0x1000 + 8 * 64
        assert reqs_b and reqs_b[0].addr == 0x90000 + 8 * 128

    def test_global_localization_sees_interleaved_mess(self):
        pf = GHBPrefetcher(GHBConfig(localization="global", match_length=2))
        reqs_last = []
        for i in range(8):
            pf.on_access(miss(2 * i, 0x1000 + i * 64, pc=0x100))
            reqs_last = pf.on_access(miss(2 * i + 1, 0x90000 + i * 128, pc=0x200))
        # the interleaved global deltas still form a repeating pattern, so
        # G/DC may fire -- but targets interleave both streams
        if reqs_last:
            assert reqs_last[0].addr != 0x1000 + 8 * 64 or len(reqs_last) > 0


class TestBufferManagement:
    def test_wraparound_discards_stale_links(self):
        pf = GHBPrefetcher(GHBConfig(ghb_entries=8, match_length=2))
        # push far more than capacity; must not crash or loop
        feed(pf, [0x1000 + i * 64 for i in range(100)])

    def test_miss_only_filter(self):
        pf = GHBPrefetcher()
        for i in range(10):
            assert (
                pf.on_access(
                    AccessInfo(index=i, cycle=0, addr=0x1000 + i * 64, pc=0, l1_hit=True)
                )
                == []
            )

    def test_reset(self):
        pf = GHBPrefetcher(GHBConfig(match_length=2))
        feed(pf, [0x1000 + i * 64 for i in range(8)])
        pf.reset()
        assert feed(pf, [0x2000, 0x2040]) == []

    def test_storage_bits_positive(self):
        assert GHBPrefetcher().storage_bits() > 0


class TestLineGranularity:
    def test_sub_line_offsets_are_canonicalised(self):
        pf = GHBPrefetcher(GHBConfig(match_length=2))
        # same line stream with ragged byte offsets
        reqs = feed(pf, [0x1000 + i * 64 + (i % 2) * 8 for i in range(8)])
        assert reqs and reqs[0].addr % 64 == 0
