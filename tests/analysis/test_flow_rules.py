"""FLW family: hot-loop allocation/hoisting/enum rules and silent degrades."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze, load_project
from repro.analysis.rules.flow import HotPathDataflowRule


def run_flow(
    root: Path,
    files: dict[str, str],
    hot_targets=(("hot.py", "kernel"),),
    degrade_scope=(),
) -> list:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    project = load_project(root, manifest={})
    rule = HotPathDataflowRule(
        hot_targets=tuple(hot_targets), degrade_scope=tuple(degrade_scope)
    )
    return analyze(project=project, rules=[rule])


class TestFlw001Allocation:
    def test_container_displays_and_class_instantiation(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                class Thing:
                    pass

                def kernel(items, out):
                    for x in items:
                        d = {"a": x}
                        s = [y for y in (x,)]
                        t = Thing()
                        out.extend((d, s, t))
                    return out
                """
            },
        )
        flw1 = [f for f in findings if f.rule == "FLW001"]
        labels = sorted(f.message.split(" inside")[0] for f in flw1)
        assert labels == [
            "Thing() instantiation",
            "comprehension",
            "dict display",
        ]

    def test_tuples_and_preloop_allocation_are_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                def kernel(items):
                    out = []
                    append = out.append
                    total = 0
                    for x in items:
                        pair = (x, x + 1)
                        append(pair)
                        total += x
                    return out, total
                """
            },
        )
        assert [f for f in findings if f.rule == "FLW001"] == []

    def test_raise_paths_are_exempt(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                def kernel(items):
                    total = 0
                    for x in items:
                        if x < 0:
                            raise ValueError(f"negative input: {x}")
                        total += x
                    return total
                """
            },
        )
        assert [f for f in findings if f.rule == "FLW001"] == []


class TestFlw002Unhoisted:
    def test_loop_invariant_method_call_is_flagged(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                def kernel(items, sink):
                    for x in items:
                        sink.push(x)
                """
            },
        )
        assert [f.rule for f in findings] == ["FLW002"]
        assert "push = sink.push" in findings[0].message

    def test_hoisted_and_loop_bound_receivers_are_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                def kernel(batches, sink):
                    push = sink.push
                    for batch in batches:
                        push(batch.finalize())
                """
            },
        )
        # push() is a hoisted Name call; batch is bound by the loop
        assert findings == []

    def test_small_postprocessing_loop_is_not_the_hot_loop(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                def kernel(items, sink):
                    push = sink.push
                    for x in items:
                        a = x + 1
                        b = a * 2
                        c = b - x
                        push(c)
                    for leftover in sink.drain():
                        sink.log(leftover)
                """
            },
        )
        # only the dominant loop is audited; the drain loop is teardown
        assert findings == []


class TestFlw003EnumOps:
    def test_enum_compare_alias_and_subscript(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                import enum

                class Kind(enum.Enum):
                    A = 1
                    B = 2

                def kernel(items, counts):
                    ka = Kind.A
                    n = 0
                    for x in items:
                        if x == Kind.A:
                            n += 1
                        if x != ka:
                            counts[ka] += 1
                    return n
                """
            },
        )
        rules = [f.rule for f in findings]
        assert rules.count("FLW003") == 3  # direct ==, alias !=, subscript

    def test_identity_checks_are_clean(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "hot.py": """
                import enum

                class Kind(enum.Enum):
                    A = 1
                    B = 2

                def kernel(items):
                    ka = Kind.A
                    n = 0
                    for x in items:
                        if x is ka:
                            n += 1
                    return n
                """
            },
        )
        assert findings == []


class TestFlw004SilentDegrade:
    def test_silent_handler_flagged_logged_and_miss_exempt(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "store.py": """
                import logging

                log = logging.getLogger(__name__)

                def load(path):
                    try:
                        return open(path).read()
                    except FileNotFoundError:
                        return None
                    except OSError:
                        return ""

                def load_logged(path):
                    try:
                        return open(path).read()
                    except OSError as exc:
                        log.warning("degraded: %s", exc)
                        return ""

                def load_raising(path):
                    try:
                        return open(path).read()
                    except OSError as exc:
                        raise RuntimeError(path) from exc
                """
            },
            hot_targets=(),
            degrade_scope=("store.py",),
        )
        assert [f.rule for f in findings] == ["FLW004"]
        assert "except (OSError)" in findings[0].message

    def test_out_of_scope_files_are_ignored(self, tmp_path):
        findings = run_flow(
            tmp_path,
            {
                "other.py": """
                def load(path):
                    try:
                        return open(path).read()
                    except OSError:
                        return ""
                """
            },
            hot_targets=(),
            degrade_scope=("store.py",),
        )
        assert findings == []
