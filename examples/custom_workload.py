"""Bring your own workload: a skip-list search under every prefetcher.

The paper's thesis is that *semantic* locality — not layout — determines
predictability.  This example defines a workload the paper never
evaluated (a skip list, the classic probabilistic search structure) using
the public ``TraceProgram``/``TraceBuilder`` API, and runs the full
prefetcher line-up over it.  Skip-list searches descend express lanes and
then walk the dense bottom lane: semantically structured, spatially
scattered — exactly the regime the context prefetcher targets.

Run:  python examples/custom_workload.py
"""

import random

from repro import PREFETCHER_FACTORIES, compare
from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

NODE_BYTES = 64  # key @0, forward pointers @16, @24, @32, @40
KEY_OFFSET = 0
LEVEL_OFFSET = 16
MAX_LEVEL = 4


class _SkipNode:
    __slots__ = ("addr", "key", "forward")

    def __init__(self, addr: int, key: int, level: int):
        self.addr = addr
        self.key = key
        self.forward: list["_SkipNode | None"] = [None] * level


class SkipListSearchProgram(TraceProgram):
    """Build a skip list on a churned heap, then run random searches."""

    name = "skiplist"
    suite = "custom"

    def __init__(self, *, num_keys=2048, num_searches=2500, seed=7):
        super().__init__(seed=seed)
        self.num_keys = num_keys
        self.num_searches = num_searches

    def _build_list(self, heap: Heap, rng: random.Random) -> _SkipNode:
        head = _SkipNode(heap.alloc(NODE_BYTES), key=-1, level=MAX_LEVEL)
        keys = sorted(rng.sample(range(1 << 20), self.num_keys))
        # insert in random order so heap position is unrelated to key order
        for key in rng.sample(keys, len(keys)):
            level = 1
            while level < MAX_LEVEL and rng.random() < 0.25:
                level += 1
            node = _SkipNode(heap.alloc(NODE_BYTES), key, level)
            update = head
            for lvl in reversed(range(level)):
                while (
                    lvl < len(update.forward)
                    and update.forward[lvl] is not None
                    and update.forward[lvl].key < key
                ):
                    update = update.forward[lvl]
                node.forward[lvl] = update.forward[lvl] if lvl < len(update.forward) else None
                update.forward[lvl] = node
        self._keys = keys
        return head

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(placement="shuffled", seed=self.seed)
        tb = TraceBuilder()
        head = self._build_list(heap, rng)
        fwd_hints = [
            tb.pointer_hints("skip_node", LEVEL_OFFSET + 8 * lvl)
            for lvl in range(MAX_LEVEL)
        ]

        for _ in range(self.num_searches):
            key = rng.choice(self._keys)
            node = head
            for lvl in reversed(range(MAX_LEVEL)):
                while True:
                    nxt = node.forward[lvl] if lvl < len(node.forward) else None
                    tb.load(
                        node.addr + LEVEL_OFFSET + 8 * lvl,
                        f"skip.fwd{lvl}",
                        value=nxt.addr if nxt else 0,
                        depends=True,
                        reg_value=key,
                        hints=fwd_hints[lvl],
                        gap=1,
                    )
                    advance = nxt is not None and nxt.key < key
                    tb.branch(advance)
                    if not advance:
                        break
                    node = nxt
                    tb.load(
                        node.addr + KEY_OFFSET,
                        "skip.key",
                        value=node.key,
                        depends=True,
                        reg_value=key,
                        gap=1,
                    )
        return tb


def main() -> None:
    program = SkipListSearchProgram()
    prefetchers = tuple(PREFETCHER_FACTORIES)
    print(f"skip list: {program.num_keys} keys, {program.num_searches} searches")
    print("running all prefetchers (this takes a minute) ...")
    results = compare([program], prefetchers)

    base = results.get("skiplist", "none")
    print()
    print(f"{'prefetcher':10s} {'IPC':>7s} {'speedup':>8s} {'L1 MPKI':>8s}")
    for pf in prefetchers:
        r = results.get("skiplist", pf)
        print(
            f"{pf:10s} {r.ipc:7.3f} {r.speedup_over(base):7.2f}x "
            f"{r.l1_mpki:8.1f}"
        )


if __name__ == "__main__":
    main()
