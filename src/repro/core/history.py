"""The history queue of recently observed contexts (collection unit).

Section 5: "the current context is pushed to the History Queue, which
stores the sequence of observed contexts that are waiting to be associated
with impending memory addresses."  To avoid a fully-associative search,
the queue is sampled at a fixed set of depths spanning the prefetch window
(probabilistic lookup, after Etsion & Feitelson / Qureshi et al.).

Implemented as a ring buffer so that sampling a depth is O(1).
"""

from __future__ import annotations

from typing import NamedTuple


class HistoryRecord(NamedTuple):
    """One past context: its reduced CST key and the block it accessed.

    A named tuple: one is pushed per demand access and the records are
    read-only once in the ring.
    """

    reduced_hash: int
    block: int  # at the prefetcher's tracking granularity
    line: int  # at the delta (cache line) granularity
    index: int  # position in the demand-access stream


class HistoryQueue:
    """Bounded ring of context observations with O(1) depth sampling."""

    __slots__ = ("capacity", "sample_depths", "_ring", "_count")

    def __init__(self, capacity: int, sample_depths: tuple[int, ...]):
        if capacity < 1:
            raise ValueError("history queue needs capacity >= 1")
        bad = [d for d in sample_depths if d < 1 or d > capacity]
        if bad:
            raise ValueError(f"sample depths out of range: {bad}")
        self.capacity = capacity
        self.sample_depths = tuple(sorted(set(sample_depths)))
        self._ring: list[HistoryRecord | None] = [None] * capacity
        self._count = 0  # total records ever pushed

    def push(self, record: HistoryRecord) -> None:
        self._ring[self._count % self.capacity] = record
        self._count += 1

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    def sample(self) -> list[HistoryRecord]:
        """Contexts at the configured depths, shallowest first.

        Depth 1 is the most recently pushed record; depths beyond the
        current occupancy yield nothing.
        """
        count = self._count
        cap = self.capacity
        ring = self._ring
        return [
            ring[(count - depth) % cap]
            for depth in self.sample_depths
            if depth <= count
        ]

    def at_depth(self, depth: int) -> HistoryRecord | None:
        """The record ``depth`` pushes ago (1 = newest), if present."""
        if depth < 1 or depth > min(self._count, self.capacity):
            return None
        return self._ring[(self._count - depth) % self.capacity]

    def newest(self) -> HistoryRecord | None:
        return self.at_depth(1)

    def reset(self) -> None:
        self._ring = [None] * self.capacity
        self._count = 0
