"""The profiling harness, in both kernel modes.

The deterministic layer (per-unit event counters and the result) must be
identical between the interpreted and native runs — the harness reads
native counters from the result block rather than the untouched Python
components, and any divergence would mean the two kernels disagree.  The
timing layer differs by construction: the native report attributes time
to the decode/kernel/finalize phases.
"""

from __future__ import annotations

import pytest

from repro.sim import native as native_pkg
from repro.sim.profile import ProfileReport, profile_run, render


def _require_native() -> None:
    if not native_pkg.is_available():
        pytest.skip("compiled kernel unavailable (numpy/cffi/toolchain)")


class TestInterpretedMode:
    def test_report_structure(self):
        report = profile_run("mcf", "stride", limit=800, top=5)
        assert isinstance(report, ProfileReport)
        assert not report.native and not report.native_phases
        assert "memory" in report.units and "prediction" in report.units
        # interpreted reports include the MSHR counters
        assert "mshr_merges" in report.units["memory"]
        text = render(report)
        assert "interpreted" in text
        assert "cProfile" in text

    def test_no_cprofile_skips_timing(self):
        report = profile_run("mcf", "stride", limit=500, with_cprofile=False)
        assert report.timing_table == ""
        assert "cProfile" not in render(report)


class TestNativeMode:
    def test_native_counters_match_interpreted(self):
        _require_native()
        base = profile_run("mcf", "stride", limit=800, with_cprofile=False)
        nat = profile_run(
            "mcf", "stride", limit=800, with_cprofile=False, native=True
        )
        assert nat.native and not base.native
        assert nat.result == base.result
        # the shared counters agree; only the interpreted-side extras
        # (MSHR merge counts, not exported by the kernel) may differ
        for unit, counters in nat.units.items():
            for name, value in counters.items():
                assert base.units[unit][name] == value, f"{unit}/{name}"

    def test_native_phase_timings_reported(self):
        _require_native()
        report = profile_run("mcf", "stride", limit=800, top=5, native=True)
        assert report.native
        assert set(report.native_phases) == {
            "phase_decode", "phase_kernel", "phase_finalize"
        }
        assert all(t >= 0.0 for t in report.native_phases.values())
        text = render(report)
        assert "native kernel" in text
        assert "native phase timings" in text
        assert "phase_kernel" in text

    def test_native_context_reports_rl_counter_block(self):
        _require_native()
        # the RL context prefetcher runs natively; the report must carry
        # the kernel-side bandit/CST/reward counters and they must equal
        # the interpreted components counter-for-counter
        base = profile_run("mcf", "context", limit=500, with_cprofile=False)
        nat = profile_run(
            "mcf", "context", limit=500, with_cprofile=False, native=True
        )
        assert nat.native and not base.native
        assert nat.result == base.result
        for unit in ("feedback", "collection", "reduction"):
            assert nat.units[unit] == base.units[unit], unit
        for name in ("explorations", "exploitations", "prefetches_issued"):
            assert (
                nat.units["prediction"][name] == base.units["prediction"][name]
            ), name
        # native-only extras read off the kernel handle
        assert "predictions_real" in nat.units["prediction"]
        assert "window_updates" in nat.units["prediction"]

    def test_native_context_phase_timings(self):
        _require_native()
        report = profile_run("mcf", "context", limit=500, top=5, native=True)
        assert report.native
        assert set(report.native_phases) == {
            "phase_decode", "phase_kernel", "phase_finalize"
        }
        text = render(report)
        assert "native kernel" in text
