"""Configuration for the context-based prefetcher.

Defaults reproduce Table 2 of the paper: a 2K-entry × 4-link CST (18kB), a
16K-entry reducer (12kB), a 50-entry history queue, a 128-entry prefetch
queue — ~31kB of storage in total — plus the Section 4 learning knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attributes import DEFAULT_ACTIVE, Attribute


@dataclass(slots=True)
class ContextPrefetcherConfig:
    # ------------------------------------------------------------------
    # table geometry (Table 2 / Figure 7)
    cst_entries: int = 2048
    cst_links: int = 4  # candidate (delta, score) pairs per entry
    cst_tag_bits: int = 8
    reducer_entries: int = 16384
    reducer_tag_bits: int = 2
    full_hash_bits: int = 16  # lower bits index reducer, upper bits tag
    reduced_hash_bits: int = 19  # lower bits index CST, upper bits tag
    history_entries: int = 50
    prefetch_queue_entries: int = 128

    # ------------------------------------------------------------------
    # address granularity (Sections 5 and 7.3)
    block_bytes: int = 32  # granularity the prefetcher tracks addresses at
    delta_granularity: int = 64  # bytes per stored delta unit (cache line)
    delta_bits: int = 8  # signed; ±127 lines ≈ ±8kB, per Section 5

    # ------------------------------------------------------------------
    # reward function (Section 4.3 / Figure 5)
    window_lo: int = 18  # accesses; start of the positive bell
    window_hi: int = 50  # accesses; end of the positive bell
    window_center: int = 30  # the average target prefetch distance
    reward_peak: int = 8
    late_penalty: int = -1  # hit closer than window_lo (prefetch too late)
    early_penalty: int = -2  # hit beyond window_hi or expired (too early)

    # ------------------------------------------------------------------
    # scores and replacement
    score_min: int = -128
    score_max: int = 127
    initial_score: int = 0
    #: a stored candidate is only replaced when its score is <= this
    replace_threshold: int = 0
    #: minimum score for a candidate to be eligible for a *real* prefetch;
    #: 0 lets unproven (fresh) candidates be tried, as Algorithm 1 pushes
    #: the max-score candidate unconditionally, while negatives stay out
    prefetch_score_threshold: int = 0

    # ------------------------------------------------------------------
    # collection (probabilistic history-queue sampling, Section 5)
    sample_depths: tuple[int, ...] = (18, 26, 34, 42, 50)

    # ------------------------------------------------------------------
    # exploration (ε-greedy with Tokic-style adaptation, Section 4.1)
    epsilon_min: float = 0.01
    epsilon_max: float = 0.20
    accuracy_ema_alpha: float = 0.01
    shadow_probability: float = 0.10  # extra shadow prefetch per prediction
    seed: int = 0x5EED

    # ------------------------------------------------------------------
    # throttling (Section 4.2)
    max_degree: int = 4
    #: accuracy thresholds mapping hit-rate EMA to prefetch degree 1..max
    degree_thresholds: tuple[float, ...] = (0.2, 0.45, 0.7)
    mshr_reserve: int = 1  # L1 MSHRs kept free for demand misses

    # ------------------------------------------------------------------
    # online feature selection (Section 4.4)
    initial_attributes: tuple[Attribute, ...] = field(
        default_factory=lambda: DEFAULT_ACTIVE
    )
    overload_refs: int = 8  # reducer entries per CST entry → activate
    overload_check_period: int = 4  # lookups between adaptation checks
    underload_lookups: int = 256  # lookups before underload may trigger
    adaptive_reduction: bool = True  # ablation switch: Reducer on/off

    # ------------------------------------------------------------------
    # ablation switches
    shadow_prefetches: bool = True
    adaptive_epsilon: bool = True
    fixed_epsilon: float = 0.05  # used when adaptive_epsilon is False
    reward_shape: str = "bell"  # or "flat" (ablation: no bell)

    # ------------------------------------------------------------------
    # extensions (the paper's future-work directions, Section 8)
    #: action selection: the paper's ε-greedy, or Boltzmann exploration
    #: ("policy improvement techniques in the spirit of policy search")
    policy: str = "egreedy"  # or "softmax"
    softmax_temperature: float = 4.0  # score units; anneals with accuracy
    #: recenter the reward bell on the observed hit-depth average instead
    #: of the fixed ~30-access workload mean ("the target prefetch
    #: distance varies for different workloads", Section 4.3)
    adaptive_window: bool = False
    window_update_period: int = 2048  # feedback events between updates
    window_center_bounds: tuple[int, int] = (12, 90)

    def __post_init__(self) -> None:
        if self.cst_entries & (self.cst_entries - 1):
            raise ValueError("cst_entries must be a power of two")
        if self.reducer_entries & (self.reducer_entries - 1):
            raise ValueError("reducer_entries must be a power of two")
        if self.window_lo >= self.window_hi:
            raise ValueError("reward window is empty")
        if not self.window_lo <= self.window_center <= self.window_hi:
            raise ValueError("window_center must lie inside the window")
        if self.prefetch_queue_entries < self.window_hi:
            raise ValueError(
                "prefetch queue must out-span the reward window "
                "(Section 5: the queue tracks too-early prefetches)"
            )
        if max(self.sample_depths) > self.history_entries:
            raise ValueError("sample depths exceed the history queue depth")
        if self.reward_shape not in ("bell", "flat"):
            raise ValueError(f"unknown reward shape {self.reward_shape!r}")
        if self.policy not in ("egreedy", "softmax"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.softmax_temperature <= 0:
            raise ValueError("softmax temperature must be positive")

    # ------------------------------------------------------------------

    @property
    def delta_max(self) -> int:
        """Largest storable positive delta, in delta-granularity units."""
        return (1 << (self.delta_bits - 1)) - 1

    @property
    def delta_min(self) -> int:
        return -(1 << (self.delta_bits - 1))

    def storage_bits(self) -> int:
        """Hardware budget of this configuration (Table 2 audit)."""
        link_bits = self.delta_bits + 8  # delta + score per link
        cst_entry_bits = self.cst_tag_bits + self.cst_links * link_bits
        cst_bits = self.cst_entries * cst_entry_bits
        reducer_bits = self.reducer_entries * (self.reducer_tag_bits + 8)
        history_bits = self.history_entries * self.reduced_hash_bits
        queue_bits = self.prefetch_queue_entries * (
            self.reduced_hash_bits + 48 + 8
        )  # context key + address + bookkeeping
        return cst_bits + reducer_bits + history_bits + queue_bits

    def scaled(self, cst_entries: int) -> "ContextPrefetcherConfig":
        """A copy with a different CST size and reducer at 8× (Figure 13)."""
        from dataclasses import replace

        return replace(
            self,
            cst_entries=cst_entries,
            reducer_entries=cst_entries * 8,
        )
