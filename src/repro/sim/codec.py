"""Versioned, lossless :class:`SimulationResult` codec.

The parallel sweep engine ships results across process boundaries and
the on-disk result cache persists them between runs; both paths go
through this codec, so a decoded result must compare equal — field for
field, dataclass ``==`` — to the result the simulator produced.  The
determinism-parity suite (``tests/sim/test_parallel_parity.py``)
enforces exactly that.

``CODEC_VERSION`` is bumped on any schema change.  The cache treats a
version mismatch as a miss (re-simulate), never as an error, so stale
cache directories degrade to a cold start rather than a crash.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping

from repro.memory.stats import ACCESS_CLASS_ORDER, AccessClassifier, CacheStats
from repro.sim.metrics import HitDepthCDF, SimulationResult

#: schema version of the encoded form; bump on any field change
CODEC_VERSION = 1

_CACHE_STATS_FIELDS = (
    "name",
    "accesses",
    "hits",
    "misses",
    "prefetch_fills",
    "demand_fills",
)


class CodecError(ValueError):
    """An encoded result cannot be decoded (wrong version or shape)."""


def _encode_cache_stats(stats: CacheStats) -> dict[str, Any]:
    return {name: getattr(stats, name) for name in _CACHE_STATS_FIELDS}


def _decode_cache_stats(data: Mapping[str, Any]) -> CacheStats:
    try:
        return CacheStats(**{name: data[name] for name in _CACHE_STATS_FIELDS})
    except (KeyError, TypeError) as exc:
        raise CodecError(f"malformed cache-stats record: {exc}") from exc


def encode_result(result: SimulationResult) -> dict[str, Any]:
    """Encode one run into a JSON-serializable dict (version-stamped)."""
    return {
        "codec": CODEC_VERSION,
        "workload": result.workload,
        "prefetcher": result.prefetcher,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "l1": _encode_cache_stats(result.l1),
        "l2": _encode_cache_stats(result.l2),
        "classifier": {
            "demand_accesses": result.classifier.demand_accesses,
            "counts": {
                cls.name: result.classifier.counts[cls]
                for cls in ACCESS_CLASS_ORDER
            },
        },
        # JSON keys must be strings; depths decode back through int()
        "hit_depths": {
            str(depth): count
            for depth, count in sorted(result.hit_depths.histogram.items())
        },
        "prefetches_issued": result.prefetches_issued,
        "prefetches_shadow": result.prefetches_shadow,
        "prefetches_rejected": result.prefetches_rejected,
        "prefetches_redundant": result.prefetches_redundant,
        "prefetcher_accuracy": result.prefetcher_accuracy,
        "storage_bits": result.storage_bits,
    }


def decode_result(data: Mapping[str, Any]) -> SimulationResult:
    """Inverse of :func:`encode_result`; raises :class:`CodecError`."""
    version = data.get("codec")
    if version != CODEC_VERSION:
        raise CodecError(
            f"encoded result has codec version {version!r}; "
            f"this build reads version {CODEC_VERSION}"
        )
    try:
        classifier = AccessClassifier(
            counts={
                cls: int(data["classifier"]["counts"][cls.name])
                for cls in ACCESS_CLASS_ORDER
            },
            demand_accesses=int(data["classifier"]["demand_accesses"]),
        )
        hit_depths = HitDepthCDF(
            histogram=Counter(
                {int(depth): int(count) for depth, count in data["hit_depths"].items()}
            )
        )
        return SimulationResult(
            workload=data["workload"],
            prefetcher=data["prefetcher"],
            instructions=int(data["instructions"]),
            cycles=int(data["cycles"]),
            l1=_decode_cache_stats(data["l1"]),
            l2=_decode_cache_stats(data["l2"]),
            classifier=classifier,
            hit_depths=hit_depths,
            prefetches_issued=int(data["prefetches_issued"]),
            prefetches_shadow=int(data["prefetches_shadow"]),
            prefetches_rejected=int(data["prefetches_rejected"]),
            prefetches_redundant=int(data["prefetches_redundant"]),
            prefetcher_accuracy=float(data["prefetcher_accuracy"]),
            storage_bits=int(data["storage_bits"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        if isinstance(exc, CodecError):
            raise
        raise CodecError(f"malformed encoded result: {exc}") from exc
