"""SQLite result store for sweep cells, under ``results/``.

One row per content-addressed sweep cell, carrying the versioned codec
payload the cache and the worker IPC already use — so a DB row, a cache
file and an in-flight result are the same bytes-level encoding, gated
by the same parity suites.  Design constraints:

* **per-batch commits** — a crash leaves only whole, valid cells, which
  is what makes resume a pure key diff;
* **no timestamps, no environment** — the DB content is a function of
  the simulated inputs alone, so an interrupted-then-resumed sweep can
  produce a store logically identical to an uninterrupted one;
* **canonical dump** — SQLite's physical file layout depends on
  insertion history (page splits, freelist), so "bit-identical DBs"
  is defined over :meth:`ResultDB.canonical_dump`: every row in key
  order as canonical JSON lines.  Two dumps are equal iff the stores
  hold identical sweeps and identical cell payloads;
* **insert-or-ignore** — cell keys are content addresses; a key that is
  already present is the same result by construction, so re-running
  never rewrites rows and concurrent submitters cannot fight.

Multiple concurrent submitters are first-class: WAL lets readers stream
while a writer commits, ``busy_timeout`` makes writers queue instead of
failing the moment two batches commit together, and the remaining
``SQLITE_BUSY`` window (a timeout under pathological stalls) is retried
with backoff.  Because every row is content-addressed insert-or-ignore,
the interleaving of writers is unobservable: any set of submitters
producing the same cells yields byte-identical canonical dumps.


Corrupt rows degrade on read (logged, counted by the caller) exactly
like the JSON result cache; a corrupt *file* raises
:class:`ResultDBError` at open so the CLI can report it instead of
silently starting an empty store.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Iterable, TypeVar

from repro.sim.codec import CODEC_VERSION, CodecError, decode_result
from repro.sim.metrics import SimulationResult

__all__ = ["DEFAULT_DB_PATH", "ResultDB", "ResultDBError", "CellRow"]

log = logging.getLogger(__name__)

#: default result database, beside (not inside) the cache tree so
#: ``rm -rf results/.cache`` cannot take the sweep history with it
DEFAULT_DB_PATH = Path("results") / "sweep.db"

#: bump when the table shapes change; stored in ``meta`` and checked at
#: open so an old-layout file fails loudly instead of misreading
DB_SCHEMA_VERSION = 1

#: how long SQLite itself queues behind another writer before surfacing
#: SQLITE_BUSY; generous, because a blocked batch commit costs latency
#: while a failed one costs the batch
BUSY_TIMEOUT_MS = 30_000

#: belt-and-braces above busy_timeout: retries (with linear backoff) for
#: the SQLITE_BUSY that escapes the timeout under pathological stalls
_BUSY_RETRIES = 5
_BUSY_BACKOFF_S = 0.05

_T = TypeVar("_T")


def _is_busy(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS sweeps ("
    " sweep TEXT PRIMARY KEY, spec TEXT NOT NULL, cells INTEGER NOT NULL)",
    "CREATE TABLE IF NOT EXISTS cells ("
    " key TEXT PRIMARY KEY,"
    " sweep TEXT NOT NULL,"
    " idx INTEGER NOT NULL,"
    " workload TEXT NOT NULL,"
    " prefetcher TEXT NOT NULL,"
    " codec INTEGER NOT NULL,"
    " payload TEXT NOT NULL)",
    "CREATE INDEX IF NOT EXISTS cells_by_sweep ON cells (sweep, idx)",
    "CREATE INDEX IF NOT EXISTS cells_by_grid ON cells (workload, prefetcher)",
)


class ResultDBError(Exception):
    """The result database is unusable (corrupt file, schema skew)."""


class CellRow:
    """One queryable cell: identity columns + the decoded result."""

    __slots__ = ("key", "sweep", "index", "workload", "prefetcher", "result")

    def __init__(
        self,
        key: str,
        sweep: str,
        index: int,
        workload: str,
        prefetcher: str,
        result: SimulationResult,
    ):
        self.key = key
        self.sweep = sweep
        self.index = index
        self.workload = workload
        self.prefetcher = prefetcher
        self.result = result


class ResultDB:
    """A sweep-result store over one SQLite file."""

    def __init__(self, path: str | Path = DEFAULT_DB_PATH):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(str(self.path))
            # WAL keeps `serve status/query` readable while a submit is
            # committing batches; both modes are logically equivalent
            # and invisible to canonical_dump
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            for stmt in _SCHEMA:
                self._conn.execute(stmt)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema", str(DB_SCHEMA_VERSION)),
            )
            self._conn.commit()
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
        except sqlite3.Error as exc:
            raise ResultDBError(f"cannot open result DB {self.path}: {exc}") from exc
        if row is None or row[0] != str(DB_SCHEMA_VERSION):
            raise ResultDBError(
                f"result DB {self.path} has schema {row[0] if row else '?'}, "
                f"this build expects {DB_SCHEMA_VERSION}"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultDB":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- writes ---------------------------------------------------------

    def _write(self, attempt: Callable[[], _T]) -> _T:
        """Run a write transaction, retrying the SQLITE_BUSY escape path.

        ``busy_timeout`` absorbs ordinary writer contention inside
        SQLite; this loop only fires when that timeout itself expires
        (another submitter stalled mid-commit).  Rows are insert-or-
        ignore content addresses, so re-running ``attempt`` after a
        rollback is always safe.
        """
        for tries in range(_BUSY_RETRIES):
            try:
                result = attempt()
                self._conn.commit()
                return result
            except sqlite3.OperationalError as exc:
                if not _is_busy(exc) or tries == _BUSY_RETRIES - 1:
                    raise
                try:
                    self._conn.rollback()
                except sqlite3.Error:
                    pass
                log.warning(
                    "result DB %s: busy (%s); retry %d/%d",
                    self.path, exc, tries + 1, _BUSY_RETRIES - 1,
                )
                time.sleep(_BUSY_BACKOFF_S * (tries + 1))
        raise AssertionError("unreachable")  # pragma: no cover

    def ensure_sweep(self, sweep: str, spec: str, cells: int) -> None:
        """Register a sweep id (idempotent; the spec is content-bound)."""

        def attempt() -> None:
            self._conn.execute(
                "INSERT OR IGNORE INTO sweeps (sweep, spec, cells) VALUES (?, ?, ?)",
                (sweep, spec, cells),
            )

        try:
            self._write(attempt)
        except sqlite3.Error as exc:
            raise ResultDBError(f"result DB {self.path}: {exc}") from exc

    def store_cells(
        self,
        sweep: str,
        rows: Iterable[tuple[str, int, str, str, dict[str, Any]]],
    ) -> int:
        """Insert ``(key, index, workload, prefetcher, payload)`` rows.

        One transaction per call — the scheduler calls this once per
        drained batch, so a kill can only ever lose the in-flight batch,
        never tear a cell.  Returns the number of rows newly inserted
        (keys already present are the same content and are left alone).
        """
        packed = [
            (
                key,
                sweep,
                index,
                workload,
                prefetcher,
                CODEC_VERSION,
                json.dumps(payload, sort_keys=True, separators=(",", ":")),
            )
            for key, index, workload, prefetcher, payload in rows
        ]
        if not packed:
            return 0

        def attempt() -> int:
            before = self._conn.total_changes
            self._conn.executemany(
                "INSERT OR IGNORE INTO cells "
                "(key, sweep, idx, workload, prefetcher, codec, payload) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                packed,
            )
            return self._conn.total_changes - before

        try:
            return self._write(attempt)
        except sqlite3.Error as exc:
            raise ResultDBError(f"result DB {self.path}: {exc}") from exc

    # -- reads ----------------------------------------------------------

    def completed_keys(self, keys: Iterable[str]) -> set[str]:
        """The subset of ``keys`` already present (the resume diff).

        Membership is by content address alone, not by sweep: a cell
        computed under any earlier sweep is the same result.
        """
        out: set[str] = set()
        chunk: list[str] = []
        try:
            for key in keys:
                chunk.append(key)
                if len(chunk) >= 500:  # SQLite bind-parameter headroom
                    out.update(self._present(chunk))
                    chunk.clear()
            if chunk:
                out.update(self._present(chunk))
        except sqlite3.Error as exc:
            raise ResultDBError(f"result DB {self.path}: {exc}") from exc
        return out

    def _present(self, chunk: list[str]) -> list[str]:
        marks = ",".join("?" * len(chunk))
        rows = self._conn.execute(
            f"SELECT key FROM cells WHERE key IN ({marks})", chunk
        ).fetchall()
        return [r[0] for r in rows]

    def load(self, key: str) -> SimulationResult | None:
        """The decoded result for one cell key, or ``None`` on a miss.

        A row that fails to decode (foreign junk, codec skew) degrades
        to a miss with a warning, mirroring the JSON cache's contract.
        """
        try:
            row = self._conn.execute(
                "SELECT codec, payload FROM cells WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error as exc:
            raise ResultDBError(f"result DB {self.path}: {exc}") from exc
        if row is None:
            return None
        try:
            return decode_result(json.loads(row[1]))
        except (ValueError, KeyError, TypeError, CodecError) as exc:
            log.warning(
                "result DB %s: undecodable cell %s (%s: %s); treating as miss",
                self.path,
                key,
                type(exc).__name__,
                exc,
            )
            return None

    def query(
        self,
        *,
        sweep: str | None = None,
        workload: str | None = None,
        prefetcher: str | None = None,
    ) -> list[CellRow]:
        """Decoded cells matching the filters, ordered (sweep, idx)."""
        clauses, params = [], []
        for column, value in (
            ("sweep", sweep),
            ("workload", workload),
            ("prefetcher", prefetcher),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        try:
            rows = self._conn.execute(
                "SELECT key, sweep, idx, workload, prefetcher, payload "
                f"FROM cells{where} ORDER BY sweep, idx",
                params,
            ).fetchall()
        except sqlite3.Error as exc:
            raise ResultDBError(f"result DB {self.path}: {exc}") from exc
        out: list[CellRow] = []
        for key, sweep_id, idx, wl, pf, payload in rows:
            try:
                result = decode_result(json.loads(payload))
            except (ValueError, KeyError, TypeError, CodecError) as exc:
                log.warning(
                    "result DB %s: skipping undecodable cell %s (%s)",
                    self.path,
                    key,
                    exc,
                )
                continue
            out.append(CellRow(key, sweep_id, idx, wl, pf, result))
        return out

    def sweeps(self) -> list[tuple[str, int, int]]:
        """``(sweep, completed cells, total cells)`` per registered sweep,
        plus an ``"(ad hoc)"`` bucket for rows stored outside any plan."""
        try:
            rows = self._conn.execute(
                "SELECT s.sweep, "
                " (SELECT COUNT(*) FROM cells c WHERE c.sweep = s.sweep), "
                " s.cells FROM sweeps s ORDER BY s.sweep"
            ).fetchall()
            adhoc = self._conn.execute(
                "SELECT COUNT(*) FROM cells WHERE sweep = ''"
            ).fetchone()[0]
        except sqlite3.Error as exc:
            raise ResultDBError(f"result DB {self.path}: {exc}") from exc
        out = [(sweep, done, total) for sweep, done, total in rows]
        if adhoc:
            out.append(("(ad hoc)", adhoc, adhoc))
        return out

    def canonical_dump(self) -> str:
        """The store's logical content as deterministic text.

        Key-ordered canonical JSON lines for every cell, then every
        sweep.  This — not the raw ``.db`` bytes, which depend on page
        history — is the equality the resume guarantee is stated over.
        """
        try:
            cells = self._conn.execute(
                "SELECT key, sweep, idx, workload, prefetcher, codec, payload "
                "FROM cells ORDER BY key"
            ).fetchall()
            sweeps = self._conn.execute(
                "SELECT sweep, spec, cells FROM sweeps ORDER BY sweep"
            ).fetchall()
        except sqlite3.Error as exc:
            raise ResultDBError(f"result DB {self.path}: {exc}") from exc
        lines = []
        for key, sweep, idx, wl, pf, codec, payload in cells:
            lines.append(
                json.dumps(
                    {
                        "cell": key,
                        "sweep": sweep,
                        "idx": idx,
                        "workload": wl,
                        "prefetcher": pf,
                        "codec": codec,
                        "payload": json.loads(payload),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        for sweep, spec, cells_total in sweeps:
            lines.append(
                json.dumps(
                    {"sweep": sweep, "spec": json.loads(spec), "cells": cells_total},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        return "\n".join(lines) + "\n"
