"""Run every paper figure at a chosen scale and dump rendered reports.

Usage:  python scripts/run_full_experiments.py [small|medium|full] [outdir]
            [--jobs N] [--no-cache] [--cache-dir DIR]
            [--no-store] [--store-dir DIR]
            [--no-warm-pool] [--db PATH]

This is the script behind EXPERIMENTS.md: it executes the shared sweep
once, regenerates every figure from it, and writes the rendered text
reports (plus a machine-readable summary JSON) into the output directory.

``--jobs N`` fans the sweep grid over N worker processes; sweep cells
are memoized under ``results/.cache/`` unless ``--no-cache`` is given,
and workload traces are compiled once into binary store files under
``results/.cache/traces/`` unless ``--no-store`` is given.  All three
are bit-neutral (see docs/parallel_runner.md and docs/trace_store.md) —
only wall-clock time changes, which this script reports per job.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import repro.experiments as ex
from repro.sim.cache import DEFAULT_CACHE_DIR, SweepCache
from repro.sim.parallel import set_default_execution
from repro.sim.sched.db import ResultDB
from repro.workloads.store import DEFAULT_TRACE_DIR, TraceStore


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scale", nargs="?", default="medium",
                        choices=("small", "medium", "full"))
    parser.add_argument("outdir", nargs="?", default=None)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep grids (default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every sweep cell (skip results/.cache)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: results/.cache)")
    parser.add_argument("--no-store", action="store_true",
                        help="rebuild traces in-process (skip the trace store)")
    parser.add_argument("--store-dir", default=None, metavar="DIR",
                        help="trace-store directory "
                             "(default: results/.cache/traces)")
    parser.add_argument("--native", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="run eligible cells through the compiled batch "
                             "kernel (bit-exact; --no-native forces the "
                             "interpreted reference loop)")
    parser.add_argument("--warm-pool", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="dispatch sweep grids through the persistent "
                             "warm worker pool (bit-exact; --no-warm-pool "
                             "falls back to a fresh pool per sweep)")
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="also commit sweep cells into this resumable "
                             "SQLite result store (see docs/sweep_service.md)")
    parser.add_argument("--kernel-threads", type=int, default=0, metavar="T",
                        help="OpenMP threads per worker for the kernel's "
                             "in-shard batch driver (0 = runtime default; "
                             "bit-identical at any thread count)")
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    scale = args.scale
    outdir = Path(args.outdir or f"results/{scale}")
    outdir.mkdir(parents=True, exist_ok=True)

    cache = None if args.no_cache else SweepCache(args.cache_dir or DEFAULT_CACHE_DIR)
    store = None if args.no_store else TraceStore(args.store_dir or DEFAULT_TRACE_DIR)
    db = None if args.db is None else ResultDB(args.db)
    set_default_execution(jobs=args.jobs, cache=cache, store=store,
                          native=args.native, warm=args.warm_pool, db=db,
                          kernel_threads=args.kernel_threads)
    print(f"result cache: {'off' if cache is None else cache.root}")
    print(f"trace store:  {'off' if store is None else store.root}")
    print(f"result db:    {'off' if db is None else db.path}")
    print(f"kernel:       {'native' if args.native else 'interpreted'}")
    print(f"dispatch:     {'warm pool' if args.warm_pool else 'fresh pool'}")

    t0 = time.time()
    # the engine itself is wall-clock-free (lint rule DET003); per-job
    # timing is injected here, from outside the simulator package
    print(
        f"[{time.time()-t0:7.1f}s] running standard sweep at scale={scale} "
        f"(jobs={args.jobs}, cache={'off' if cache is None else 'on'}, "
        f"store={'off' if store is None else 'on'}) ..."
    )
    sweep = ex.standard_sweep(
        scale, progress=lambda s: print(f"    [{time.time()-t0:7.1f}s] {s}")
    )

    reports: dict[str, str] = {}
    summary: dict[str, object] = {"scale": scale}

    print(f"[{time.time()-t0:7.1f}s] figure 1 ...")
    r1 = ex.fig01_semantic_locality.run()
    reports["fig01"] = ex.fig01_semantic_locality.render(r1)
    summary["fig01"] = {
        "logical_unit_fraction": r1.logical_step_unit_fraction,
        "physical_adjacent_fraction": r1.physical_step_adjacent_fraction,
    }

    reports["fig05"] = ex.fig05_reward.render(ex.fig05_reward.run())

    print(f"[{time.time()-t0:7.1f}s] figure 8 ...")
    r8 = ex.fig08_hit_depth_cdf.run(scale)
    reports["fig08"] = ex.fig08_hit_depth_cdf.render(r8)
    lo, hi = r8.window
    summary["fig08"] = {
        name: cdf.fraction_in_window(lo, hi) for name, cdf in r8.cdfs.items()
    }

    print(f"[{time.time()-t0:7.1f}s] figures 9-12 from the sweep ...")
    r9 = ex.fig09_accuracy.run(comparison=sweep)
    reports["fig09"] = ex.fig09_accuracy.render(r9)
    summary["fig09_useful_context"] = {
        wl: r9.useful_fraction(wl, "context") for wl in r9.breakdown
    }

    r10 = ex.fig10_l1_mpki.run(comparison=sweep)
    reports["fig10"] = ex.fig10_l1_mpki.render(r10)
    summary["fig10_average"] = r10.average

    r11 = ex.fig11_l2_mpki.run(comparison=sweep)
    reports["fig11"] = ex.fig11_l2_mpki.render(r11)
    summary["fig11"] = {
        "ratio_vs_none": r11.ratio_vs_none,
        "ratio_vs_sms": r11.ratio_vs_sms,
        "average": r11.mpki.average,
    }

    r12 = ex.fig12_speedup.run(comparison=sweep)
    reports["fig12"] = ex.fig12_speedup.render(r12)
    reports["suites"] = ex.suite_summary.render(
        ex.suite_summary.run(comparison=sweep)
    )
    summary["fig12"] = {
        "mean_all": r12.mean_all,
        "mean_spec": r12.mean_spec,
        "context_peak": r12.context_peak,
        "gain_vs_best_competitor": r12.gain_vs_best_competitor,
        "best_competitor": r12.best_competitor,
    }

    print(f"[{time.time()-t0:7.1f}s] figure 13 ...")
    r13 = ex.fig13_storage_sweep.run(scale)
    reports["fig13"] = ex.fig13_storage_sweep.render(r13)
    summary["fig13"] = {
        "mean_all": {str(k): v for k, v in r13.mean_all.items()},
        "mean_top10": {str(k): v for k, v in r13.mean_top10.items()},
    }

    print(f"[{time.time()-t0:7.1f}s] figure 14 ...")
    r14 = ex.fig14_layout_agnostic.run(scale)
    reports["fig14"] = ex.fig14_layout_agnostic.render(r14)
    summary["fig14_gaps"] = {
        study: {
            pf: r14.layout_gap(study, pf) for pf in next(iter(r14.cpi.values()))["linked"]
        }
        for study in r14.cpi
    }

    print(f"[{time.time()-t0:7.1f}s] tables & ablations ...")
    reports["tables"] = "\n\n".join(
        (ex.tables.table1(), ex.tables.table2(), ex.tables.table3())
    )
    rab = ex.ablations.run(scale)
    reports["ablations"] = ex.ablations.render(rab)
    summary["ablations"] = rab.means

    for name, text in reports.items():
        (outdir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    (outdir / "summary.json").write_text(
        json.dumps(summary, indent=2, default=str), encoding="utf-8"
    )
    print(f"[{time.time()-t0:7.1f}s] done -> {outdir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
