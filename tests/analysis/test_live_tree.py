"""The live source tree must be violation-free.

This is the test CI gates on: if a rule family starts flagging the real
package, either the code regressed (fix it) or the rule is wrong (fix
the rule) — never silence the finding.
"""

from __future__ import annotations

from repro.analysis import analyze, format_findings, load_manifest
from repro.analysis.runner import DEFAULT_ROOT


class TestLiveTree:
    def test_package_is_violation_free(self):
        findings = analyze()
        assert findings == [], "\n" + format_findings(findings)

    def test_manifest_matches_runtime_config(self):
        # the static manifest and the runtime dataclass must agree, so
        # that the lint pass audits what the simulator actually runs
        from repro.core.config import ContextPrefetcherConfig

        manifest = load_manifest()
        config = ContextPrefetcherConfig()
        for name, want in manifest["config_defaults"].items():
            assert getattr(config, name) == want, name

    def test_manifest_total_matches_storage_audit(self):
        # storage_bits() is the runtime Table 2 audit; the manifest's
        # expected total must be the same number, or the BUD rules and
        # the figures would disagree about the hardware budget
        from repro.core.config import ContextPrefetcherConfig

        manifest = load_manifest()
        expected = manifest["derived"]["expected_total_bits"]
        assert ContextPrefetcherConfig().storage_bits() == expected
        assert expected <= manifest["derived"]["max_total_bits"]

    def test_default_root_is_the_package(self):
        assert (DEFAULT_ROOT / "core" / "config.py").is_file()

    def test_seeded_violation_is_caught(self, tmp_path):
        # end-to-end: a module-level random.random() in core/ must fail
        core = tmp_path / "core"
        core.mkdir()
        (core / "evil.py").write_text(
            "import random\nJITTER = random.random()\n", encoding="utf-8"
        )
        findings = analyze(root=tmp_path, manifest={"config_defaults": {}})
        assert any(f.rule == "DET001" for f in findings)
