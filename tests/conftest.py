"""Shared test fixtures.

The CLI installs process-wide execution defaults (jobs / result cache /
trace store) via ``set_default_execution``; without a reset, a CLI test
that ran first would leak its cache and store paths into every later
``compare()`` call in the same pytest process.  Restore the defaults
around every test so ordering can never matter.
"""

import pytest

from repro.sim.parallel import default_execution, set_default_execution


@pytest.fixture(autouse=True)
def _restore_execution_defaults():
    previous = default_execution()
    yield
    set_default_execution(
        jobs=previous.jobs, cache=previous.cache, store=previous.store
    )
