"""Tests for the simulator's warm-up mode."""

import pytest

from repro.prefetchers.nopf import NoPrefetcher
from repro.sim.config import make_prefetcher
from repro.sim.simulator import Simulator
from repro.workloads.linked_list import ListTraversalProgram
from repro.workloads.trace import TraceBuilder


def hot_loop_trace(iterations=40, lines=8):
    tb = TraceBuilder()
    for _ in range(iterations):
        for i in range(lines):
            tb.load(0x10000 + i * 64, "hot", gap=3)
    return tb.accesses


class TestWarmup:
    def test_warmup_removes_cold_misses(self):
        trace = hot_loop_trace()
        cold = Simulator(NoPrefetcher()).run(trace)
        warm = Simulator(NoPrefetcher()).run(trace, warmup=16)
        # compulsory misses (plus merges with their in-flight fills)
        assert cold.l1.misses >= 8
        assert warm.l1.misses == 0  # absorbed by the warm-up window

    def test_warmup_shrinks_counted_accesses(self):
        trace = hot_loop_trace(iterations=10, lines=8)
        warm = Simulator(NoPrefetcher()).run(trace, warmup=24)
        assert warm.l1.accesses == 80 - 24

    def test_warm_ipc_at_least_cold(self):
        trace = hot_loop_trace()
        cold = Simulator(NoPrefetcher()).run(trace)
        warm = Simulator(NoPrefetcher()).run(trace, warmup=16)
        assert warm.ipc >= cold.ipc

    def test_cycles_exclude_warmup_period(self):
        trace = hot_loop_trace(iterations=20)
        full = Simulator(NoPrefetcher()).run(trace)
        warm = Simulator(NoPrefetcher()).run(trace, warmup=80)
        assert warm.cycles < full.cycles

    def test_warmup_preserves_prefetcher_learning(self):
        program = ListTraversalProgram(num_nodes=300, iterations=8)
        trace = program.trace()
        half = len(trace) // 2
        warm = Simulator(make_prefetcher("context")).run(trace, warmup=half)
        cold = Simulator(make_prefetcher("context")).run(trace[half:])
        # a trained prefetcher measured over the second half beats one
        # that starts cold there
        assert warm.ipc > cold.ipc

    def test_warmup_must_leave_accesses(self):
        trace = hot_loop_trace(iterations=1)
        with pytest.raises(ValueError, match="whole trace"):
            Simulator(NoPrefetcher()).run(trace, warmup=len(trace))

    def test_zero_warmup_is_identity(self):
        trace = hot_loop_trace(iterations=5)
        a = Simulator(NoPrefetcher()).run(trace)
        b = Simulator(NoPrefetcher()).run(trace, warmup=0)
        assert a.cycles == b.cycles
        assert a.l1.misses == b.l1.misses
