"""The workload registry — Table 3 of the paper.

Maps every benchmark the paper evaluates to the factory that builds its
trace program, organised by suite.  The experiment harness iterates this
registry; sizes are tuned so a full multi-prefetcher sweep stays tractable
in a pure-Python simulator while preserving each workload's character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.arrays import ArrayTraversalProgram, RandomAccessProgram
from repro.workloads.convexhull import ConvexHullProgram
from repro.workloads.bfs import (
    BFSLinkedProgram,
    Graph500CSRProgram,
    Graph500Program,
    PBBSBFSProgram,
)
from repro.workloads.hashtable import HashLookupProgram
from repro.workloads.linked_list import InsertionSortProgram, ListTraversalProgram
from repro.workloads.pbbs import KNNProgram, SetCoverProgram, SuffixArrayProgram
from repro.workloads.prim import PrimProgram
from repro.workloads.spec_proxy import SPEC_PROFILES, SpecProxyProgram
from repro.workloads.ssca2 import SSCA2CSRProgram, SSCA2ListProgram, SSCALDSProgram
from repro.workloads.trace import TraceProgram
from repro.workloads.trees import ArrayBSTProgram, BSTLookupProgram, RBTreeMapProgram


@dataclass(frozen=True)
class WorkloadSpec:
    """One registry row: how to build a workload and how to report it."""

    name: str
    suite: str
    factory: Callable[[], TraceProgram]
    #: True for workloads dominated by irregular (non-spatial) patterns
    irregular: bool = False
    #: rough guide used by "memory-intensive only" figures (10 and 11)
    memory_intensive: bool = True

    def build(self) -> TraceProgram:
        return self.factory()


def _spec_spec(name: str) -> WorkloadSpec:
    irregular = name in ("mcf", "omnetpp", "astar")
    intensive = name not in ("sjeng", "povray", "gobmk", "namd")
    return WorkloadSpec(
        name=name,
        suite="spec2006",
        factory=lambda name=name: SpecProxyProgram(name),
        irregular=irregular,
        memory_intensive=intensive,
    )


_UKERNEL_SPECS = [
    WorkloadSpec("list", "ukernel-ds", ListTraversalProgram, irregular=True),
    WorkloadSpec("array", "ukernel-ds", ArrayTraversalProgram),
    WorkloadSpec("hashtest", "ukernel-ds", HashLookupProgram, irregular=True),
    WorkloadSpec("maptest", "ukernel-ds", RBTreeMapProgram, irregular=True),
    WorkloadSpec("bst", "ukernel-ds", BSTLookupProgram, irregular=True),
    WorkloadSpec("bst-array", "ukernel-ds", ArrayBSTProgram),
    WorkloadSpec("random", "ukernel-ds", RandomAccessProgram, irregular=True),
    WorkloadSpec("prim", "ukernel-alg", PrimProgram, irregular=True),
    WorkloadSpec(
        "listsort",
        "ukernel-alg",
        # memory-bound steady-state phase: ~160kB of 64-byte nodes, tracing
        # the last 40 insertions (the paper simulates phases the same way)
        lambda: InsertionSortProgram(
            num_elements=2540, trace_from=2500, node_bytes=64
        ),
        irregular=True,
    ),
    WorkloadSpec("ssca-lds", "ukernel-alg", SSCALDSProgram, irregular=True),
    WorkloadSpec("bfs", "ukernel-alg", BFSLinkedProgram, irregular=True),
]

_SUITE_SPECS = [
    WorkloadSpec("graph500-list", "graph500", Graph500Program, irregular=True),
    WorkloadSpec("graph500-csr", "graph500", Graph500CSRProgram),
    WorkloadSpec("ssca2-csr", "hpcs", SSCA2CSRProgram),
    WorkloadSpec("ssca2-list", "hpcs", SSCA2ListProgram, irregular=True),
    WorkloadSpec("suffixarray", "pbbs", SuffixArrayProgram, irregular=True),
    WorkloadSpec("pbbs-bfs", "pbbs", PBBSBFSProgram),
    WorkloadSpec("setcover", "pbbs", SetCoverProgram),
    WorkloadSpec("knn", "pbbs", KNNProgram),
    WorkloadSpec("convexhull", "pbbs", ConvexHullProgram),
]

#: every workload, keyed by name
_REGISTRY: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        [_spec_spec(name) for name in SPEC_PROFILES]
        + _SUITE_SPECS
        + _UKERNEL_SPECS
    )
}

#: suite name -> workload names, in Table 3 order
SUITES: dict[str, list[str]] = {}
for _spec in _REGISTRY.values():
    SUITES.setdefault(_spec.suite, []).append(_spec.name)


def get_workload(name: str) -> WorkloadSpec:
    """Look up one workload by name; raises KeyError with suggestions."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}")
    return _REGISTRY[name]


def all_workloads() -> list[WorkloadSpec]:
    """Every registered workload (Table 3 order: SPEC, suites, μkernels)."""
    return list(_REGISTRY.values())


def workloads_in_suite(suite: str) -> list[WorkloadSpec]:
    if suite not in SUITES:
        known = ", ".join(sorted(SUITES))
        raise KeyError(f"unknown suite {suite!r}; known: {known}")
    return [_REGISTRY[name] for name in SUITES[suite]]


def irregular_workloads() -> list[WorkloadSpec]:
    return [spec for spec in _REGISTRY.values() if spec.irregular]
