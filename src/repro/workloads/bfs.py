"""Breadth-first search workloads: Graph500 and the PBBS BFS kernel.

Graph500's timed kernel is BFS over an RMAT graph; Figure 14(b) compares a
naive linked-layout implementation with the array/CSR implementation that
Graph500 reference code actually uses.  Both variants here traverse the
same logical graph and perform the same vertex visits — only the physical
access streams differ.
"""

from __future__ import annotations

import random
from collections import deque

from repro.workloads.graphs import (
    CSRGraph,
    EDGE_NEXT_OFFSET,
    EDGE_TARGET_OFFSET,
    EDGES_OFFSET,
    LinkedGraph,
    VISITED_OFFSET,
    rmat_edges,
)
from repro.workloads.trace import Heap, TraceBuilder, TraceProgram


class BFSLinkedProgram(TraceProgram):
    """BFS over the naive pointer-based graph layout."""

    name = "bfs-list"
    suite = "ukernel-alg"

    def __init__(
        self,
        *,
        scale: int = 9,
        edge_factor: int = 8,
        num_roots: int = 6,
        placement: str = "shuffled",
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.scale = scale
        self.edge_factor = edge_factor
        self.num_roots = num_roots
        self.placement = placement

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(placement=self.placement, seed=self.seed)
        tb = TraceBuilder()
        n = 1 << self.scale
        graph = LinkedGraph(n, rmat_edges(self.scale, self.edge_factor, self.seed), heap)
        queue_base = heap.alloc(n * 8)

        edge_hints = tb.pointer_hints("edge", EDGE_NEXT_OFFSET)
        target_hints = tb.pointer_hints("edge", EDGE_TARGET_OFFSET)
        head_hints = tb.pointer_hints("vertex", EDGES_OFFSET)

        for _ in range(self.num_roots):
            root = rng.randrange(n)
            visited = [False] * n
            visited[root] = True
            work: deque[int] = deque([root])
            qpos = 0
            while work:
                u = work.popleft()
                vert = graph.vertices[u]
                # dequeue: load the vertex pointer from the work queue
                tb.load(queue_base + (qpos % n) * 8, "bfs.deq", value=vert.addr, gap=2)
                qpos += 1
                # load the vertex's edge-list head
                edge = vert.edges
                tb.load(
                    vert.addr + EDGES_OFFSET,
                    "bfs.head",
                    value=edge.addr if edge else 0,
                    depends=True,
                    hints=head_hints,
                    gap=1,
                )
                while edge is not None:
                    tgt = edge.target
                    tb.load(
                        edge.addr + EDGE_TARGET_OFFSET,
                        "bfs.target",
                        value=tgt.addr,
                        depends=True,
                        hints=target_hints,
                        gap=1,
                    )
                    tb.load(
                        tgt.addr + VISITED_OFFSET,
                        "bfs.visited",
                        value=int(visited[tgt.vid]),
                        depends=True,
                        gap=1,
                    )
                    fresh = not visited[tgt.vid]
                    tb.branch(fresh)
                    if fresh:
                        visited[tgt.vid] = True
                        tb.store(tgt.addr + VISITED_OFFSET, "bfs.mark", gap=1)
                        work.append(tgt.vid)
                    nxt = edge.next
                    tb.load(
                        edge.addr + EDGE_NEXT_OFFSET,
                        "bfs.next",
                        value=nxt.addr if nxt else 0,
                        depends=True,
                        hints=edge_hints,
                        gap=1,
                    )
                    tb.branch(nxt is not None)
                    edge = nxt
        return tb


class BFSCSRProgram(TraceProgram):
    """BFS over the spatially optimised CSR layout."""

    name = "bfs-csr"
    suite = "ukernel-alg"

    def __init__(
        self,
        *,
        scale: int = 9,
        edge_factor: int = 8,
        num_roots: int = 6,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.scale = scale
        self.edge_factor = edge_factor
        self.num_roots = num_roots

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        n = 1 << self.scale
        graph = CSRGraph(n, rmat_edges(self.scale, self.edge_factor, self.seed), heap)
        queue_base = heap.alloc(n * 8)
        row_hints = tb.index_hints("row_offsets")
        col_hints = tb.index_hints("col_indices")

        for _ in range(self.num_roots):
            root = rng.randrange(n)
            visited = [False] * n
            visited[root] = True
            work: deque[int] = deque([root])
            qpos = 0
            while work:
                u = work.popleft()
                tb.load(queue_base + (qpos % n) * 8, "bfs.deq", value=u, gap=2)
                qpos += 1
                lo, hi = graph.row_offsets[u], graph.row_offsets[u + 1]
                tb.load(graph.row_addr(u), "bfs.rowlo", value=lo, hints=row_hints, gap=1)
                tb.load(
                    graph.row_addr(u + 1), "bfs.rowhi", value=hi, hints=row_hints, gap=1
                )
                for i in range(lo, hi):
                    t = graph.col_indices[i]
                    tb.load(graph.col_addr(i), "bfs.col", value=t, hints=col_hints, gap=1)
                    tb.load(
                        graph.visited_addr(t),
                        "bfs.visited",
                        value=int(visited[t]),
                        depends=True,
                        gap=1,
                    )
                    fresh = not visited[t]
                    tb.branch(fresh)
                    if fresh:
                        visited[t] = True
                        tb.store(graph.visited_addr(t), "bfs.mark", gap=1)
                        work.append(t)
        return tb


class Graph500Program(BFSLinkedProgram):
    """Graph500 as the paper runs it by default (list layout variant)."""

    name = "graph500-list"
    suite = "graph500"


class Graph500CSRProgram(BFSCSRProgram):
    """Graph500's reference spatial implementation (CSR arrays)."""

    name = "graph500-csr"
    suite = "graph500"


class PBBSBFSProgram(BFSCSRProgram):
    """PBBS BFS: the suite ships a flat-array implementation."""

    name = "pbbs-bfs"
    suite = "pbbs"

    def __init__(self, **kwargs):
        kwargs.setdefault("scale", 9)
        kwargs.setdefault("edge_factor", 6)
        super().__init__(**kwargs)
