"""Figure 9: accuracy and timeliness classification of demand accesses.

For each (workload, prefetcher) pair, every demand access is classified
as: demand hit on a prefetched line, shorter wait behind an in-flight
prefetch, non-timely prediction, miss never predicted, hit needing no
prefetch — plus wasted prefetches counted on top (which is why the
paper's stacked bars pass 100%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.sweep import standard_sweep
from repro.memory.stats import ACCESS_CLASS_ORDER, AccessClass
from repro.sim.runner import ComparisonResult

_SHORT_LABELS = {
    AccessClass.HIT_PREFETCHED: "hit-pf",
    AccessClass.SHORTER_WAIT: "shorter",
    AccessClass.NON_TIMELY: "untimely",
    AccessClass.MISS_NOT_PREFETCHED: "miss",
    AccessClass.HIT_OLDER_DEMAND: "hit-old",
    AccessClass.PREFETCH_NEVER_HIT: "wasted",
}


@dataclass
class Figure9Result:
    #: workload -> prefetcher -> {class label: fraction of demand accesses}
    breakdown: dict[str, dict[str, dict[AccessClass, float]]]

    def useful_fraction(self, workload: str, prefetcher: str) -> float:
        classes = self.breakdown[workload][prefetcher]
        return classes[AccessClass.HIT_PREFETCHED] + classes[AccessClass.SHORTER_WAIT]


def run(
    scale: str = "small", comparison: ComparisonResult | None = None
) -> Figure9Result:
    comparison = comparison or standard_sweep(scale)
    breakdown: dict[str, dict[str, dict[AccessClass, float]]] = {}
    for workload in comparison.workloads():
        breakdown[workload] = {}
        for prefetcher in comparison.prefetchers():
            result = comparison.get(workload, prefetcher)
            breakdown[workload][prefetcher] = result.classifier.fractions()
    return Figure9Result(breakdown=breakdown)


def render(result: Figure9Result) -> str:
    headers = ("workload", "prefetcher") + tuple(
        _SHORT_LABELS[cls] for cls in ACCESS_CLASS_ORDER
    )
    rows = []
    for workload, by_pf in result.breakdown.items():
        for prefetcher, classes in by_pf.items():
            rows.append(
                (workload, prefetcher)
                + tuple(f"{classes[cls]:.1%}" for cls in ACCESS_CLASS_ORDER)
            )
    return render_table(
        headers, rows, title="Figure 9 — access classification per prefetcher"
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
