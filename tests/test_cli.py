"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_suites_and_prefetchers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "spec2006" in out
        assert "context" in out and "sms" in out


class TestRun:
    def test_run_prints_summary_and_classes(self, capsys):
        assert main(["run", "random", "none", "--limit", "500"]) == 0
        out = capsys.readouterr().out
        assert "random/none" in out
        assert "miss not prefetched" in out

    def test_run_with_context_prefetcher(self, capsys):
        assert main(["run", "array", "context", "--limit", "1000"]) == 0
        out = capsys.readouterr().out
        assert "array/context" in out

    def test_unknown_workload_exits_nonzero(self, capsys):
        # failed subcommands must report an error and return a nonzero
        # exit code so make/CI can gate on python -m repro
        assert main(["run", "not-a-workload", "none"]) == 1
        err = capsys.readouterr().err
        assert "error: run:" in err and "not-a-workload" in err

    def test_unknown_prefetcher_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "array", "oracle"])


class TestSweep:
    def test_explicit_workloads_and_prefetchers(self, capsys):
        code = main(
            [
                "sweep",
                "--workloads",
                "array,random",
                "--prefetchers",
                "none,context",
                "--limit",
                "1000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out
        assert "array" in out and "random" in out


class TestFigure:
    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure_5(self, capsys):
        assert main(["figure", "5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_tables(self, capsys):
        assert main(["figure", "tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestExitCodes:
    def test_replay_missing_trace_exits_nonzero(self, capsys):
        assert main(["replay", "/no/such/trace.jsonl", "none"]) == 1
        assert "error: replay:" in capsys.readouterr().err


class TestLint:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "analysis: clean" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "BUD" in out and "EXP" in out

    def test_lint_select_subset(self, capsys):
        assert main(["lint", "--select", "DET"]) == 0
        assert "analysis: clean" in capsys.readouterr().out


class TestTraceAndReplay:
    def test_trace_export_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "random.jsonl")
        assert main(["trace", "export", "random", path, "--limit", "400"]) == 0
        out = capsys.readouterr().out
        assert "wrote 400 accesses" in out

        assert main(["replay", path, "none"]) == 0
        out = capsys.readouterr().out
        assert "/none" in out and "IPC" in out

    def test_replay_with_stats_dump(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(["trace", "export", "array", path, "--limit", "300"])
        capsys.readouterr()
        assert main(["replay", path, "context", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Begin Simulation Statistics" in out
        assert "pf.issued" in out


class TestTraceStoreCommands:
    def test_compile_info_ls_gc_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "traces")
        assert main(["trace", "compile", "random", "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "compiled random:" in out and "store:" in out

        # recompiling without --force is a no-op on a current file
        assert main(["trace", "compile", "random", "--store-dir", store]) == 0
        assert "current  random:" in capsys.readouterr().out

        assert main(["trace", "info", "random", "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "workload:    random" in out and "fingerprint:" in out

        assert main(["trace", "ls", "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "random" in out and "ok" in out

        assert main(["trace", "gc", "--store-dir", store]) == 0
        assert "kept 1" in capsys.readouterr().out

    def test_info_missing_workload_exits_nonzero(self, tmp_path, capsys):
        store = str(tmp_path / "traces")
        assert main(["trace", "info", "random", "--store-dir", store]) == 1
        assert "error: trace:" in capsys.readouterr().err

    def test_corrupt_store_file_fails_ls_and_info(self, tmp_path, capsys):
        from pathlib import Path

        store = str(tmp_path / "traces")
        assert main(["trace", "compile", "random", "--store-dir", store]) == 0
        capsys.readouterr()
        rpt = next(Path(store).glob("*.rpt"))
        rpt.write_bytes(rpt.read_bytes()[:-40])  # truncate mid-record

        assert main(["trace", "ls", "--store-dir", store]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out

        assert main(["trace", "info", str(rpt), "--store-dir", store]) == 1
        assert "error: trace:" in capsys.readouterr().err

        # gc clears the corruption, after which ls is clean again
        assert main(["trace", "gc", "--store-dir", store]) == 0
        capsys.readouterr()
        assert main(["trace", "ls", "--store-dir", store]) == 0

    def test_version_mismatch_exits_nonzero(self, tmp_path, capsys):
        import struct

        from repro.workloads.store import MAGIC

        store = tmp_path / "traces"
        store.mkdir()
        bogus = store / "bogus-0000000000000000.rpt"
        bogus.write_bytes(struct.pack("<8sIIQ", MAGIC, 999, 2, 0) + b"{}")
        assert main(["trace", "info", str(bogus)]) == 1
        err = capsys.readouterr().err
        assert "version 999" in err

    def test_sweep_prints_store_and_cache_paths(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--workloads",
                "random",
                "--prefetchers",
                "none,stride",
                "--limit",
                "600",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--store-dir",
                str(tmp_path / "traces"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "execution: jobs=1" in captured.err
        assert str(tmp_path / "traces") in captured.err
        assert "GEOMEAN" in captured.out

    def test_no_store_and_no_cache_report_off(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--workloads",
                "random",
                "--prefetchers",
                "none",
                "--limit",
                "400",
                "--no-cache",
                "--no-store",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "result cache off" in err and "trace store off" in err
