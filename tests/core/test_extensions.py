"""Tests for the future-work extensions: softmax policy, adaptive window."""

import pytest

from repro.core.bandit import EpsilonGreedyPolicy, SoftmaxPolicy, make_policy
from repro.core.config import ContextPrefetcherConfig
from repro.core.cst import Candidate, CSTEntry
from repro.core.prefetcher import ContextPrefetcher
from tests.core.test_prefetcher import drive_ring, ring_trace


def cst_entry(scores) -> CSTEntry:
    entry = CSTEntry(tag=0)
    entry.candidates = [Candidate(delta=i + 1, score=s) for i, s in enumerate(scores)]
    return entry


class TestMakePolicy:
    def test_default_is_egreedy(self):
        policy = make_policy(ContextPrefetcherConfig())
        assert type(policy) is EpsilonGreedyPolicy

    def test_softmax_selected_by_config(self):
        policy = make_policy(ContextPrefetcherConfig(policy="softmax"))
        assert isinstance(policy, SoftmaxPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ContextPrefetcherConfig(policy="thompson")

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            ContextPrefetcherConfig(softmax_temperature=0)


class TestSoftmaxPolicy:
    def test_prefers_high_scores(self):
        policy = SoftmaxPolicy(ContextPrefetcherConfig(policy="softmax", seed=3))
        entry = cst_entry([20, -20])
        picks = [policy.select(entry).real[0].delta for _ in range(200)]
        assert picks.count(1) > 150  # delta 1 carries score 20

    def test_low_scores_still_sampled(self):
        policy = SoftmaxPolicy(
            ContextPrefetcherConfig(policy="softmax", softmax_temperature=50.0, seed=3)
        )
        entry = cst_entry([5, 4])
        picks = [policy.select(entry).real[0].delta for _ in range(200)]
        assert picks.count(2) > 20  # near-uniform at high temperature

    def test_temperature_anneals_with_accuracy(self):
        policy = SoftmaxPolicy(ContextPrefetcherConfig(policy="softmax"))
        cold = policy.temperature()
        for _ in range(5000):
            policy.observe_outcome(hit=True)
        assert policy.temperature() < cold

    def test_empty_entry(self):
        policy = SoftmaxPolicy(ContextPrefetcherConfig(policy="softmax"))
        sel = policy.select(cst_entry([]))
        assert sel.real == [] and sel.shadow == []

    def test_degree_respected(self):
        policy = SoftmaxPolicy(ContextPrefetcherConfig(policy="softmax"))
        for _ in range(5000):
            policy.observe_outcome(hit=True)  # max degree
        sel = policy.select(cst_entry([5, 4, 3, 2]))
        assert len(sel.real) == policy.config.max_degree
        assert len({id(c) for c in sel.real}) == len(sel.real)

    def test_prefetcher_learns_with_softmax(self):
        pf = ContextPrefetcher(ContextPrefetcherConfig(policy="softmax"))
        drive_ring(pf, ring_trace(), iterations=100)
        assert pf.accuracy() > 0.4


class TestAdaptiveWindow:
    def test_disabled_by_default(self):
        pf = ContextPrefetcher()
        drive_ring(pf, ring_trace(), iterations=60)
        assert pf.window_updates == 0
        assert pf.reward.center == pf.config.window_center

    def test_recenters_toward_observed_depths(self):
        # a ring of 25 nodes recurs at depth ~25, below the default bell
        # center of 30; the adaptive variant should slide the bell down
        # toward the observed hit depths
        config = ContextPrefetcherConfig(
            adaptive_window=True, window_update_period=256
        )
        pf = ContextPrefetcher(config)
        drive_ring(pf, ring_trace(num_nodes=25), iterations=200)
        assert pf.window_updates >= 1
        assert pf.reward.center < config.window_center

    def test_center_respects_bounds(self):
        config = ContextPrefetcherConfig(
            adaptive_window=True,
            window_update_period=64,
            window_center_bounds=(12, 40),
        )
        pf = ContextPrefetcher(config)
        drive_ring(pf, ring_trace(num_nodes=80), iterations=120)
        assert pf.reward.center <= 40

    def test_window_shape_preserved(self):
        config = ContextPrefetcherConfig(
            adaptive_window=True, window_update_period=256
        )
        pf = ContextPrefetcher(config)
        drive_ring(pf, ring_trace(num_nodes=70), iterations=120)
        reward = pf.reward
        assert reward.hi - reward.lo == config.window_hi - config.window_lo

    def test_reset_restores_default_window(self):
        config = ContextPrefetcherConfig(
            adaptive_window=True, window_update_period=256
        )
        pf = ContextPrefetcher(config)
        drive_ring(pf, ring_trace(num_nodes=70), iterations=120)
        pf.reset()
        assert pf.reward.center == config.window_center
        assert pf.window_updates == 0
