"""RACE: fork/worker-safety for the parallel sweep engine.

The sweep runner ships jobs to a spawn-based ``ProcessPoolExecutor``
(:mod:`repro.sim.parallel`).  Under spawn, each worker re-imports the
package, so module-level state is *re-created per process* — mutations
made in a worker are invisible to the parent and vice versa.  Code that
relies on such state being shared is silently wrong, and nothing at
runtime says so.  These rules use the project call graph to find the
functions reachable from submitted entry points (the *worker-reachable
set*) and audit what they touch:

* **RACE001** — a module-level mutable object written on one side of
  the process boundary and read on the other.  One-sided use is fine
  (a per-worker memo, a parent-only cache); the hazard is exactly the
  cross-boundary pairing.  Module-scope writes (import-time
  registration) are safe under spawn and never counted.
* **RACE002** — RNG state crossing the boundary: calls to the global
  ``random.*`` functions inside worker-reachable code, ``Random()``
  constructed without a seed, or a module-level ``Random`` instance
  read from a worker.  Workers must derive seeds from job config
  (``seed_for``-style), or identical/implicit RNG streams make the
  sweep silently depend on scheduling.
* **RACE003** — an open file / mmap / trace-reader handle passed into a
  submit call.  OS handles do not survive pickling to a spawned
  process; workers must receive *paths or keys* and open locally.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import resolve_local, simple_local_bindings
from repro.analysis.findings import Finding
from repro.analysis.graph import ModuleInfo, SemanticModel, WorkerEntry
from repro.analysis.registry import Rule, register_rule
from repro.analysis.visitor import Project

#: callables whose result is an OS-handle-like object (RACE003)
HANDLE_OPENERS = frozenset(
    {"open", "mmap", "TraceReader", "gzip.open", "io.open", "mmap.mmap"}
)

#: functions whose call marks a seed being derived from config (RACE002
#: exemption): re-seeding inside the worker is the *fix*, not the bug
RESEED_MARKERS = frozenset({"seed_for", "derive_seed", "seed_from_config"})


@register_rule
class ForkSafetyRule(Rule):
    """Module state, RNG and handles crossing the process boundary."""

    rule_id = "RACE"
    title = "fork/worker-safety across the process-pool boundary"

    #: per-code one-liners for ``--list-rules``
    codes = {
        "RACE001": "module-level mutable written on one side of the "
        "process boundary, read on the other",
        "RACE002": "RNG stream crossing the process boundary without "
        "config-derived re-seeding",
        "RACE003": "open file/mmap handle captured into a submit call",
    }

    def check(self, project: Project) -> Iterator[Finding]:
        model = project.semantic()
        entries = model.worker_entries()
        if not entries:
            return
        worker_set = model.reachable([e.target for e in entries])
        parent_set = {
            q for q in model.functions if q not in worker_set
        }
        yield from self._check_shared_mutables(model, worker_set, parent_set)
        yield from self._check_rng(model, worker_set)
        yield from self._check_rng_in_args(model, entries)
        yield from self._check_handles(model, entries)

    # -- RACE001 --------------------------------------------------------

    def _check_shared_mutables(
        self,
        model: SemanticModel,
        worker_set: set[str],
        parent_set: set[str],
    ) -> Iterator[Finding]:
        from repro.analysis.dataflow import global_accesses

        for modname in sorted(model.modules):
            info = model.modules[modname]
            watched = {
                name
                for name in info.mutable_globals
                if not name.startswith("__")
            }
            if not watched:
                continue
            worker_reads: dict[str, str] = {}
            worker_writes: dict[str, str] = {}
            parent_reads: dict[str, str] = {}
            parent_writes: dict[str, str] = {}
            for local, node in sorted(info.functions.items()):
                qual = f"{modname}.{local}"
                reads, writes = global_accesses(node, watched)
                if qual in worker_set:
                    for n in reads:
                        worker_reads.setdefault(n, qual)
                    for n in writes:
                        worker_writes.setdefault(n, qual)
                if qual in parent_set:
                    # registration pattern: a writer that the module
                    # itself invokes at import time populates state
                    # before any fork — identical in every process
                    registered = local.split(".")[0] in info.module_level_called
                    for n in reads:
                        parent_reads.setdefault(n, qual)
                    if not registered:
                        for n in writes:
                            parent_writes.setdefault(n, qual)
            for name in sorted(watched):
                glob = info.mutable_globals[name]
                if name in worker_writes and (
                    name in parent_reads or name in parent_writes
                ):
                    other = parent_reads.get(name) or parent_writes[name]
                    yield Finding(
                        info.rel,
                        glob.line,
                        "RACE001",
                        f"{name} ({glob.kind}) is written in worker-"
                        f"reachable {worker_writes[name]} but also used "
                        f"in parent-side {other}; worker mutations are "
                        "invisible across the spawn boundary",
                    )
                elif name in worker_reads and name in parent_writes:
                    yield Finding(
                        info.rel,
                        glob.line,
                        "RACE001",
                        f"{name} ({glob.kind}) is written in parent-side "
                        f"{parent_writes[name]} but read in worker-"
                        f"reachable {worker_reads[name]}; workers see the "
                        "import-time value, not the parent's updates",
                    )

    # -- RACE002 --------------------------------------------------------

    def _check_rng(
        self, model: SemanticModel, worker_set: set[str]
    ) -> Iterator[Finding]:
        rng_globals = {
            modname: self._module_rng_globals(model.modules[modname])
            for modname in model.modules
        }
        for qual in sorted(worker_set):
            info, node = model.functions[qual]
            module_rngs = rng_globals.get(info.name, set())
            if module_rngs:
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in module_rngs
                    ):
                        yield Finding(
                            info.rel,
                            sub.lineno,
                            "RACE002",
                            f"{qual} uses module-level RNG {sub.id} in "
                            "worker-reachable code; each spawned process "
                            "re-creates it, so streams repeat across "
                            "workers — derive a per-job seed from config",
                        )
                        break
            if self._reseeds_from_config(node):
                continue
            random_alias = {
                local
                for local, target in info.imports.items()
                if target == "random"
            }
            random_funcs = {
                local
                for local, target in info.imports.items()
                if target.startswith("random.") and target != "random.Random"
            }
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_alias
                ):
                    if func.attr == "Random":
                        if not sub.args and not sub.keywords:
                            yield Finding(
                                info.rel,
                                sub.lineno,
                                "RACE002",
                                f"{qual} constructs random.Random() with "
                                "no seed in worker-reachable code; seed "
                                "from job config so parallel and serial "
                                "runs match",
                            )
                    else:
                        yield Finding(
                            info.rel,
                            sub.lineno,
                            "RACE002",
                            f"{qual} calls random.{func.attr}() in "
                            "worker-reachable code; the global RNG is "
                            "per-process under spawn — use a config-"
                            "seeded Random instance",
                        )
                elif isinstance(func, ast.Name) and func.id in random_funcs:
                    yield Finding(
                        info.rel,
                        sub.lineno,
                        "RACE002",
                        f"{qual} calls {func.id}() from the global "
                        "random module in worker-reachable code; use a "
                        "config-seeded Random instance",
                    )

    @staticmethod
    def _module_rng_globals(info: ModuleInfo) -> set[str]:
        """Module-level names bound to a ``random.Random``-like instance."""
        out: set[str] = set()
        for stmt in info.source.tree.body:
            if not (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            func = stmt.value.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name != "Random":
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        return out

    def _check_rng_in_args(
        self, model: SemanticModel, entries: list[WorkerEntry]
    ) -> Iterator[Finding]:
        for entry in entries:
            bindings = simple_local_bindings(entry.submitter_node)
            for arg in entry.call.args[1:]:
                resolved = resolve_local(arg, bindings)
                if not isinstance(resolved, ast.Call):
                    continue
                func = resolved.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name == "Random":
                    label = (
                        arg.id if isinstance(arg, ast.Name) else "argument"
                    )
                    yield Finding(
                        entry.rel,
                        entry.call.lineno,
                        "RACE002",
                        f"{entry.submitter} passes Random instance "
                        f"{label} into a submit call; pickled RNG state "
                        "diverges from the parent's stream after the "
                        "first draw — pass a seed instead",
                    )

    @staticmethod
    def _reseeds_from_config(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = None
                if isinstance(sub.func, ast.Name):
                    name = sub.func.id
                elif isinstance(sub.func, ast.Attribute):
                    name = sub.func.attr
                if name in RESEED_MARKERS:
                    return True
                # Random(expr) with an explicit seed argument also counts
                if name == "Random" and (sub.args or sub.keywords):
                    return True
        return False

    # -- RACE003 --------------------------------------------------------

    def _check_handles(
        self, model: SemanticModel, entries: list[WorkerEntry]
    ) -> Iterator[Finding]:
        for entry in entries:
            info = model.by_rel[entry.rel]
            bindings = simple_local_bindings(entry.submitter_node)
            for arg in entry.call.args[1:]:
                resolved = resolve_local(arg, bindings)
                opener = self._opener_name(resolved, info)
                if opener is not None:
                    label = (
                        arg.id if isinstance(arg, ast.Name) else "argument"
                    )
                    yield Finding(
                        entry.rel,
                        entry.call.lineno,
                        "RACE003",
                        f"{entry.submitter} passes {label} (from "
                        f"{opener}(...)) into a submit call; OS handles "
                        "do not survive pickling to a spawned worker — "
                        "pass a path/key and open inside the worker",
                    )

    @staticmethod
    def _opener_name(expr: ast.expr, info: ModuleInfo) -> str | None:
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        dotted: str | None = None
        if isinstance(func, ast.Name):
            dotted = func.id
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            dotted = f"{func.value.id}.{func.attr}"
        if dotted is None:
            return None
        if dotted in HANDLE_OPENERS:
            return dotted
        # an imported name that itself points at an opener
        target = info.imports.get(dotted)
        if target is not None and (
            target in HANDLE_OPENERS
            or target.rsplit(".", 1)[-1] in {"TraceReader", "open", "mmap"}
        ):
            return dotted
        return None
