"""Tests for the trace-driven simulator."""

from repro.memory.hierarchy import HierarchyConfig
from repro.memory.stats import ACCESS_CLASS_ORDER, AccessClass
from repro.prefetchers.base import Prefetcher, PrefetchRequest
from repro.prefetchers.nopf import NoPrefetcher
from repro.sim.simulator import Simulator
from repro.workloads.trace import TraceBuilder


def sequential_trace(n=200, start=0x10000, step=64):
    tb = TraceBuilder()
    for i in range(n):
        tb.load(start + i * step, "seq", gap=2)
    return tb.accesses


class NextLinePrefetcher(Prefetcher):
    """Deterministic test prefetcher: fetch a few lines ahead.

    The lookahead must out-run the DRAM latency for prefetches to turn
    into full hits rather than in-flight merges.
    """

    name = "nextline"
    lookahead = 6

    def on_access(self, access):
        return [PrefetchRequest(addr=access.addr + self.lookahead * 64)]


class ShadowOnlyPrefetcher(Prefetcher):
    name = "shadowonly"

    def on_access(self, access):
        return [PrefetchRequest(addr=access.addr + 64, shadow=True)]


class TestBasicRun:
    def test_counts_and_cycles_positive(self):
        sim = Simulator(NoPrefetcher())
        result = sim.run(sequential_trace(), workload_name="seq")
        assert result.workload == "seq"
        assert result.instructions > 0
        assert result.cycles > 0
        assert result.l1.accesses == 200

    def test_limit_truncates(self):
        sim = Simulator(NoPrefetcher())
        result = sim.run(sequential_trace(200), limit=50)
        assert result.l1.accesses == 50

    def test_classification_covers_every_demand(self):
        sim = Simulator(NoPrefetcher())
        result = sim.run(sequential_trace())
        demand_classes = [c for c in ACCESS_CLASS_ORDER if c != AccessClass.PREFETCH_NEVER_HIT]
        assert sum(result.classifier.counts[c] for c in demand_classes) == 200

    def test_deterministic(self):
        a = Simulator(NoPrefetcher()).run(sequential_trace())
        b = Simulator(NoPrefetcher()).run(sequential_trace())
        assert a.cycles == b.cycles
        assert a.l1.misses == b.l1.misses


class TestPrefetchPlumbing:
    def test_next_line_prefetcher_converts_misses(self):
        base = Simulator(NoPrefetcher()).run(sequential_trace(400))
        pf = Simulator(NextLinePrefetcher()).run(sequential_trace(400))
        assert pf.l1.misses < base.l1.misses
        useful = (
            pf.classifier.counts[AccessClass.HIT_PREFETCHED]
            + pf.classifier.counts[AccessClass.SHORTER_WAIT]
        )
        assert useful > 100
        assert pf.ipc > base.ipc

    def test_shadow_requests_never_touch_memory(self):
        result = Simulator(ShadowOnlyPrefetcher()).run(sequential_trace(300))
        assert result.prefetches_issued == 0
        assert result.prefetches_shadow == 300
        # but they are tracked for hit depth and NON_TIMELY classification
        assert result.classifier.counts[AccessClass.NON_TIMELY] > 0

    def test_hit_depths_recorded(self):
        result = Simulator(NextLinePrefetcher()).run(sequential_trace(300))
        assert result.hit_depths.total > 0
        # predictions hit `lookahead` accesses later
        assert result.hit_depths.histogram[NextLinePrefetcher.lookahead] > 100

    def test_storage_reported(self):
        result = Simulator(NoPrefetcher()).run(sequential_trace(10))
        assert result.storage_bits == 0


class TestTimingSanity:
    def test_dependent_chain_slower_than_independent(self):
        tb_dep = TraceBuilder()
        tb_ind = TraceBuilder()
        for i in range(200):
            addr = 0x10000 + i * 4096  # distinct lines, L1-missing
            tb_dep.load(addr, "d", depends=True, gap=2)
            tb_ind.load(addr, "i", gap=2)
        dep = Simulator(NoPrefetcher()).run(tb_dep.accesses)
        ind = Simulator(NoPrefetcher()).run(tb_ind.accesses)
        assert dep.cycles > 1.5 * ind.cycles

    def test_cache_resident_trace_runs_near_width(self):
        tb = TraceBuilder()
        for _ in range(800):  # long enough to amortise the 8 cold misses
            for i in range(8):
                tb.load(0x10000 + i * 64, "hot", gap=3)
        result = Simulator(NoPrefetcher()).run(tb.accesses)
        assert result.ipc > 2.0

    def test_custom_hierarchy_config(self):
        config = HierarchyConfig(dram_latency=1000)
        slow = Simulator(NoPrefetcher(), hierarchy_config=config).run(
            sequential_trace(100, step=4096)
        )
        fast = Simulator(NoPrefetcher()).run(sequential_trace(100, step=4096))
        assert slow.cycles > fast.cycles

    def test_branches_count_as_instructions(self):
        tb = TraceBuilder()
        tb.branch(True)
        tb.load(0x1000, "x", gap=0)
        result = Simulator(NoPrefetcher()).run(tb.accesses)
        assert result.instructions == 2
