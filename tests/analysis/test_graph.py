"""Unit tests for the project-wide semantic model (import/call graph)."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import load_project


def build_model(root: Path, files: dict[str, str]):
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return load_project(root).semantic()


PKG = {
    "util.py": """
    def helper(x):
        return x + 1

    class Engine:
        def __init__(self, n):
            self.n = n

        def run(self):
            return self.step() + helper(self.n)

        def step(self):
            return 2
    """,
    "app.py": """
    from util import Engine, helper

    def main():
        eng = Engine(3)
        return eng.run() + helper(1)
    """,
    "pkg/__init__.py": "",
    "pkg/deep.py": """
    from ..util import helper

    def wrapped(x):
        return helper(x)
    """,
}


class TestSymbolTables:
    def test_modules_and_functions_indexed(self, tmp_path):
        model = build_model(tmp_path, PKG)
        pkg = tmp_path.name
        assert f"{pkg}.util" in model.modules
        assert f"{pkg}.util.Engine.run" in model.functions
        assert f"{pkg}.util.helper" in model.functions

    def test_import_resolution_including_relative(self, tmp_path):
        model = build_model(tmp_path, PKG)
        pkg = tmp_path.name
        app = model.modules[f"{pkg}.app"]
        kind, qual, _ = model.resolve(app, "Engine")
        assert (kind, qual) == ("class", f"{pkg}.util.Engine")
        deep = model.modules[f"{pkg}.pkg.deep"]
        # relative import: ``from ..util import helper`` resolves within
        # the package
        assert deep.imports["helper"] == f"{pkg}.util.helper"
        kind, qual, _ = model.resolve(deep, "helper")
        assert (kind, qual) == ("function", f"{pkg}.util.helper")

    def test_import_graph_edges(self, tmp_path):
        model = build_model(tmp_path, PKG)
        pkg = tmp_path.name
        assert f"{pkg}.util" in model.imports_of(f"{pkg}.app")
        assert f"{pkg}.app" in model.importers_of(f"{pkg}.util")

    def test_mutable_globals_and_enums(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "state.py": """
                import enum
                from collections import deque

                REGISTRY = {}
                ITEMS = [1, 2]
                RING = deque(maxlen=4)
                LIMIT = 7
                NAME = "x"

                class Kind(enum.Enum):
                    A = 1
                """,
            },
        )
        info = model.modules[f"{tmp_path.name}.state"]
        assert set(info.mutable_globals) == {"REGISTRY", "ITEMS", "RING"}
        assert info.enums == {"Kind"}


class TestCallGraph:
    def test_direct_self_and_inferred_method_calls(self, tmp_path):
        model = build_model(tmp_path, PKG)
        pkg = tmp_path.name
        main_callees = model.callees(f"{pkg}.app.main")
        # constructor, inferred method call through the local, direct call
        assert f"{pkg}.util.Engine.__init__" in main_callees
        assert f"{pkg}.util.Engine.run" in main_callees
        assert f"{pkg}.util.helper" in main_callees
        run_callees = model.callees(f"{pkg}.util.Engine.run")
        assert f"{pkg}.util.Engine.step" in run_callees
        assert f"{pkg}.util.helper" in run_callees

    def test_reachability_closure(self, tmp_path):
        model = build_model(tmp_path, PKG)
        pkg = tmp_path.name
        reach = model.reachable([f"{pkg}.app.main"])
        assert f"{pkg}.util.Engine.step" in reach  # two hops away
        assert f"{pkg}.pkg.deep.wrapped" not in reach


class TestWorkerEntries:
    def test_submit_first_arg_resolved(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "par.py": """
                from concurrent.futures import ProcessPoolExecutor

                def job(x):
                    return x * 2

                def run(items):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(job, x).result() for x in items]
                """,
            },
        )
        pkg = tmp_path.name
        entries = model.worker_entries()
        assert [e.target for e in entries] == [f"{pkg}.par.job"]
        assert entries[0].submitter == f"{pkg}.par.run"

    def test_live_tree_worker_entries(self):
        from repro.analysis.runner import DEFAULT_ROOT

        model = load_project(DEFAULT_ROOT).semantic()
        targets = {e.target for e in model.worker_entries()}
        assert targets == {
            "repro.sim.parallel._execute_batch",
            "repro.sim.parallel._execute_job",
        }
        # the worker closure must reach the simulator core
        reach = model.reachable(targets)
        assert any(q.endswith("Simulator.run") for q in reach) or any(
            "simulator" in q for q in reach
        )
