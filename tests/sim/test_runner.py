"""Tests for the sweep runner."""

import pytest

from repro.sim.config import PREFETCHER_FACTORIES, make_prefetcher
from repro.sim.runner import compare, run_workload, storage_sweep
from repro.workloads.arrays import ArrayTraversalProgram
from repro.workloads.linked_list import ListTraversalProgram


SMALL_LIST = lambda: ListTraversalProgram(num_nodes=128, iterations=4)
SMALL_ARRAY = lambda: ArrayTraversalProgram(num_elements=512, iterations=3)


class TestFactories:
    def test_all_prefetchers_registered(self):
        assert set(PREFETCHER_FACTORIES) == {
            "none",
            "stride",
            "ghb-gdc",
            "ghb-pcdc",
            "sms",
            "markov",
            "context",
        }

    def test_make_prefetcher(self):
        assert make_prefetcher("sms").name == "sms"

    def test_unknown_prefetcher(self):
        with pytest.raises(KeyError):
            make_prefetcher("oracle")


class TestRunWorkload:
    def test_accepts_program_instance(self):
        result = run_workload(SMALL_LIST(), "none")
        assert result.workload == "list"
        assert result.prefetcher == "none"

    def test_accepts_registry_name(self):
        result = run_workload("random", "none", limit=500)
        assert result.workload == "random"

    def test_accepts_prefetcher_instance(self):
        pf = make_prefetcher("stride")
        result = run_workload(SMALL_ARRAY(), pf)
        assert result.prefetcher == "stride"


class TestCompare:
    def test_grid_complete(self):
        comp = compare([SMALL_LIST(), SMALL_ARRAY()], prefetchers=("none", "context"))
        assert comp.workloads() == ["list", "array"]
        assert comp.prefetchers() == ["none", "context"]

    def test_speedups_relative_to_baseline(self):
        comp = compare([SMALL_LIST()], prefetchers=("none", "context"))
        speedups = comp.speedups()
        assert "none" not in speedups["list"]
        assert speedups["list"]["context"] > 0

    def test_mean_speedups_geomean(self):
        comp = compare(
            [SMALL_LIST(), SMALL_ARRAY()], prefetchers=("none", "context")
        )
        mean = comp.mean_speedups()["context"]
        per_wl = comp.speedups()
        lo = min(per_wl[w]["context"] for w in per_wl)
        hi = max(per_wl[w]["context"] for w in per_wl)
        assert lo <= mean <= hi

    def test_mpki_table(self):
        comp = compare([SMALL_LIST()], prefetchers=("none",))
        table = comp.mpki("l1")
        assert table["list"]["none"] >= 0

    def test_progress_callback(self):
        lines = []
        compare([SMALL_ARRAY()], prefetchers=("none",), progress=lines.append)
        assert len(lines) == 1
        assert "array/none" in lines[0]

    def test_same_trace_replayed_per_prefetcher(self):
        comp = compare([SMALL_LIST()], prefetchers=("none", "stride"))
        a = comp.get("list", "none")
        b = comp.get("list", "stride")
        assert a.instructions == b.instructions


class TestStorageSweep:
    def test_figure13_grid(self):
        results = storage_sweep([SMALL_LIST()], cst_sizes=[256, 1024], limit=800)
        assert set(results) == {256, 1024}
        assert "list" in results[256]

    def test_larger_cst_not_worse_on_small_workload(self):
        results = storage_sweep([SMALL_LIST()], cst_sizes=[64, 2048])
        # with a tiny CST the working set cannot be covered
        small = results[64]["list"].ipc
        large = results[2048]["list"].ipc
        assert large >= small * 0.9
