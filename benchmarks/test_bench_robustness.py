"""Robustness bench: speedups hold across workload and prefetcher seeds."""

from conftest import run_once

from repro.experiments import robustness

WORKLOADS = ("list", "array")
SEEDS = (7, 11, 23)


def test_seed_robustness(benchmark):
    result = run_once(benchmark, robustness.run, "small", WORKLOADS, SEEDS)

    for name in WORKLOADS:
        wl = result.workload_seed_spread[name]
        pf = result.prefetcher_seed_spread[name]
        # the win survives every seed on both axes
        assert min(wl.samples) > 1.2, name
        assert min(pf.samples) > 1.2, name
        # exploration noise is second-order
        assert pf.cv < 0.2, name
    print()
    print(robustness.render(result))
