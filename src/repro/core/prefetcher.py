"""The context-based prefetcher (Algorithm 1 / Figures 6–7 of the paper).

Three units run on every demand access:

1. **Feedback** — the current address is matched against the prefetch
   queue; hit depths drive the bell-shaped reward applied to the CST, and
   queue expirations apply the negative expiry reward.
2. **Collection** — the current address is associated (as a stored delta)
   with the contexts sampled from the history queue at depths spanning the
   prefetch window.
3. **Prediction** — the current context is reduced (Reducer), looked up in
   the CST, and the ε-greedy policy picks real and shadow prefetches,
   throttled by the accuracy-driven degree.

Feedback runs before prediction so that a prediction pushed by this very
access cannot immediately reward itself at depth zero.
"""

from __future__ import annotations

from collections import Counter

from repro.core.bandit import make_policy
from repro.core.config import ContextPrefetcherConfig
from repro.core.context import ContextTracker
from repro.core.cst import ContextStatesTable
from repro.core.history import HistoryQueue, HistoryRecord
from repro.core.prefetch_queue import FeedbackEvent, PrefetchQueue, QueueEntry
from repro.core.reducer import Reducer
from repro.core.reward import FlatRewardFunction, RewardFunction
from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest


class ContextPrefetcher(Prefetcher):
    """Reinforcement-learning prefetcher approximating semantic locality."""

    name = "context"

    def __init__(self, config: ContextPrefetcherConfig | None = None):
        self.config = config or ContextPrefetcherConfig()
        cfg = self.config
        self.tracker = ContextTracker(block_bytes=cfg.block_bytes)
        self.reducer = Reducer(cfg)
        self.cst = ContextStatesTable(cfg)
        self.history = HistoryQueue(cfg.history_entries, cfg.sample_depths)
        self.queue = PrefetchQueue(cfg.prefetch_queue_entries)
        self.policy = make_policy(cfg)
        self.reward = self._make_reward(
            cfg.window_lo, cfg.window_hi, cfg.window_center
        )
        #: depth -> count over every resolved prediction (Figure 8 input)
        self.hit_depth_histogram: Counter[int] = Counter()
        self.predictions_real = 0
        self.predictions_shadow = 0
        self.rewards_applied = 0
        # adaptive-window extension state
        self._depth_ema = float(cfg.window_center)
        self._feedback_events = 0
        self.window_updates = 0

    # ------------------------------------------------------------------

    def _line_of(self, addr: int) -> int:
        return addr // self.config.delta_granularity

    def _make_reward(self, lo: int, hi: int, center: int) -> RewardFunction:
        cfg = self.config
        reward_cls = (
            FlatRewardFunction if cfg.reward_shape == "flat" else RewardFunction
        )
        return reward_cls(
            lo=lo,
            hi=hi,
            center=center,
            peak=cfg.reward_peak,
            late_penalty=cfg.late_penalty,
            early_penalty=cfg.early_penalty,
        )

    def _apply_feedback(self, events: list[FeedbackEvent]) -> None:
        for event in events:
            if event.expired or event.depth < 0:
                # negative depths can only come from an index epoch change
                # (e.g. a caller restarting the stream); treat as expiry
                reward = self.reward.expiry_reward()
                self.policy.observe_outcome(hit=False)
            else:
                reward = self.reward(event.depth)
                self.hit_depth_histogram[event.depth] += 1
                self.policy.observe_outcome(hit=reward > 0)
                self._depth_ema += 0.005 * (event.depth - self._depth_ema)
            entry = event.entry
            if self.cst.apply_reward(entry.reduced_hash, entry.delta, reward):
                self.rewards_applied += 1
            self._feedback_events += 1
        if (
            self.config.adaptive_window
            and self._feedback_events >= self.config.window_update_period
        ):
            self._feedback_events = 0
            self._recenter_window()

    def _recenter_window(self) -> None:
        """Adaptive-window extension: slide the reward bell to the
        observed hit-depth average, preserving its proportions.

        Section 4.3 notes the target distance spans ~10–90 accesses across
        workloads while a single bell must serve all of them; this closes
        that gap per-workload at run time.
        """
        cfg = self.config
        lo_bound, hi_bound = cfg.window_center_bounds
        center = round(min(hi_bound, max(lo_bound, self._depth_ema)))
        if center == self.reward.center:
            return
        half_lo = cfg.window_center - cfg.window_lo
        half_hi = cfg.window_hi - cfg.window_center
        # the queue must out-span the window (Section 5); clamp hi to it
        hi = min(center + half_hi, cfg.prefetch_queue_entries)
        self.reward = self._make_reward(
            lo=max(1, center - half_lo), hi=hi, center=min(center, hi)
        )
        self.window_updates += 1

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        cfg = self.config
        capture = self.tracker.capture(access)
        line = self._line_of(access.addr)

        # --- feedback unit -------------------------------------------
        self._apply_feedback(self.queue.match(line, access.index))

        # --- collection unit -----------------------------------------
        dmin, dmax = cfg.delta_min, cfg.delta_max
        add_association = self.cst.add_association
        for record in self.history.sample():
            delta = line - record.line
            if delta != 0 and dmin <= delta <= dmax:
                add_association(record.reduced_hash, delta)

        # --- context reduction ----------------------------------------
        reducer_entry, reduced = self.reducer.lookup(capture, self.cst)
        reduced = self.reducer.adapt(reducer_entry, capture, self.cst, reduced)

        # --- prediction unit ------------------------------------------
        requests: list[PrefetchRequest] = []
        cst_entry = self.cst.lookup(reduced)
        if cst_entry is not None:
            selection = self.policy.select(cst_entry)
            for cand, shadow in [(c, False) for c in selection.real] + [
                (c, True) for c in selection.shadow
            ]:
                target_line = line + cand.delta
                if target_line < 0:
                    continue
                # A line already predicted by an outstanding entry is
                # re-added as a shadow prefetch to train another pair
                # (Section 4.2).
                if not shadow and self.queue.outstanding_for(target_line):
                    shadow = True
                entry = QueueEntry(
                    reduced_hash=reduced,
                    delta=cand.delta,
                    target_block=target_line,
                    issue_index=access.index,
                    shadow=shadow,
                )
                self._apply_feedback(self.queue.push(entry))
                if shadow:
                    self.predictions_shadow += 1
                else:
                    self.predictions_real += 1
                requests.append(
                    PrefetchRequest(
                        addr=target_line * cfg.delta_granularity,
                        shadow=shadow,
                        meta=entry,
                    )
                )

        # --- record this context for future collection ----------------
        self.history.push(HistoryRecord(reduced, capture.block, line, access.index))
        return requests

    # ------------------------------------------------------------------

    def on_prefetch_issue(
        self, request: PrefetchRequest, issued: bool, reason: str
    ) -> None:
        """Memory-pressure rejections convert the prediction to a shadow op."""
        if issued or request.shadow:
            return
        entry = request.meta
        if isinstance(entry, QueueEntry):
            entry.shadow = True
            self.predictions_real -= 1
            self.predictions_shadow += 1

    # ------------------------------------------------------------------

    def storage_bits(self) -> int:
        return self.config.storage_bits()

    def accuracy(self) -> float:
        return self.policy.accuracy

    def reset(self) -> None:
        cfg = self.config
        self.tracker.reset()
        self.reducer.reset()
        self.cst.reset()
        self.history.reset()
        self.queue.reset()
        self.policy.reset()
        self.hit_depth_histogram.clear()
        self.predictions_real = 0
        self.predictions_shadow = 0
        self.rewards_applied = 0
        self._depth_ema = float(cfg.window_center)
        self._feedback_events = 0
        self.window_updates = 0
        self.reward = self._make_reward(
            cfg.window_lo, cfg.window_hi, cfg.window_center
        )
