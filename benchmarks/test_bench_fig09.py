"""Figure 9 bench: access-benefit classification per prefetcher."""

from conftest import run_once

from repro.experiments import fig09_accuracy as fig09


def test_fig09_accuracy_classification(benchmark, bench_sweep):
    result = run_once(benchmark, fig09.run, "small", bench_sweep)

    # paper shape: on irregular workloads the context prefetcher has the
    # largest useful fraction (hit prefetched + shorter wait); allow a
    # small tolerance at this truncated-trace scale where the RL loop has
    # had only a couple of traversals to converge
    for workload in ("list", "graph500-list"):
        context_useful = result.useful_fraction(workload, "context")
        for competitor in ("stride", "ghb-gdc", "ghb-pcdc", "sms"):
            assert context_useful >= 0.9 * result.useful_fraction(
                workload, competitor
            ), (workload, competitor)
    # and the no-prefetch run has zero useful accesses everywhere
    for workload in result.breakdown:
        assert result.useful_fraction(workload, "none") == 0.0
    print()
    print(fig09.render(result))
