"""Round-trip tests for the versioned SimulationResult codec."""

import json

import pytest

from repro.sim.codec import CODEC_VERSION, CodecError, decode_result, encode_result
from repro.sim.export import (
    comparison_from_json,
    comparison_to_json,
    result_from_json,
    result_to_json,
)
from repro.sim.runner import compare, run_workload


@pytest.fixture(scope="module")
def result():
    # the context prefetcher populates every field: hit depths, the
    # classifier breakdown, shadow counters, the accuracy EMA
    return run_workload("list", "context", limit=1200)


class TestCodec:
    def test_round_trip_equality(self, result):
        assert decode_result(encode_result(result)) == result

    def test_json_round_trip_equality(self, result):
        assert decode_result(json.loads(json.dumps(encode_result(result)))) == result

    def test_version_stamped(self, result):
        assert encode_result(result)["codec"] == CODEC_VERSION

    def test_version_mismatch_raises(self, result):
        encoded = encode_result(result)
        encoded["codec"] = CODEC_VERSION + 1
        with pytest.raises(CodecError):
            decode_result(encoded)

    def test_malformed_raises(self, result):
        encoded = encode_result(result)
        del encoded["classifier"]
        with pytest.raises(CodecError):
            decode_result(encoded)
        with pytest.raises(CodecError):
            decode_result({"codec": CODEC_VERSION})


class TestExportJson:
    def test_result_json_round_trip(self, result):
        assert result_from_json(result_to_json(result)) == result

    def test_comparison_json_round_trip(self):
        sweep = compare(["array"], ("none", "stride"), limit=600)
        restored = comparison_from_json(comparison_to_json(sweep))
        assert restored.workloads() == sweep.workloads()
        assert restored.prefetchers() == sweep.prefetchers()
        for wl in sweep.workloads():
            for pf in sweep.prefetchers():
                assert restored.get(wl, pf) == sweep.get(wl, pf)
