"""IR interpreter: executes a function and emits a simulator trace.

Plays the role of the CPU running the compiled binary: every IR memory
instruction becomes a :class:`~repro.workloads.trace.MemoryAccess`, with

* the hint table's semantic hints attached (the decoded hint NOPs),
* a dependence edge when the access's base address was produced by the
  immediately preceding memory access (pointer chasing),
* branch outcomes recorded for the global history register,
* non-memory instructions counted into the inter-access gaps,
* the function's designated key register exposed as ``reg_value``.

Memory is a sparse 8-byte-granular word store over the workload heap.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from repro.compiler.hintpass import HintInjectionPass, HintTable
from repro.compiler.ir import (
    Arith,
    BranchIf,
    Cmp,
    Function,
    Jump,
    Load,
    LoadIdx,
    Ret,
    Store,
)
from repro.hints import NO_HINTS
from repro.workloads.trace import MemoryAccess, TraceBuilder

_ARITH_OPS = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "div": lambda a, b: a // b,
    "mod": operator.mod,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
    "shl": operator.lshift,
    "shr": operator.rshift,
}

_CMP_OPS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


class Memory:
    """Sparse word-addressed memory (8-byte aligned slots)."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, addr: int) -> int:
        self.reads += 1
        return self._words.get(addr & ~7, 0)

    def write(self, addr: int, value: int) -> None:
        self.writes += 1
        self._words[addr & ~7] = value

    def write_struct(self, base: int, struct, values: dict[str, int]) -> None:
        """Initialise a struct instance's fields (setup helper)."""
        for fname, value in values.items():
            offset, _ = struct.field_info(fname)
            self.write(base + offset, value)


@dataclass
class ExecutionResult:
    """What one interpreted run produced."""

    return_value: int
    trace: list[MemoryAccess]
    instructions_executed: int
    hint_table: HintTable


class TrapError(RuntimeError):
    """Raised on runtime faults (null deref, bad op, step overrun)."""


@dataclass
class Interpreter:
    """Executes IR functions, producing traces through a TraceBuilder."""

    function: Function
    memory: Memory = field(default_factory=Memory)
    max_steps: int = 2_000_000

    def __post_init__(self) -> None:
        self.function.validate()
        self._pass = HintInjectionPass()
        self.hint_table = self._pass.run(self.function)

    # ------------------------------------------------------------------

    def run(
        self, *args: int, trace_builder: TraceBuilder | None = None
    ) -> ExecutionResult:
        fn = self.function
        if len(args) != len(fn.params):
            raise TypeError(
                f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        regs: dict[str, int] = dict(zip(fn.params, args))
        tb = trace_builder if trace_builder is not None else TraceBuilder()

        label = fn.entry
        index = 0
        steps = 0
        tainted: set[str] = set()  # registers derived from the last load
        start_len = len(tb.accesses)

        def value_of(operand) -> int:
            if isinstance(operand, int):
                return operand
            if operand not in regs:
                raise TrapError(f"read of undefined register {operand!r}")
            return regs[operand]

        def key_value() -> int:
            if fn.key_register and fn.key_register in regs:
                return regs[fn.key_register]
            return 0

        while True:
            steps += 1
            if steps > self.max_steps:
                raise TrapError(f"step budget exceeded in {fn.name}")
            instr = fn.blocks[label][index]

            if isinstance(instr, Load):
                base = value_of(instr.base)
                if base == 0:
                    raise TrapError(f"null dereference in {label}:{index}")
                offset, _ = fn.structs[instr.struct].field_info(instr.field)
                value = self.memory.read(base + offset)
                site = f"{fn.name}.{label}.{index}"
                hints = self.hint_table.lookup(label, index) or NO_HINTS
                tb.load(
                    base + offset,
                    site,
                    value=value,
                    depends=instr.base in tainted,
                    reg_value=key_value(),
                    hints=hints,
                    gap=0,
                )
                regs[instr.dst] = value
                tainted = {instr.dst}
                index += 1
            elif isinstance(instr, LoadIdx):
                base = value_of(instr.base)
                idx = value_of(instr.index)
                addr = base + idx * instr.scale
                if addr <= 0:
                    raise TrapError(f"bad indexed address in {label}:{index}")
                value = self.memory.read(addr)
                site = f"{fn.name}.{label}.{index}"
                hints = self.hint_table.lookup(label, index) or NO_HINTS
                tb.load(
                    addr,
                    site,
                    value=value,
                    depends=instr.base in tainted or instr.index in tainted,
                    reg_value=key_value(),
                    hints=hints,
                    gap=1,  # the address computation
                )
                regs[instr.dst] = value
                tainted = {instr.dst}
                index += 1
            elif isinstance(instr, Store):
                base = value_of(instr.base)
                if base == 0:
                    raise TrapError(f"null store in {label}:{index}")
                offset, _ = fn.structs[instr.struct].field_info(instr.field)
                self.memory.write(base + offset, value_of(instr.src))
                site = f"{fn.name}.{label}.{index}"
                hints = self.hint_table.lookup(label, index) or NO_HINTS
                tb.store(
                    base + offset,
                    site,
                    depends=instr.base in tainted,
                    reg_value=key_value(),
                    hints=hints,
                    gap=0,
                )
                index += 1
            elif isinstance(instr, Arith):
                op = _ARITH_OPS.get(instr.op)
                if op is None:
                    raise TrapError(f"unknown arith op {instr.op!r}")
                regs[instr.dst] = op(value_of(instr.a), value_of(instr.b))
                if (isinstance(instr.a, str) and instr.a in tainted) or (
                    isinstance(instr.b, str) and instr.b in tainted
                ):
                    tainted.add(instr.dst)
                elif instr.dst in tainted:
                    tainted.discard(instr.dst)
                tb.gap(1)
                index += 1
            elif isinstance(instr, Cmp):
                op = _CMP_OPS.get(instr.op)
                if op is None:
                    raise TrapError(f"unknown cmp op {instr.op!r}")
                regs[instr.dst] = int(op(value_of(instr.a), value_of(instr.b)))
                tainted.discard(instr.dst)
                tb.gap(1)
                index += 1
            elif isinstance(instr, BranchIf):
                taken = bool(value_of(instr.cond))
                tb.branch(taken)
                label = instr.if_true if taken else instr.if_false
                index = 0
            elif isinstance(instr, Jump):
                tb.gap(1)
                label = instr.target
                index = 0
            elif isinstance(instr, Ret):
                return ExecutionResult(
                    return_value=value_of(instr.value),
                    trace=tb.accesses[start_len:],
                    instructions_executed=steps,
                    hint_table=self.hint_table,
                )
            else:  # pragma: no cover - exhaustive over the IR
                raise TrapError(f"unknown instruction {instr!r}")
