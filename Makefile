# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test bench experiments figures examples lint clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# the tier-1 gate, matching CI and ROADMAP.md exactly: works from a
# clean checkout without an editable install (src/ goes on PYTHONPATH)
test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

# the correctness gate: the repo's own static-analysis pass (determinism,
# hardware budget, prefetcher contracts, experiment hygiene), plus ruff and
# mypy when installed (pip install -e .[lint]); the custom pass is mandatory
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro lint
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests; \
	else echo "ruff not installed; skipping (pip install -e .[lint])"; fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else echo "mypy not installed; skipping (pip install -e .[lint])"; fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# regenerate every figure at medium scale into results/medium/
experiments:
	$(PYTHON) scripts/run_full_experiments.py medium results/medium

figures:
	$(PYTHON) -m repro figure tables
	$(PYTHON) -m repro figure 1
	$(PYTHON) -m repro figure 5
	$(PYTHON) -m repro figure 12

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/prefetcher_internals.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
