"""The hint-injection pass (the paper's modified LLVM pass, Section 6).

Walks every memory instruction of a function and decides whether the
paper's compiler would precede it with a hint NOP:

* a :class:`~repro.compiler.ir.Load` of a **pointer-typed field** gets
  ``SemanticHints(type_id, link_offset, ARROW)`` — it "writes a new value
  that is represented as a pointer at the program level";
* a :class:`~repro.compiler.ir.LoadIdx` of **pointer elements** gets
  INDEX-form hints;
* loads of plain data and all stores of plain data get **no hints** —
  the paper skips pointer+offset data accesses "which access data that
  was likely already prefetched by the original access to the base
  pointer";
* a :class:`~repro.compiler.ir.Store` of a pointer-typed field is hinted
  too (it writes a pointer value the structure will be traversed by).

Type ids are enumerated per program through the shared
:class:`~repro.hints.TypeRegistry`, as the paper assigns "a unique value
within the compiled program".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import Function, Load, LoadIdx, Store, is_pointer_type
from repro.hints import RefForm, SemanticHints, TypeRegistry


@dataclass
class HintTable:
    """Pass output: (block label, instruction index) -> hints."""

    hints: dict[tuple[str, int], SemanticHints] = field(default_factory=dict)
    #: accesses examined / hinted, for the overhead accounting of §6
    memory_instructions: int = 0
    hinted_instructions: int = 0

    def lookup(self, block: str, index: int) -> SemanticHints | None:
        return self.hints.get((block, index))

    @property
    def hint_overhead(self) -> float:
        """Fraction of memory instructions that carry a hint NOP."""
        if self.memory_instructions == 0:
            return 0.0
        return self.hinted_instructions / self.memory_instructions


class HintInjectionPass:
    """Assigns semantic hints to a function's memory instructions."""

    def __init__(self, registry: TypeRegistry | None = None):
        self.registry = registry or TypeRegistry()

    def run(self, function: Function) -> HintTable:
        table = HintTable()
        for label, instrs in function.blocks.items():
            for index, instr in enumerate(instrs):
                hints = self._hints_for(function, instr)
                if isinstance(instr, (Load, LoadIdx, Store)):
                    table.memory_instructions += 1
                if hints is not None:
                    table.hints[(label, index)] = hints
                    table.hinted_instructions += 1
        return table

    # ------------------------------------------------------------------

    def _hints_for(self, function: Function, instr) -> SemanticHints | None:
        if isinstance(instr, Load):
            offset, type_name = function.structs[instr.struct].field_info(instr.field)
            if not is_pointer_type(type_name):
                return None
            return SemanticHints(
                type_id=self.registry.type_id(instr.struct),
                link_offset=offset,
                ref_form=RefForm.ARROW,
            )
        if isinstance(instr, LoadIdx):
            if not is_pointer_type(instr.elem_type):
                return None
            elem = instr.elem_type.split(":", 1)[-1]
            return SemanticHints(
                type_id=self.registry.type_id(elem),
                link_offset=0,
                ref_form=RefForm.INDEX,
            )
        if isinstance(instr, Store):
            offset, type_name = function.structs[instr.struct].field_info(instr.field)
            if not is_pointer_type(type_name):
                return None
            return SemanticHints(
                type_id=self.registry.type_id(instr.struct),
                link_offset=offset,
                ref_form=RefForm.ARROW,
            )
        return None
