"""Figure 13 bench: speedup vs CST storage size."""

from conftest import run_once

from repro.experiments import fig13_storage_sweep as fig13

SIZES = (256, 1024, 4096)
WORKLOADS = ("list", "graph500-list", "mcf", "array")


def test_fig13_storage_sweep(benchmark):
    result = run_once(benchmark, fig13.run, "small", SIZES, WORKLOADS)

    # paper shape: performance is not monotone in storage, and a small
    # CST already captures most of the benefit ("the reinforcement
    # learning algorithm increases the odds that the stored elements will
    # be the most useful ones")
    smallest = min(SIZES)
    best = max(result.mean_all.values())
    assert result.mean_all[smallest] > 1.0  # tiny CST still helps
    assert result.mean_all[smallest] > 0.5 * best
    assert set(result.storage_kib) == set(SIZES)
    # storage grows with entries
    kib = [result.storage_kib[s] for s in sorted(SIZES)]
    assert kib == sorted(kib)
    print()
    print(fig13.render(result))
