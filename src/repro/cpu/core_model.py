"""Interval-style out-of-order core timing model.

The paper evaluates on a gem5 OoO x86 core (4-wide fetch, 192-entry ROB,
32-entry LQ/SQ).  For a trace-driven reproduction we model the properties
the prefetcher's benefit depends on:

* **Frontend bandwidth** — instructions issue at ``issue_width`` per cycle.
* **Memory-level parallelism** — independent misses overlap freely; the
  load queue bounds how many memory operations are simultaneously in
  flight (the MSHR files in the hierarchy bound it further).
* **ROB-bounded latency hiding** — instructions retire in order, so once
  an access is ``rob_size`` instructions older than the frontend and still
  incomplete, issue stalls until it finishes.  This is what turns a DRAM
  miss into an exposed stall while hiding L1/L2 hits entirely.
* **Dependence serialisation** — a pointer-chasing access cannot issue
  until the access producing its address completes, which is exactly why
  linked traversals are latency-bound and why prefetching transforms them.

The model advances a monotonically non-decreasing *issue cursor*; total
cycles are the later of the frontend cursor and the last completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(slots=True)
class CoreConfig:
    """Core parameters (defaults reproduce Table 2)."""

    issue_width: int = 4
    rob_size: int = 192
    lq_size: int = 32


@dataclass(slots=True)
class CoreStats:
    """Aggregate timing results."""

    instructions: int = 0
    memory_accesses: int = 0
    cycles: int = 0
    stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def _state(default: object = None) -> object:
    """An internal-state field: not part of init, repr or equality, so the
    dataclass behaves exactly as before slots were added."""
    return field(init=False, repr=False, compare=False, default=default)


@dataclass(slots=True)
class CoreModel:
    """Tracks issue/completion times for a stream of memory accesses.

    Usage: call :meth:`issue_time` to learn when the next access issues
    (this is the ``now`` handed to the memory hierarchy), then report the
    hierarchy's latency back through :meth:`complete`.

    ``slots=True`` keeps the per-access methods on slot reads; the state
    attributes are declared as non-init fields and set in __post_init__.
    """

    config: CoreConfig = field(default_factory=CoreConfig)
    stats: CoreStats = field(default_factory=CoreStats)
    _cursor: float = _state()  # issue time of the most recent access
    _last_completion: float = _state()
    _max_completion: float = _state()
    _inst_pos: int = _state()  # instructions issued so far
    _issue_width: int = _state()
    _rob_size: int = _state()
    #: completions bounded by the load queue (ring of size lq_size)
    _lq_ring: "deque[float]" = _state()
    #: (completion, inst position) per outstanding access, for the ROB cap
    _rob_window: "deque[tuple[float, int]]" = _state()
    _rob_floor: float = _state()

    def __post_init__(self) -> None:
        self._cursor = 0.0
        self._last_completion = 0.0
        self._max_completion = 0.0
        self._inst_pos = 0
        # config parameters are immutable per run; cache them as plain
        # attributes so the per-access methods skip the double lookup
        self._issue_width = self.config.issue_width
        self._rob_size = self.config.rob_size
        self._lq_ring = deque(maxlen=self.config.lq_size)
        self._rob_window = deque()
        self._rob_floor = 0.0

    def issue_time(self, inst_gap: int, *, depends_on_prev: bool) -> int:
        """Cycle at which the next memory access issues.

        ``inst_gap`` is the number of non-memory instructions executed
        since the previous access; they flow through the frontend at the
        issue width.  A dependent access additionally waits for the
        previous access's data; a full load queue or ROB waits for the
        oldest outstanding completion.
        """
        issue = self._cursor + (inst_gap + 1) / self._issue_width
        if depends_on_prev and self._last_completion > issue:
            issue = self._last_completion
        lq_ring = self._lq_ring
        if len(lq_ring) == lq_ring.maxlen and lq_ring[0] > issue:
            issue = lq_ring[0]
        # Retirement: accesses more than rob_size instructions older than
        # the frontend must have completed before this one can issue.
        rob_window = self._rob_window
        if rob_window:
            rob_horizon = self._inst_pos + inst_gap + 1 - self._rob_size
            while rob_window and rob_window[0][1] <= rob_horizon:
                completion, _ = rob_window.popleft()
                if completion > self._rob_floor:
                    self._rob_floor = completion
        if self._rob_floor > issue:
            issue = self._rob_floor
        return int(issue)

    def complete(self, issue: int, latency: int, inst_gap: int) -> int:
        """Record the completion of an access; returns the completion cycle."""
        completion = float(issue + latency)
        insts = inst_gap + 1
        stats = self.stats
        stall = issue - (self._cursor + insts / self._issue_width)
        if stall > 0:
            stats.stall_cycles += int(stall)
        self._cursor = float(issue)
        inst_pos = self._inst_pos + insts
        self._inst_pos = inst_pos
        self._last_completion = completion
        if completion > self._max_completion:
            self._max_completion = completion
        self._lq_ring.append(completion)
        self._rob_window.append((completion, inst_pos))
        stats.instructions += insts
        stats.memory_accesses += 1
        return int(completion)

    def finalize(self) -> CoreStats:
        """Account for draining the window at end of trace."""
        self.stats.cycles = int(max(self._cursor, self._max_completion))
        return self.stats

    def is_pristine(self) -> bool:
        """True when no access has been issued (freshly constructed)."""
        return (
            self._inst_pos == 0
            and not self._lq_ring
            and not self._rob_window
            and self.stats.memory_accesses == 0
        )
