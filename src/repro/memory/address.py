"""Address arithmetic helpers.

The paper's context prefetcher operates at 32-byte block granularity
(Section 7.3: finer granularities thrash its tables), while the caches use
64-byte lines.  These helpers centralise the alignment math so no module
hand-rolls shifts.
"""

from __future__ import annotations

#: Granularity at which the context prefetcher tracks addresses (bytes).
BLOCK_BYTES = 32

#: Cache line size used by both cache levels (bytes).
LINE_BYTES = 64

#: Size of the virtual address space modelled (48-bit, x86-64 canonical).
ADDRESS_BITS = 48
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1


def align_down(addr: int, granularity: int) -> int:
    """Round ``addr`` down to a multiple of ``granularity`` (a power of two)."""
    return addr & ~(granularity - 1)


def block_of(addr: int, block_bytes: int = BLOCK_BYTES) -> int:
    """Return the block number containing byte address ``addr``."""
    return addr // block_bytes


def block_to_addr(block: int, block_bytes: int = BLOCK_BYTES) -> int:
    """Return the first byte address of block number ``block``."""
    return block * block_bytes


def line_of(addr: int, line_bytes: int = LINE_BYTES) -> int:
    """Return the cache-line number containing byte address ``addr``."""
    return addr // line_bytes


def line_to_addr(line: int, line_bytes: int = LINE_BYTES) -> int:
    """Return the first byte address of cache line number ``line``."""
    return line * line_bytes


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
