"""Differential fuzz: the native kernel against the interpreted oracle.

Each case derives a deterministic seed from its own case label (never
from the wall clock or global RNG state — rule ``DET``), generates a
synthetic trace plus a random hierarchy/core/prefetcher configuration,
runs the same inputs through the interpreted reference loop and the
compiled batch kernel, and requires field-for-field equality of the
resulting :class:`~repro.sim.metrics.SimulationResult`.

The tier-1 run covers ``NUM_FAST_CASES`` small cases (seconds); the
``--runslow`` tier re-runs the generator over many more, longer traces.
Cases are *not* minimized to kernel-eligible configs: some deliberately
exceed the native request caps — including over-cap RL context degrees —
so the documented fallback path is fuzzed alongside the kernel itself.
The context family draws randomized CST/reducer/window/bandit geometry,
so the C port of the RL loop (MT19937 included) is differentially fuzzed
against the interpreted oracle, not just replayed at the default config.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.ghb import GHBConfig, GHBPrefetcher
from repro.prefetchers.markov import MarkovConfig, MarkovPrefetcher
from repro.prefetchers.nopf import NoPrefetcher
from repro.prefetchers.sms import SMSConfig, SMSPrefetcher
from repro.prefetchers.stride import StrideConfig, StridePrefetcher
from repro.sim import native as native_pkg
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryAccess

NUM_FAST_CASES = 200
NUM_SLOW_CASES = 600

pytestmark = pytest.mark.skipif(
    not native_pkg.is_available(),
    reason="compiled kernel unavailable (numpy/cffi/toolchain)",
)


def _seed_for(label: str) -> int:
    """Config-derived seed: stable across runs, machines and processes."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _fuzz_trace(rng: random.Random, length: int, line: int) -> list[MemoryAccess]:
    """A synthetic access stream mixing the locality shapes the families
    key on: unit/strided streams, region-local scatter, repeated miss
    sequences (Markov food) and dependent pointer chases."""
    pcs = [0x400000 + 4 * rng.randrange(64) for _ in range(rng.randrange(4, 16))]
    regions = [rng.randrange(1 << 34) * line for _ in range(rng.randrange(2, 8))]
    trace: list[MemoryAccess] = []
    addr = rng.choice(regions)
    while len(trace) < length:
        shape = rng.randrange(5)
        seg = rng.randrange(4, 24)
        if shape == 0:  # unit-stride stream
            stride = line
        elif shape == 1:  # fixed non-unit stride, sometimes negative
            stride = rng.choice((-3, -1, 2, 3, 5)) * line + rng.choice((0, 8))
        else:
            stride = 0
        if shape == 3:  # replay: revisit a region start (Markov training)
            addr = rng.choice(regions)
        for _ in range(seg):
            if len(trace) >= length:
                break
            if shape == 2:  # region-local scatter (SMS patterns)
                addr = rng.choice(regions) + rng.randrange(32) * line
            elif shape == 4:  # pointer chase: wild jump, dependent
                addr = rng.randrange(1 << 40)
            else:
                addr = (addr + stride) % (1 << 42)
            trace.append(
                MemoryAccess(
                    addr=addr,
                    pc=rng.choice(pcs),
                    is_load=rng.random() < 0.9,
                    inst_gap=rng.randrange(13),
                    depends_on_prev=(shape == 4 and rng.random() < 0.8),
                )
            )
    return trace


def _fuzz_hierarchy(rng: random.Random, line: int) -> HierarchyConfig:
    return HierarchyConfig(
        l1_size=rng.choice((4, 16, 64)) * 1024,
        l1_ways=rng.choice((1, 2, 4, 8)),
        l1_latency=rng.choice((1, 2, 4)),
        l1_mshrs=rng.choice((1, 2, 4, 8)),
        l2_size=rng.choice((16, 64, 256)) * 1024,
        l2_ways=rng.choice((4, 8, 16)),
        l2_latency=rng.choice((10, 20)),
        l2_mshrs=rng.choice((2, 8, 20)),
        dram_latency=rng.choice((80, 150, 300)),
        dram_service_interval=rng.choice((1, 4, 9)),
        line_bytes=line,
        prefetch_buffers=rng.choice((1, 2, 8, 16)),
        prefetch_mshr_reserve=rng.choice((0, 1, 2)),
        prefetch_backlog_depth=rng.choice((1, 4, 32)),
        prefetch_fill_l1=rng.random() < 0.8,
    )


def _fuzz_core(rng: random.Random) -> CoreConfig:
    return CoreConfig(
        issue_width=rng.choice((1, 2, 4, 8)),
        rob_size=rng.choice((16, 64, 192)),
        lq_size=rng.choice((4, 16, 32)),
    )


def _fuzz_prefetcher(rng: random.Random, line: int):
    family = rng.randrange(7)
    # an over-cap degree (> 64 requests) must fall back, not diverge
    degree = 100 if rng.random() < 0.05 else rng.randrange(1, 9)
    if family == 0:
        return NoPrefetcher()
    if family == 1:
        return StridePrefetcher(
            StrideConfig(
                table_entries=rng.choice((16, 64, 512)),
                degree=degree,
                line_bytes=line,
                train_on_miss_only=rng.random() < 0.8,
            )
        )
    if family in (2, 3):
        return GHBPrefetcher(
            GHBConfig(
                ghb_entries=rng.choice((64, 256, 2048)),
                index_entries=rng.choice((16, 256)),
                match_length=rng.choice((2, 3, 4)),
                degree=degree,
                max_walk=rng.choice((8, 64)),
                localization="global" if family == 2 else "pc",
                line_bytes=line,
                train_on_miss_only=rng.random() < 0.8,
            )
        )
    if family == 4:
        return SMSPrefetcher(
            SMSConfig(
                region_bytes=rng.choice((4, 16, 32)) * line,
                line_bytes=line,
                filter_entries=rng.choice((4, 32)),
                agt_entries=rng.choice((4, 32)),
                pht_entries=rng.choice((64, 2048)),
                generation_timeout=rng.choice((32, 512)),
            )
        )
    if family == 5:
        return MarkovPrefetcher(
            MarkovConfig(
                table_entries=rng.choice((64, 2048)),
                successors_per_entry=rng.choice((1, 2, 4)),
                degree=degree,
                line_bytes=line,
                train_on_miss_only=rng.random() < 0.8,
            )
        )
    return _fuzz_context(rng, degree)


def _fuzz_context(rng: random.Random, degree: int):
    """A randomized RL context prefetcher.

    Geometry is drawn to satisfy the config invariants (power-of-two
    tables, queue out-spanning the reward window, depths inside the
    history); the over-cap ``degree`` passed in by the family dispatcher
    still forces the documented native fallback on ~5% of cases.  The
    adaptive-window ablation keeps the default (known recenter-safe)
    window geometry so both kernels stay on the represented path.
    """
    from repro.core.config import ContextPrefetcherConfig
    from repro.core.prefetcher import ContextPrefetcher

    adaptive_window = rng.random() < 0.25
    if adaptive_window:
        lo, hi, center = 18, 50, 30
    else:
        lo = rng.randrange(2, 30)
        hi = lo + rng.randrange(4, 40)
        center = rng.randrange(lo, hi + 1)
    history = rng.choice((20, 50, 80))
    depths = tuple(sorted(rng.sample(range(1, history + 1), rng.randrange(2, 6))))
    cfg = ContextPrefetcherConfig(
        cst_entries=rng.choice((256, 1024, 2048)),
        cst_links=rng.choice((2, 4, 8)),
        cst_tag_bits=rng.choice((6, 8, 10)),
        reducer_entries=rng.choice((1024, 4096, 16384)),
        reducer_tag_bits=rng.choice((2, 4)),
        history_entries=history,
        prefetch_queue_entries=max(rng.choice((64, 128, 256)), hi),
        window_lo=lo,
        window_hi=hi,
        window_center=center,
        reward_peak=rng.choice((2, 4, 8, 16)),
        sample_depths=depths,
        epsilon_min=rng.choice((0.005, 0.01, 0.05)),
        epsilon_max=rng.choice((0.1, 0.2, 0.3)),
        accuracy_ema_alpha=rng.choice((0.005, 0.01, 0.05)),
        shadow_probability=rng.choice((0.0, 0.1, 0.3)),
        seed=rng.randrange(1 << 48),
        max_degree=degree,
        adaptive_reduction=rng.random() < 0.7,
        shadow_prefetches=rng.random() < 0.8,
        adaptive_epsilon=rng.random() < 0.7,
        fixed_epsilon=rng.choice((0.02, 0.05, 0.1)),
        reward_shape="flat" if rng.random() < 0.3 else "bell",
        policy="softmax" if rng.random() < 0.3 else "egreedy",
        softmax_temperature=rng.choice((1.0, 4.0, 8.0)),
        adaptive_window=adaptive_window,
        window_update_period=rng.choice((512, 2048)),
    )
    return ContextPrefetcher(cfg)


def _run_case(label: str, length_range: tuple[int, int]) -> None:
    rng = random.Random(_seed_for(label))
    line = rng.choice((32, 64, 64, 64, 128))
    trace = _fuzz_trace(rng, rng.randrange(*length_range), line)
    hier = _fuzz_hierarchy(rng, line)
    core = _fuzz_core(rng)

    limit = rng.randrange(50, len(trace) + 100) if rng.random() < 0.3 else None
    n_effective = len(trace) if limit is None else min(limit, len(trace))
    warmup = rng.randrange(1, n_effective) if rng.random() < 0.25 else 0
    start_index = rng.choice((0, 1, 1000)) if rng.random() < 0.2 else 0

    results = []
    for native in (False, True):
        # fresh prefetcher per mode from the same sub-seed, so learned
        # state never crosses the differential boundary
        pf = _fuzz_prefetcher(random.Random(_seed_for(label + "/pf")), line)
        sim = Simulator(
            pf, hierarchy_config=hier, core_config=core, native=native
        )
        results.append(
            sim.run(
                trace,
                workload_name=label,
                limit=limit,
                start_index=start_index,
                warmup=warmup,
            )
        )
        if native and not sim.last_run_native:
            # a fallback is legal, but it must say why — the sweep
            # summary aggregates exactly these strings
            assert sim.last_native_fallback, f"{label}: silent fallback"
    interpreted, native_result = results
    assert native_result == interpreted, (
        f"{label}: native kernel diverged from the interpreted oracle\n"
        f"config: hier={hier} core={core} limit={limit} "
        f"warmup={warmup} start_index={start_index}"
    )


@pytest.mark.parametrize("case", range(NUM_FAST_CASES))
def test_native_differential_fuzz(case: int) -> None:
    _run_case(f"native-fuzz/fast/{case}", (120, 500))


@pytest.mark.slow
@pytest.mark.parametrize("case", range(NUM_SLOW_CASES))
def test_native_differential_fuzz_extended(case: int) -> None:
    _run_case(f"native-fuzz/slow/{case}", (800, 4000))
