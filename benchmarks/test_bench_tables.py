"""Tables 1–3 bench: render the configuration tables and audit storage."""

from conftest import run_once

from repro.experiments import tables


def test_tables_render(benchmark):
    def build_all():
        return tables.table1(), tables.table2(), tables.table3()

    t1, t2, t3 = run_once(benchmark, build_all)
    assert "IP" in t1 and "Compiler" in t1
    assert "CST" in t2 and "2048 entries" in t2
    assert "spec2006" in t3 and "graph500" in t3
    print()
    for text in (t1, t2, t3):
        print(text)
        print()
