"""Tests for the IR interpreter and the compiled workload adapter."""

import pytest

from repro.compiler.interp import Interpreter, Memory, TrapError
from repro.compiler.ir import FunctionBuilder
from repro.compiler.programs import (
    CompiledListSumProgram,
    build_array_sum,
    build_list_search,
    build_list_sum,
    setup_array,
    setup_linked_list,
)
from repro.hints import RefForm
from repro.workloads.trace import Heap


class TestMemory:
    def test_uninitialised_reads_zero(self):
        assert Memory().read(0x1000) == 0

    def test_word_alignment(self):
        memory = Memory()
        memory.write(0x1003, 7)
        assert memory.read(0x1000) == 7


class TestListSum:
    def test_computes_correct_sum(self):
        memory = Memory()
        heap = Heap()
        layout = setup_linked_list(memory, heap, [1, 2, 3, 4, 5])
        interp = Interpreter(build_list_sum(), memory=memory)
        result = interp.run(layout.head)
        assert result.return_value == 15

    def test_empty_list(self):
        interp = Interpreter(build_list_sum())
        assert interp.run(0).return_value == 0

    def test_trace_has_two_loads_per_node(self):
        memory = Memory()
        layout = setup_linked_list(memory, Heap(), [10, 20, 30])
        interp = Interpreter(build_list_sum(), memory=memory)
        result = interp.run(layout.head)
        loads = [a for a in result.trace if a.is_load]
        assert len(loads) == 6

    def test_next_loads_carry_arrow_hints(self):
        memory = Memory()
        layout = setup_linked_list(memory, Heap(), [10, 20, 30])
        result = Interpreter(build_list_sum(), memory=memory).run(layout.head)
        hinted = [a for a in result.trace if a.hints.ref_form is RefForm.ARROW]
        assert len(hinted) == 3  # one next-load per node
        assert all(a.hints.link_offset == 8 for a in hinted)

    def test_pointer_chase_is_dependent(self):
        memory = Memory()
        layout = setup_linked_list(memory, Heap(), [1, 2, 3])
        result = Interpreter(build_list_sum(), memory=memory).run(layout.head)
        # the second node's loads depend on the first node's next-load
        later = result.trace[2:]
        assert any(a.depends_on_prev for a in later)

    def test_branch_outcomes_recorded(self):
        memory = Memory()
        layout = setup_linked_list(memory, Heap(), [1, 2])
        result = Interpreter(build_list_sum(), memory=memory).run(layout.head)
        outcomes = [t for a in result.trace for t in a.branches]
        assert True in outcomes


class TestListSearch:
    def test_finds_key(self):
        memory = Memory()
        layout = setup_linked_list(memory, Heap(), [5, 9, 13])
        interp = Interpreter(build_list_search(), memory=memory)
        result = interp.run(layout.head, 9)
        assert result.return_value == layout.node_addrs[1]

    def test_missing_key_returns_null(self):
        memory = Memory()
        layout = setup_linked_list(memory, Heap(), [5, 9])
        result = Interpreter(build_list_search(), memory=memory).run(layout.head, 99)
        assert result.return_value == 0

    def test_key_register_exposed(self):
        memory = Memory()
        layout = setup_linked_list(memory, Heap(), [5, 9])
        result = Interpreter(build_list_search(), memory=memory).run(layout.head, 9)
        assert all(a.reg_value == 9 for a in result.trace)


class TestArraySum:
    def test_computes_sum_with_index_loads(self):
        memory = Memory()
        base = setup_array(memory, Heap(), [2, 4, 6])
        result = Interpreter(build_array_sum(), memory=memory).run(base, 3)
        assert result.return_value == 12
        assert all(not a.hints.type_id for a in result.trace)  # ints: no hints

    def test_sequential_addresses(self):
        memory = Memory()
        base = setup_array(memory, Heap(), list(range(8)))
        result = Interpreter(build_array_sum(), memory=memory).run(base, 8)
        addrs = [a.addr for a in result.trace if a.is_load]
        assert addrs == [base + 8 * i for i in range(8)]


class TestTraps:
    def test_null_dereference(self):
        with pytest.raises(TrapError, match="null"):
            # non-empty list claim but head is null -> first load traps
            fb = FunctionBuilder("f", params=("p",))
            fb.struct("node", [("next", 0, "ptr:node")])
            fb.block("entry")
            fb.load("x", "p", "node", "next")
            fb.ret("x")
            Interpreter(fb.build()).run(0)

    def test_step_budget(self):
        fb = FunctionBuilder("spin")
        fb.block("entry")
        fb.jump("entry")
        interp = Interpreter(fb.build(), max_steps=100)
        with pytest.raises(TrapError, match="budget"):
            interp.run()

    def test_undefined_register(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        fb.ret("ghost")
        with pytest.raises(TrapError, match="undefined"):
            Interpreter(fb.build()).run()

    def test_wrong_arity(self):
        with pytest.raises(TypeError):
            Interpreter(build_list_sum()).run()


class TestCompiledWorkload:
    def test_trace_program_round_trip(self):
        program = CompiledListSumProgram(num_nodes=64, iterations=2)
        trace = program.trace()
        assert trace
        assert program.expected_sum > 0

    def test_compiled_workload_simulates_and_learns(self):
        from repro.sim.runner import run_workload

        program = CompiledListSumProgram(num_nodes=512, iterations=6)
        base = run_workload(program, "none")
        ctx = run_workload(CompiledListSumProgram(num_nodes=512, iterations=6), "context")
        assert ctx.speedup_over(base) > 1.1
