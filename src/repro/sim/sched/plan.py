"""Grid plans: deterministic enumeration and sharding of sweep grids.

A :class:`GridPlan` is the declarative form of a parameter sweep: the
workload, context-configuration and prefetcher axes, plus the shared
hierarchy/core configs and the trace truncation limit.  Enumeration
order is the serial loop's order — workloads outer, configs middle,
prefetchers inner — so every consumer (scheduler, result DB, progress
reporting) agrees on cell indices without communicating.

Cells are content-addressed with the result cache's
:func:`~repro.sim.cache.cell_key`, so a plan cell, a cache file and a
result-DB row for the same simulated inputs all share one key.  The
sweep id is a hash over the ordered key list: two plans that simulate
the same cells in the same order are the same sweep, however they were
spelled, and any change that would alter a simulated result (trace
content, config field, semantic source) re-keys the sweep.

``native`` is deliberately excluded from both keys — the compiled
kernel is bit-neutral, so a sweep resumed under the other kernel mode
must keep its completed cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Iterator, NamedTuple, Sequence, TypeVar

from repro.core.config import ContextPrefetcherConfig
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.cache import CellKeyer, plain_data

__all__ = [
    "DEFAULT_BATCH_CELLS",
    "KERNEL_BATCH_CELLS",
    "GridPlan",
    "PlanCell",
    "shard_by_workload",
]

#: upper bound on cells per dispatched batch: small enough that results
#: stream back (and commit to the DB) while the grid is still running,
#: large enough that per-batch IPC is amortized over many cells
DEFAULT_BATCH_CELLS = 512

#: upper bound when the shard executes inside the kernel's batch driver
#: (one GIL-released C call per shard): the per-shard Python cost is
#: near-constant there, so doubling the shard roughly halves boundary
#: overhead while a commit granule of ~1k sub-millisecond cells still
#: streams results back several times per second
KERNEL_BATCH_CELLS = 1024


class PlanCell(NamedTuple):
    """One grid position: integer refs into the plan's axes, no configs.

    Cells deliberately carry only the index, the prefetcher name and the
    context-config *table index* — the configs themselves ride the
    once-per-batch shared header (PERF004 pins this layout).
    """

    index: int
    workload: str
    prefetcher: str
    context_id: int


@dataclass(frozen=True)
class GridPlan:
    """A declarative sweep grid over registry workloads."""

    workloads: tuple[str, ...]
    prefetchers: tuple[str, ...]
    #: context-prefetcher variants; ``None`` means the paper default.
    #: Non-``context`` cells ignore the axis for keying (their configs
    #: live in source), but still enumerate once per entry so the grid
    #: stays a full cross product with stable indices.
    context_configs: tuple[ContextPrefetcherConfig | None, ...] = (None,)
    limit: int | None = None
    hierarchy_config: HierarchyConfig | None = None
    core_config: CoreConfig | None = None

    def __post_init__(self) -> None:
        if not self.workloads or not self.prefetchers or not self.context_configs:
            raise ValueError("GridPlan axes must be non-empty")

    @property
    def n_cells(self) -> int:
        return (
            len(self.workloads) * len(self.context_configs) * len(self.prefetchers)
        )

    def cells(self) -> Iterator[PlanCell]:
        """Deterministic grid order: workload » config » prefetcher.

        All cells of one workload are contiguous, which is what makes
        workload-affinity sharding a pure slicing operation.
        """
        index = 0
        for workload in self.workloads:
            for context_id in range(len(self.context_configs)):
                for prefetcher in self.prefetchers:
                    yield PlanCell(index, workload, prefetcher, context_id)
                    index += 1

    def cell_keys(self, fingerprints: dict[str, str]) -> list[str]:
        """Content-addressed key per cell, in enumeration order.

        ``fingerprints`` maps each workload to its full-trace content
        fingerprint (the store header carries it; the scheduler resolves
        it once per workload).  Keys are identical to the result cache's,
        so DB rows and cache files address the same cells.

        Built through :class:`~repro.sim.cache.CellKeyer` — the configs
        shared by the whole grid serialize once, each context-table slot
        once — because this runs inside the sweep's timed region and the
        naive per-cell :func:`~repro.sim.cache.cell_key` loop costs more
        than a batched kernel cell does.
        """
        keyer = CellKeyer(
            limit=self.limit,
            hierarchy_config=self.hierarchy_config,
            core_config=self.core_config,
        )
        fragments = [
            keyer.context_fragment(cfg) for cfg in self.context_configs
        ]
        return [
            keyer.key(
                workload=cell.workload,
                trace_fp=fingerprints[cell.workload],
                prefetcher=cell.prefetcher,
                context_fragment=fragments[cell.context_id],
            )
            for cell in self.cells()
        ]

    def spec(self) -> str:
        """Canonical JSON description of the grid (stored in the DB).

        Serialized via :func:`~repro.sim.cache.plain_data` rather than
        ``dataclasses.asdict`` — identical JSON, no per-leaf deepcopy,
        which matters with thousands of context-config slots (this runs
        inside the sweep's timed region).
        """
        payload = {
            "workloads": list(self.workloads),
            "prefetchers": list(self.prefetchers),
            "context_configs": [
                None if cfg is None else plain_data(cfg)
                for cfg in self.context_configs
            ],
            "limit": self.limit,
            "hierarchy": (
                None
                if self.hierarchy_config is None
                else plain_data(self.hierarchy_config)
            ),
            "core": (
                None
                if self.core_config is None
                else plain_data(self.core_config)
            ),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def sweep_id(keys: Sequence[str]) -> str:
        """Content address of a sweep: a hash of its ordered cell keys."""
        digest = hashlib.sha256()
        for key in keys:
            digest.update(key.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()


_T = TypeVar("_T")


def shard_by_workload(
    items: Sequence[_T],
    workload_of: Callable[[_T], str],
    jobs: int,
    max_batch: int = DEFAULT_BATCH_CELLS,
) -> list[tuple[_T, ...]]:
    """Workload-affinity batches, grid order, bounded batch size.

    Generalizes the PR 5 affinity grouping: all cells of a batch share
    one workload (the worker materialises the trace once per batch and
    its memo keeps it resident across batches), each workload splits
    into enough contiguous chunks to occupy every worker, and no batch
    exceeds ``max_batch`` cells so results stream back — and commit to
    the result DB — while the grid is still executing.
    """
    groups: dict[str, list[_T]] = {}
    for item in items:
        groups.setdefault(workload_of(item), []).append(item)
    if not groups:
        return []
    chunks_per = max(1, -(-max(1, jobs) // len(groups)))  # ceil division
    batches: list[tuple[_T, ...]] = []
    for cells in groups.values():
        k = max(min(len(cells), chunks_per), -(-len(cells) // max_batch))
        size = -(-len(cells) // k)
        for start in range(0, len(cells), size):
            batches.append(tuple(cells[start : start + size]))
    return batches
