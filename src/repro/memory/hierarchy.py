"""Two-level cache hierarchy with miss and prefetch timing.

Stands in for the gem5 memory system of Table 2: a private L1D, a shared
L2, and DRAM, each with a fixed access latency, plus per-level MSHR files.
Prefetches fill the L1 (and the L2 on the way), as in the paper.

The model is driven at demand-access granularity: callers present a
monotonically non-decreasing ``now`` (in cycles) and the hierarchy applies
any fills whose completion time has passed before serving the access.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import NamedTuple

from repro.memory.address import LINE_BYTES
from repro.memory.cache import Cache, CacheConfig
from repro.memory.mshr import MSHRFile
from repro.memory.stats import AccessClass, CacheStats

# enum members as module constants: the demand path classifies every
# access, and a global load is cheaper than an attribute load on the class
_HIT_PREFETCHED = AccessClass.HIT_PREFETCHED
_HIT_OLDER_DEMAND = AccessClass.HIT_OLDER_DEMAND
_SHORTER_WAIT = AccessClass.SHORTER_WAIT
_NON_TIMELY = AccessClass.NON_TIMELY
_MISS_NOT_PREFETCHED = AccessClass.MISS_NOT_PREFETCHED


@dataclass(slots=True)
class HierarchyConfig:
    """Latency/geometry parameters (defaults reproduce Table 2)."""

    l1_size: int = 64 * 1024
    l1_ways: int = 8
    l1_latency: int = 2
    l1_mshrs: int = 4
    l2_size: int = 2 * 1024 * 1024
    l2_ways: int = 16
    l2_latency: int = 20
    l2_mshrs: int = 20
    dram_latency: int = 300
    #: minimum cycles between successive DRAM line transfers (bandwidth:
    #: one 64B line per interval; 4 cycles ≈ 16 GB/s at 1 GHz).  Bounds
    #: the otherwise-free benefit of spraying inaccurate prefetches.
    dram_service_interval: int = 4
    line_bytes: int = LINE_BYTES
    #: in-flight prefetches use their own response buffers (gem5-style),
    #: so prefetch traffic does not starve the small demand MSHR file
    prefetch_buffers: int = 16
    #: buffers kept free as a pressure signal: when availability drops to
    #: this level the context prefetcher converts requests to shadow ops
    prefetch_mshr_reserve: int = 1
    #: prefetches waiting for a free buffer (gem5-style prefetch queue)
    prefetch_backlog_depth: int = 32
    #: the paper prefetches into the L1 (Section 4.3); False fills only
    #: the L2, trading L1 hit conversion for zero L1 pollution (ablation)
    prefetch_fill_l1: bool = True

    def l1_config(self) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.l1_size,
            ways=self.l1_ways,
            line_bytes=self.line_bytes,
            latency=self.l1_latency,
            name="L1D",
        )

    def l2_config(self) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.l2_size,
            ways=self.l2_ways,
            line_bytes=self.line_bytes,
            latency=self.l2_latency,
            name="L2",
        )

    @property
    def l2_hit_latency(self) -> int:
        """Demand latency when the L1 misses but the L2 hits."""
        return self.l1_latency + self.l2_latency

    @property
    def dram_fill_latency(self) -> int:
        """Demand latency when both levels miss."""
        return self.l1_latency + self.l2_latency + self.dram_latency


class AccessResult(NamedTuple):
    """Outcome of one demand access (immutable, built once per access)."""

    latency: int
    l1_hit: bool
    l2_hit: bool
    served_by: str
    access_class: AccessClass
    line: int


@dataclass(slots=True)
class _PendingFill:
    completes_at: int
    line: int
    prefetched: bool
    fill_l2: bool

    def __lt__(self, other: "_PendingFill") -> bool:
        return self.completes_at < other.completes_at


class PrefetchOutcome(NamedTuple):
    """Result of attempting a prefetch issue (immutable)."""

    issued: bool
    reason: str = "issued"
    completes_at: int = 0


#: the generated NamedTuple __new__ is a Python frame per construction
#: that does exactly ``tuple.__new__(cls, (args...))``; calling that
#: directly builds an identical instance without the frame
_tuple_new = tuple.__new__

#: shared instances for the constant-field outcomes — the tuples are
#: immutable, so reusing one is indistinguishable from a fresh one
_OUT_RESIDENT = PrefetchOutcome(False, "resident")
_OUT_RESIDENT_L2 = PrefetchOutcome(False, "resident-l2")
_OUT_IN_FLIGHT = PrefetchOutcome(False, "in-flight")
_OUT_QUEUED_ALREADY = PrefetchOutcome(False, "queued-already")
_OUT_QUEUED = PrefetchOutcome(True, "queued")
_OUT_MSHR_PRESSURE = PrefetchOutcome(False, "mshr-pressure")


class Hierarchy:
    """L1D + shared L2 + DRAM with in-flight miss/prefetch tracking."""

    __slots__ = (
        "config",
        "l1",
        "l2",
        "l1_mshrs",
        "l2_mshrs",
        "pf_buffers",
        "l1_stats",
        "l2_stats",
        "_pending",
        "_backlog",
        "_dram_next_free",
        "dram_fetches",
        "_predicted_not_issued",
        "_prediction_log",
        "_prediction_window",
        "_access_index",
        "_line_bytes",
        "_l1_latency",
        "_l2_hit_latency",
        "_dram_fill_latency",
        "_service_interval",
        "_pf_reserve",
        "_backlog_depth",
        "_l1_demand_lookup",
        "_l1_contains",
        "_l2_contains",
        "_l2_lookup",
        "_pf_lookup",
        "_l1m_lookup",
        "prefetches_issued",
        "prefetches_rejected_mshr",
        "prefetches_redundant",
    )

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config or HierarchyConfig()
        self.l1 = Cache(self.config.l1_config())
        self.l2 = Cache(self.config.l2_config())
        self.l1_mshrs = MSHRFile(self.config.l1_mshrs)
        self.l2_mshrs = MSHRFile(self.config.l2_mshrs)
        self.pf_buffers = MSHRFile(self.config.prefetch_buffers)
        self.l1_stats = CacheStats(name="L1D")
        self.l2_stats = CacheStats(name="L2")
        self._pending: list[_PendingFill] = []
        self._backlog: deque[int] = deque()
        self._dram_next_free = 0
        self.dram_fetches = 0
        #: lines predicted recently but not issued to memory (for NON_TIMELY)
        self._predicted_not_issued: dict[int, int] = {}
        #: (access index, line) insertion log driving incremental aging of
        #: ``_predicted_not_issued`` — entries older than the prediction
        #: window are invisible to every read path, so evicting them as
        #: the log ages out is result-identical to the old periodic
        #: full-dict rebuild, without the O(n) sweep
        self._prediction_log: deque[tuple[int, int]] = deque()
        self._prediction_window = 256
        self._access_index = 0
        self._line_bytes = self.config.line_bytes
        # latency/limit parameters are fixed per run; cache them as plain
        # attributes so the per-access paths skip the config indirection
        self._l1_latency = self.config.l1_latency
        self._l2_hit_latency = self.config.l2_hit_latency
        self._dram_fill_latency = self.config.dram_fill_latency
        self._service_interval = self.config.dram_service_interval
        self._pf_reserve = self.config.prefetch_mshr_reserve
        self._backlog_depth = self.config.prefetch_backlog_depth
        # bound methods of components that are never reassigned, hoisted
        # for the per-access paths
        self._l1_demand_lookup = self.l1.demand_lookup
        self._l1_contains = self.l1.contains
        self._l2_contains = self.l2.contains
        self._l2_lookup = self.l2.lookup
        self._pf_lookup = self.pf_buffers.lookup
        self._l1m_lookup = self.l1_mshrs.lookup
        self.prefetches_issued = 0
        self.prefetches_rejected_mshr = 0
        self.prefetches_redundant = 0

    # ------------------------------------------------------------------
    # fills

    def _apply_fills(self, now: int) -> None:
        pending = self._pending
        if pending and pending[0].completes_at <= now:
            fill_l1_prefetches = self.config.prefetch_fill_l1
            l1_fill = self.l1.fill
            l2_fill = self.l2.fill
            while pending and pending[0].completes_at <= now:
                fill = heapq.heappop(pending)
                if fill.fill_l2:
                    l2_fill(fill.line, prefetched=fill.prefetched, now=fill.completes_at)
                if not fill.prefetched or fill_l1_prefetches:
                    l1_fill(fill.line, prefetched=fill.prefetched, now=fill.completes_at)
        if self._backlog:
            self._drain_backlog(now)

    def _drain_backlog(self, now: int) -> None:
        """Issue queued prefetches as buffers free up."""
        while self._backlog and self.pf_buffers.available(now) > 0:
            line = self._backlog[0]
            if (
                self.l1.contains(line)
                or self.pf_buffers.lookup(line, now) is not None
                or self.l1_mshrs.lookup(line, now) is not None
            ):
                self._backlog.popleft()
                continue
            if self._try_issue_prefetch(line, now) is None:
                break  # L2 MSHRs exhausted; retry at the next event
            self._backlog.popleft()

    def _try_issue_prefetch(self, line: int, now: int) -> PrefetchOutcome | None:
        """Issue a prefetch if buffer/MSHR resources allow; else None."""
        if self.pf_buffers.available(now) <= 0:
            return None
        if self._l2_contains(line):
            if not self.config.prefetch_fill_l1:
                # L2-only mode: an L2-resident line needs no prefetch
                self.prefetches_redundant += 1
                return _OUT_RESIDENT_L2
            self._l2_lookup(line)
            completes_at = now + self._l2_hit_latency
            fill_l2 = False
        else:
            if self.l2_mshrs.available(now) <= 0:
                return None
            completes_at = self._dram_completion(now, self._dram_fill_latency)
            fill_l2 = True
            self.l2_mshrs.allocate(line, now, completes_at, is_prefetch=True)
        self.pf_buffers.allocate(line, now, completes_at, is_prefetch=True)
        self._schedule_fill(line, completes_at, prefetched=True, fill_l2=fill_l2)
        self.prefetches_issued += 1
        return _tuple_new(PrefetchOutcome, (True, "issued", completes_at))

    def _schedule_fill(
        self, line: int, completes_at: int, *, prefetched: bool, fill_l2: bool
    ) -> None:
        heapq.heappush(
            self._pending,
            _PendingFill(
                completes_at=completes_at,
                line=line,
                prefetched=prefetched,
                fill_l2=fill_l2,
            ),
        )

    # ------------------------------------------------------------------
    # prediction bookkeeping (for Figure 9's NON_TIMELY class)

    def _dram_completion(self, now: int, base_latency: int) -> int:
        """Completion time of a DRAM line fetch issued at ``now``.

        DRAM serves one line per ``dram_service_interval`` cycles; a fetch
        arriving while the channel is busy queues behind earlier ones.
        """
        start = self._dram_next_free
        if now > start:
            start = now
        self._dram_next_free = start + self._service_interval
        self.dram_fetches += 1
        return start + base_latency

    def note_unissued_prediction(self, line: int) -> None:
        """Record that a prefetcher predicted ``line`` without a memory request."""
        index = self._access_index
        predicted = self._predicted_not_issued
        predicted[line] = index
        log = self._prediction_log
        log.append((index, line))
        # age out entries that have fallen outside the window; a logged
        # pair whose index no longer matches the dict was re-predicted
        # later and its newer log entry will retire it in due course
        cutoff = index - self._prediction_window
        while log and log[0][0] < cutoff:
            idx, ln = log.popleft()
            if predicted.get(ln) == idx:
                del predicted[ln]

    def _was_predicted_recently(self, line: int) -> bool:
        idx = self._predicted_not_issued.get(line)
        return idx is not None and self._access_index - idx <= self._prediction_window

    # ------------------------------------------------------------------
    # demand path

    def demand_access(self, addr: int, now: int) -> AccessResult:
        """Serve a demand load/store of ``addr`` issued at cycle ``now``."""
        # guard inlined: _apply_fills is a no-op unless a fill is due or
        # the backlog is non-empty, and most accesses trigger neither
        pending = self._pending
        if (pending and pending[0].completes_at <= now) or self._backlog:
            self._apply_fills(now)
        self._access_index += 1
        line = addr // self._line_bytes
        l1_latency = self._l1_latency
        l1_stats = self.l1_stats

        l1_entry, was_prefetched = self._l1_demand_lookup(line)
        if l1_entry is not None:
            l1_stats.accesses += 1
            l1_stats.hits += 1
            access_class = _HIT_PREFETCHED if was_prefetched else _HIT_OLDER_DEMAND
            return _tuple_new(
                AccessResult, (l1_latency, True, False, "l1", access_class, line)
            )

        l1_stats.accesses += 1
        l1_stats.misses += 1

        # In-flight prefetch: the demand merges and waits only for the
        # remainder of the fetch — the paper's "shorter wait time" class.
        pf_inflight = self._pf_lookup(line, now)
        if pf_inflight is not None:
            latency = pf_inflight - now
            if latency < l1_latency:
                latency = l1_latency
            # an MSHR hit, not a new L2 demand miss: no L2 stats event
            return _tuple_new(
                AccessResult,
                (latency, False, self._l2_contains(line), "mshr", _SHORTER_WAIT, line),
            )

        # In-flight demand miss: merge. The data was already on its way
        # for program reasons, not prefetching.
        l1_mshrs = self.l1_mshrs
        inflight = l1_mshrs.lookup(line, now)
        if inflight is not None:
            l1_mshrs.allocate(line, now, inflight, is_prefetch=False)
            latency = inflight - now
            if latency < l1_latency:
                latency = l1_latency
            # secondary miss: the primary already counted the L2 event
            return _tuple_new(
                AccessResult,
                (
                    latency,
                    False,
                    self._l2_contains(line),
                    "mshr",
                    _HIT_OLDER_DEMAND,
                    line,
                ),
            )

        l2_entry = self._l2_lookup(line)
        l2_hit = l2_entry is not None
        l2_stats = self.l2_stats
        l2_stats.accesses += 1
        if l2_hit:
            l2_stats.hits += 1
        else:
            l2_stats.misses += 1

        # Demand misses always make progress: if the MSHR file is full the
        # access waits for the earliest completion before starting.
        issue_at = now
        if l1_mshrs.available(now) == 0:
            earliest = l1_mshrs.earliest_completion(now)
            if earliest > issue_at:
                issue_at = earliest

        if l2_hit:
            completes_at = issue_at + self._l2_hit_latency
            served_by = "l2"
        else:
            # Reserve the DRAM channel slot at the time the request is
            # first seen (it queues in the controller while waiting for an
            # MSHR); the MSHR wait is applied as a separate floor.  Using
            # ``issue_at`` here would reserve a slot in the future and
            # spuriously serialise every later fetch behind it.
            dram_fill = self._dram_fill_latency
            completes_at = self._dram_completion(now, dram_fill)
            floor = issue_at + dram_fill
            if floor > completes_at:
                completes_at = floor
            served_by = "dram"
        latency = completes_at - now

        l1_mshrs.allocate(line, issue_at, completes_at, is_prefetch=False)
        if not l2_hit:
            self.l2_mshrs.allocate(line, issue_at, completes_at, is_prefetch=False)
        self._schedule_fill(line, completes_at, prefetched=False, fill_l2=not l2_hit)

        idx = self._predicted_not_issued.get(line)
        if idx is not None and self._access_index - idx <= self._prediction_window:
            access_class = _NON_TIMELY
        else:
            access_class = _MISS_NOT_PREFETCHED
        return _tuple_new(
            AccessResult, (latency, False, l2_hit, served_by, access_class, line)
        )

    # ------------------------------------------------------------------
    # prefetch path

    def prefetch(
        self, addr: int, now: int, *, mshr_reserve: int | None = None
    ) -> PrefetchOutcome:
        """Issue a prefetch of ``addr`` into the L1 at cycle ``now``.

        The configured MSHR reserve is kept free for demand misses; a
        prefetch that cannot get an MSHR queues in a bounded backlog and
        issues as MSHRs free (the gem5 prefetch queue).  Only when the
        backlog itself is full is the request rejected, at which point the
        context prefetcher converts it to a shadow operation (Section 4.2).
        """
        pending = self._pending
        if (pending and pending[0].completes_at <= now) or self._backlog:
            self._apply_fills(now)
        line = addr // self._line_bytes
        reserve = self._pf_reserve if mshr_reserve is None else mshr_reserve
        pf_buffers = self.pf_buffers
        backlog = self._backlog

        if self._l1_contains(line):
            self.prefetches_redundant += 1
            return _OUT_RESIDENT
        if (
            self._pf_lookup(line, now) is not None
            or self._l1m_lookup(line, now) is not None
        ):
            self.prefetches_redundant += 1
            return _OUT_IN_FLIGHT
        if line in backlog:
            self.prefetches_redundant += 1
            return _OUT_QUEUED_ALREADY

        if pf_buffers.available(now) > reserve:
            outcome = self._try_issue_prefetch(line, now)
            if outcome is not None:
                return outcome
        if len(backlog) < self._backlog_depth:
            backlog.append(line)
            # A queued prefetch may still lose the race with the demand
            # access; record it for the NON_TIMELY classification.
            self.note_unissued_prediction(line)
            return _OUT_QUEUED
        self.prefetches_rejected_mshr += 1
        return _OUT_MSHR_PRESSURE

    # ------------------------------------------------------------------
    # accounting

    def wasted_prefetches(self) -> int:
        """Prefetched lines evicted from the L1 without ever being referenced."""
        return self.l1.unused_prefetch_evictions

    def is_pristine(self) -> bool:
        """True when the hierarchy has never served an access or prefetch.

        The native kernel may only adopt a hierarchy whose state it can
        reproduce — the freshly constructed one.
        """
        return (
            self._access_index == 0
            and self.dram_fetches == 0
            and self._dram_next_free == 0
            and not self._pending
            and not self._backlog
            and self.l1_stats.accesses == 0
            and self.l2_stats.accesses == 0
            and self.prefetches_issued == 0
            and self.l1_mshrs.allocations == 0
            and self.l2_mshrs.allocations == 0
            and self.pf_buffers.allocations == 0
            and self.l1.occupancy() == 0
            and self.l2.occupancy() == 0
        )

    def drain(self, now: int) -> None:
        """Apply every outstanding fill up to ``now`` (end-of-run helper)."""
        self._apply_fills(now)
