"""Cross-module integration tests: the full pipeline end to end."""

import pytest

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.memory.stats import ACCESS_CLASS_ORDER, AccessClass
from repro.sim.config import PREFETCHER_FACTORIES
from repro.sim.runner import compare, run_workload
from repro.sim.simulator import Simulator
from repro.workloads.suites import SUITES, get_workload

#: one representative per suite, kept tiny through the limit below
SUITE_REPRESENTATIVES = {
    "spec2006": "hmmer",
    "graph500": "graph500-csr",
    "hpcs": "ssca2-csr",
    "pbbs": "setcover",
    "ukernel-ds": "list",
    "ukernel-alg": "listsort",
}
LIMIT = 2500


class TestEverySuiteRuns:
    @pytest.mark.parametrize("suite,name", sorted(SUITE_REPRESENTATIVES.items()))
    def test_context_prefetcher_over_suite(self, suite, name):
        assert name in SUITES[suite]
        result = run_workload(name, "context", limit=LIMIT)
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.l1.accesses == min(
            LIMIT, get_workload(name).build().access_count()
        )


class TestFunctionalInvariants:
    @pytest.fixture(scope="class")
    def result(self):
        return run_workload("list", "context", limit=4000)

    def test_l1_hits_plus_misses_equal_accesses(self, result):
        assert result.l1.hits + result.l1.misses == result.l1.accesses

    def test_demand_classification_is_a_partition(self, result):
        demand = [
            c for c in ACCESS_CLASS_ORDER if c is not AccessClass.PREFETCH_NEVER_HIT
        ]
        assert (
            sum(result.classifier.counts[c] for c in demand)
            == result.classifier.demand_accesses
            == result.l1.accesses
        )

    def test_l2_sees_no_more_than_l1_misses(self, result):
        assert result.l2.accesses <= result.l1.misses

    def test_ipc_positive_and_bounded_by_width(self, result):
        assert 0 < result.ipc <= 4.0

    def test_hit_depth_total_bounded_by_predictions(self, result):
        total_predictions = result.prefetches_issued + result.prefetches_shadow
        assert result.hit_depths.total <= total_predictions + 1


class TestPrefetchingNeverChangesFunctionalStream:
    def test_instruction_count_identical_across_prefetchers(self):
        comparison = compare(
            ["array"], prefetchers=("none", "stride", "context"), limit=3000
        )
        counts = {
            pf: comparison.get("array", pf).instructions
            for pf in ("none", "stride", "context")
        }
        assert len(set(counts.values())) == 1

    def test_demand_access_counts_identical(self):
        comparison = compare(
            ["hashtest"], prefetchers=("none", "sms", "context"), limit=3000
        )
        accesses = {
            pf: comparison.get("hashtest", pf).l1.accesses
            for pf in ("none", "sms", "context")
        }
        assert len(set(accesses.values())) == 1


class TestDeterminism:
    def test_full_pipeline_repeatable(self):
        a = run_workload("graph500-list", "context", limit=3000)
        b = run_workload("graph500-list", "context", limit=3000)
        assert a.cycles == b.cycles
        assert a.l1.misses == b.l1.misses
        assert a.prefetches_issued == b.prefetches_issued
        assert a.classifier.counts == b.classifier.counts

    def test_every_registered_prefetcher_runs(self):
        for name in PREFETCHER_FACTORIES:
            result = run_workload("array", name, limit=1500)
            assert result.prefetcher == name
            assert result.cycles > 0


class TestShadowOnlyConfiguration:
    def test_epsilon_zero_no_shadow_yields_fewer_requests(self):
        quiet = ContextPrefetcherConfig(
            epsilon_min=0.0,
            epsilon_max=0.0,
            shadow_prefetches=False,
            shadow_probability=0.0,
        )
        noisy = ContextPrefetcherConfig(epsilon_min=0.3, epsilon_max=0.3)
        trace = get_workload("list").build().trace()
        quiet_res = Simulator(ContextPrefetcher(quiet)).run(trace, limit=4000)
        noisy_res = Simulator(ContextPrefetcher(noisy)).run(trace, limit=4000)
        quiet_total = quiet_res.prefetches_issued + quiet_res.prefetches_shadow
        noisy_total = noisy_res.prefetches_issued + noisy_res.prefetches_shadow
        assert quiet_total < noisy_total


class TestBaselineSanity:
    def test_no_prefetcher_never_touches_memory(self):
        result = run_workload("lbm", "none", limit=2000)
        assert result.prefetches_issued == 0
        assert result.prefetches_shadow == 0
        assert result.classifier.counts[AccessClass.PREFETCH_NEVER_HIT] == 0

    def test_prefetching_never_slows_regular_streams(self):
        comparison = compare(
            ["lbm"], prefetchers=("none", "stride", "sms", "context"), limit=8000
        )
        base = comparison.get("lbm", "none").ipc
        for pf in ("stride", "sms", "context"):
            assert comparison.get("lbm", pf).ipc >= base * 0.95, pf
