"""Baseline prefetchers the paper compares against (Section 7).

* :class:`~repro.prefetchers.nopf.NoPrefetcher` — the no-prefetch baseline.
* :class:`~repro.prefetchers.stride.StridePrefetcher` — PC-indexed stride
  (Fu, Patel & Janssens, MICRO 1992).
* :class:`~repro.prefetchers.ghb.GHBPrefetcher` — global history buffer,
  G/DC and PC/DC delta-correlation flavours (Nesbit & Smith, HPCA 2004).
* :class:`~repro.prefetchers.sms.SMSPrefetcher` — spatial memory streaming
  (Somogyi et al., ISCA 2006).

All are storage-scaled to the context prefetcher's ~31kB budget, as the
paper scales its competitors (Table 2).
"""

from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest
from repro.prefetchers.ghb import GHBConfig, GHBPrefetcher
from repro.prefetchers.markov import MarkovConfig, MarkovPrefetcher
from repro.prefetchers.nopf import NoPrefetcher
from repro.prefetchers.sms import SMSConfig, SMSPrefetcher
from repro.prefetchers.stride import StrideConfig, StridePrefetcher

__all__ = [
    "AccessInfo",
    "GHBConfig",
    "GHBPrefetcher",
    "MarkovConfig",
    "MarkovPrefetcher",
    "NoPrefetcher",
    "Prefetcher",
    "PrefetchRequest",
    "SMSConfig",
    "SMSPrefetcher",
    "StrideConfig",
    "StridePrefetcher",
]
