"""Compile-and-cache machinery for the native kernel.

The kernel compiles at first use via cffi's API mode (a real C extension,
not dlopen-ffi), cached under ``results/.cache/native/`` keyed by a hash
of the C source — editing :mod:`repro.sim.native._csrc` invalidates the
artifact automatically.  Parallel sweep workers race benignly: each
compiles into a private scratch directory and installs the extension with
an atomic rename, so the winner's artifact is complete and every loser's
is byte-identical.

The batch driver prefers an OpenMP build (``-fopenmp``) so whole shards
fan across a thread pool inside one GIL-released call; when the
toolchain has no OpenMP — or ``REPRO_NATIVE_NO_OPENMP=1`` forces it —
the same source compiles serially (the ``#pragma`` is ignored and the
``#else`` loop runs), bit-identical by construction.  The two modes use
distinct artifact names (``_omp`` suffix) so both stay cached side by
side, and ``kernel_openmp()`` reports which one loaded.

Every failure mode (no cffi, no numpy, no C toolchain, a compile error)
logs once and degrades to ``None``; callers fall back to the interpreted
path, which is the reference oracle anyway.
"""

from __future__ import annotations

import hashlib
import importlib.util
import logging
import os
import shutil
import tempfile
from pathlib import Path

from repro.sim.native import _csrc

log = logging.getLogger(__name__)

#: compiled-extension cache, next to the trace store's cache tree
DEFAULT_BUILD_DIR = Path("results") / ".cache" / "native"

#: kill-switch: set to "1" to skip the OpenMP build and force the serial
#: batch loop (CI's no-OpenMP leg proves it bit-identical)
NO_OPENMP_ENV = "REPRO_NATIVE_NO_OPENMP"

#: memoized (module with .ffi/.lib) — per process; workers re-import and
#: re-load the cached artifact rather than sharing this handle
_kernel = None
_failed = False


def source_digest() -> str:
    """Content hash of the kernel's C source + cdef (cache key)."""
    text = _csrc.CDEF + _csrc.SOURCE
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def openmp_requested() -> bool:
    """Whether this process may try the OpenMP build at all."""
    return os.environ.get(NO_OPENMP_ENV, "") != "1"


def artifact_prefix() -> str:
    """Artifact-name prefix shared by both build modes of this source."""
    return f"_repro_native_{source_digest()}"


def module_name(openmp: bool = False) -> str:
    return artifact_prefix() + ("_omp" if openmp else "")


def kernel_openmp() -> bool:
    """True when the loaded kernel's batch driver is the OpenMP build."""
    kernel = kernel_or_none()
    return bool(kernel) and bool(kernel.lib.rp_batch_openmp())


def _load_extension(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load native kernel from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _existing_artifact(build_dir: Path, name: Path | str) -> Path | None:
    # the _omp glob must not swallow the serial artifact (or vice versa):
    # the ABI tag follows a "." in the cffi filename, so anchor on it
    candidates = sorted(build_dir.glob(f"{name}.*.so")) or sorted(
        build_dir.glob(f"{name}.so")
    )
    return candidates[0] if candidates else None


def _compile_extension(build_dir: Path, name: str, *, openmp: bool) -> Path:
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(_csrc.CDEF)
    compile_args = ["-O2"] + (["-fopenmp"] if openmp else [])
    link_args = ["-fopenmp"] if openmp else []
    ffi.set_source(
        name,
        _csrc.SOURCE,
        extra_compile_args=compile_args,
        extra_link_args=link_args,
    )
    scratch = tempfile.mkdtemp(prefix="build-", dir=build_dir)
    try:
        built = Path(ffi.compile(tmpdir=scratch))
        target = build_dir / built.name
        os.replace(built, target)  # atomic; racing builders agree on bytes
        return target
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def kernel_or_none(build_dir: Path | None = None):
    """The compiled kernel module (``.ffi``/``.lib``), or None.

    Memoizes both success and failure: a process that cannot build the
    kernel logs the reason once and answers None from then on.  The
    OpenMP build is tried first (unless vetoed by the environment); a
    toolchain without ``-fopenmp`` support falls through to the serial
    build transparently.
    """
    global _kernel, _failed
    if _kernel is not None:
        return _kernel
    if _failed:
        return None
    try:
        import cffi  # noqa: F401  (compile-time dependency)
        import numpy  # noqa: F401  (decode-phase dependency; gate together)
    except ImportError as exc:
        _failed = True
        log.warning("native kernel unavailable (%s); using the interpreted path", exc)
        return None
    directory = Path(build_dir) if build_dir is not None else DEFAULT_BUILD_DIR
    modes = [True, False] if openmp_requested() else [False]
    last_exc: Exception | None = None
    for openmp in modes:
        name = module_name(openmp)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            artifact = _existing_artifact(directory, name)
            if artifact is None:
                artifact = _compile_extension(directory, name, openmp=openmp)
            _kernel = _load_extension(artifact, name)
            return _kernel
        except Exception as exc:
            last_exc = exc
            if openmp:
                log.info(
                    "OpenMP kernel build failed (%s); trying the serial build",
                    exc,
                )
    _failed = True
    log.warning(
        "native kernel build failed (%s); using the interpreted path", last_exc
    )
    return None


def gc_build_cache(
    build_dir: Path | None = None, *, dry_run: bool = False
) -> tuple[int, list[Path]]:
    """Drop stale native-kernel artifacts; ``(kept, removed)`` back.

    Artifacts for the *current* C source (both build modes — the serial
    and ``_omp`` names share :func:`artifact_prefix`) are kept;
    extensions built from superseded sources and abandoned ``build-*``
    scratch directories (a builder that died mid-compile) are removed.
    ``dry_run`` reports without deleting — the same contract as
    :meth:`repro.workloads.store.TraceStore.gc`, and the ``repro trace
    gc`` CLI runs both back to back.
    """
    directory = Path(build_dir) if build_dir is not None else DEFAULT_BUILD_DIR
    if not directory.is_dir():
        return 0, []
    keep_prefix = artifact_prefix()
    kept = 0
    removed: list[Path] = []
    for path in sorted(directory.iterdir()):
        if path.is_dir():
            if path.name.startswith("build-"):
                removed.append(path)
                if not dry_run:
                    shutil.rmtree(path, ignore_errors=True)
            else:
                kept += 1
            continue
        if path.name.startswith(keep_prefix):
            kept += 1
            continue
        removed.append(path)
        if not dry_run:
            path.unlink(missing_ok=True)
    return kept, removed


def reset_for_tests() -> None:
    """Clear the per-process memo (tests exercising failure paths)."""
    global _kernel, _failed
    _kernel = None
    _failed = False
