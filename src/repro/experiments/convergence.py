"""Learning convergence: accuracy, exploration and degree over training.

Section 7.1 is titled "Accuracy and convergence"; Figure 8 shows the
converged timeliness distribution, while the convergence *trajectory*
is only described in prose.  This experiment records it: the prefetch
accuracy EMA, the exploration rate ε, and the throttled degree, sampled
at fixed points along each workload's trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prefetcher import ContextPrefetcher
from repro.experiments.report import render_table
from repro.sim.simulator import Simulator
from repro.workloads.suites import get_workload

DEFAULT_WORKLOADS = ("list", "array", "graph500-list", "maptest")


@dataclass
class ConvergencePoint:
    accesses: int
    accuracy: float
    epsilon: float
    degree: int
    cst_occupancy: int
    reducer_activations: int


@dataclass
class ConvergenceResult:
    #: workload -> sampled trajectory
    trajectories: dict[str, list[ConvergencePoint]]

    def final_accuracy(self, workload: str) -> float:
        return self.trajectories[workload][-1].accuracy

    def converged(self, workload: str, *, threshold: float = 0.02) -> bool:
        """True when accuracy moved less than ``threshold`` over the last
        quarter of the trajectory."""
        points = self.trajectories[workload]
        tail = points[-max(2, len(points) // 4) :]
        return abs(tail[-1].accuracy - tail[0].accuracy) < threshold


def run(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    *,
    samples: int = 10,
    limit: int | None = 40000,
) -> ConvergenceResult:
    trajectories: dict[str, list[ConvergencePoint]] = {}
    for name in workloads:
        trace = get_workload(name).build().trace()
        if limit is not None:
            trace = trace[:limit]
        prefetcher = ContextPrefetcher()
        sim = Simulator(prefetcher)
        # run in chunks, sampling internals between them (prefetcher and
        # hierarchy state carry across chunks; indices continue)
        chunk = max(1, len(trace) // samples)
        points: list[ConvergencePoint] = []
        done = 0
        while done < len(trace):
            part = trace[done : done + chunk]
            sim.run(part, workload_name=name, start_index=done)
            done += len(part)
            points.append(
                ConvergencePoint(
                    accesses=done,
                    accuracy=prefetcher.policy.accuracy,
                    epsilon=prefetcher.policy.epsilon(),
                    degree=prefetcher.policy.degree(),
                    cst_occupancy=prefetcher.cst.occupancy(),
                    reducer_activations=prefetcher.reducer.activations,
                )
            )
        trajectories[name] = points
    return ConvergenceResult(trajectories=trajectories)


def render(result: ConvergenceResult) -> str:
    rows = []
    for name, points in result.trajectories.items():
        first, mid, last = points[0], points[len(points) // 2], points[-1]
        rows.append(
            (
                name,
                f"{first.accuracy:.2f}/{mid.accuracy:.2f}/{last.accuracy:.2f}",
                f"{first.epsilon:.3f}->{last.epsilon:.3f}",
                f"{first.degree}->{last.degree}",
                last.cst_occupancy,
                "yes" if result.converged(name) else "no",
            )
        )
    return render_table(
        (
            "workload",
            "accuracy start/mid/end",
            "epsilon",
            "degree",
            "CST used",
            "converged",
        ),
        rows,
        title="Convergence — context prefetcher learning trajectory",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
