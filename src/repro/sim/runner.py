"""Experiment runner: workload × prefetcher sweeps and derived figures.

The figures all reduce to the same sweep — run every workload under every
prefetcher and compare against the no-prefetch baseline — plus the
Figure 13 storage sweep, which rescales the context prefetcher's CST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:
    from repro.sim.cache import SweepCache
    from repro.workloads.store import TraceStore

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.base import Prefetcher
from repro.sim.config import PREFETCHER_FACTORIES, PREFETCHER_ORDER
from repro.sim.metrics import SimulationResult, geomean
from repro.sim.simulator import Simulator
from repro.workloads.suites import WorkloadSpec, get_workload
from repro.workloads.trace import MemoryAccess, TraceProgram


def _resolve_trace(
    workload: WorkloadSpec | TraceProgram | str,
) -> tuple[str, list[MemoryAccess]]:
    if isinstance(workload, str):
        workload = get_workload(workload)
    if isinstance(workload, WorkloadSpec):
        program = workload.build()
        return workload.name, program.trace()
    return workload.name, workload.trace()


def run_workload(
    workload: WorkloadSpec | TraceProgram | str,
    prefetcher: Prefetcher | str,
    *,
    hierarchy_config: HierarchyConfig | None = None,
    core_config: CoreConfig | None = None,
    limit: int | None = None,
    native: bool | None = None,
) -> SimulationResult:
    """Run one (workload, prefetcher) pair and return its result.

    ``native=None`` defers to the process-wide execution defaults; the
    kernel selection is bit-neutral either way.
    """
    from repro.sim.parallel import default_execution

    name, trace = _resolve_trace(workload)
    if isinstance(prefetcher, str):
        prefetcher = PREFETCHER_FACTORIES[prefetcher]()
    effective_native = default_execution().native if native is None else native
    sim = Simulator(
        prefetcher,
        hierarchy_config=hierarchy_config,
        core_config=core_config,
        native=effective_native,
    )
    return sim.run(trace, workload_name=name, limit=limit)


@dataclass
class ComparisonResult:
    """Results of a workloads × prefetchers sweep."""

    #: workload name -> prefetcher name -> result
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)
    #: ``"workload/prefetcher" -> (kernel handled?, fallback reason)``,
    #: recorded only for cells a native-mode sweep actually executed —
    #: cache hits ran no kernel and are absent.  The values never affect
    #: the results (the kernel is bit-neutral); they exist so sweeps can
    #: report how much of the grid the compiled path took and why the
    #: rest fell back.
    native_cells: dict[str, tuple[bool, str | None]] = field(default_factory=dict)
    #: result-cache entries that were unreadable and healed by recompute
    cache_heals: int = 0
    #: store files that degraded (corrupt read → rebuild, or corrupt
    #: file → recompile) during this sweep, worker-side events included
    store_degrades: int = 0

    def workloads(self) -> list[str]:
        return list(self.results)

    def prefetchers(self) -> list[str]:
        first = next(iter(self.results.values()), {})
        return list(first)

    def get(self, workload: str, prefetcher: str) -> SimulationResult:
        return self.results[workload][prefetcher]

    def speedups(self, baseline: str = "none") -> dict[str, dict[str, float]]:
        """Per-workload IPC speedups over ``baseline`` (Figure 12)."""
        out: dict[str, dict[str, float]] = {}
        for wl, by_pf in self.results.items():
            base = by_pf[baseline]
            out[wl] = {
                pf: res.speedup_over(base) for pf, res in by_pf.items() if pf != baseline
            }
        return out

    def mean_speedups(self, baseline: str = "none") -> dict[str, float]:
        """Geometric-mean speedup per prefetcher over all workloads."""
        per_wl = self.speedups(baseline)
        prefetchers = [p for p in self.prefetchers() if p != baseline]
        return {
            pf: geomean([per_wl[wl][pf] for wl in per_wl]) for pf in prefetchers
        }

    def mpki(self, level: str = "l2") -> dict[str, dict[str, float]]:
        """Per-workload MPKI per prefetcher (Figures 10/11)."""
        attr = "l1_mpki" if level == "l1" else "l2_mpki"
        return {
            wl: {pf: getattr(res, attr) for pf, res in by_pf.items()}
            for wl, by_pf in self.results.items()
        }

    def native_fallbacks(self) -> dict[str, int]:
        """Fallback reason -> count of cells that fell back for it."""
        counts: dict[str, int] = {}
        for handled, reason in self.native_cells.values():
            if not handled:
                key = reason or "unknown"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def native_summary(self) -> str | None:
        """One line of native-kernel coverage, or ``None`` when no cell
        of this sweep recorded kernel info (interpreted mode, or every
        cell a cache hit)."""
        if not self.native_cells:
            return None
        total = len(self.native_cells)
        handled = sum(1 for ok, _ in self.native_cells.values() if ok)
        line = f"native kernel: {handled}/{total} executed cells"
        if handled == total:
            return line
        top = ", ".join(
            f"{reason} (x{count})"
            for reason, count in list(self.native_fallbacks().items())[:3]
        )
        return f"{line}; fallbacks: {top}"

    def resilience_summary(self) -> str | None:
        """One line of degrade/heal counts, or ``None`` for a clean run.

        Rendered next to :meth:`native_summary` in sweep output so
        corrupt-file recoveries are visible in the summary, not only in
        the log stream.
        """
        if not self.cache_heals and not self.store_degrades:
            return None
        return (
            f"resilience: {self.cache_heals} cache heal(s), "
            f"{self.store_degrades} store degrade(s)"
        )


def compare(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
    prefetchers: Iterable[str] = PREFETCHER_ORDER,
    *,
    hierarchy_config: HierarchyConfig | None = None,
    core_config: CoreConfig | None = None,
    limit: int | None = None,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
    cache: "SweepCache | Path | str | bool | None" = None,
    store: "TraceStore | Path | str | bool | None" = None,
    native: bool | None = None,
) -> ComparisonResult:
    """The standard sweep every evaluation figure is built from.

    Traces are built once per workload and replayed for each prefetcher,
    so results across prefetchers are strictly comparable.

    ``jobs`` > 1 fans the grid out over worker processes, ``cache``
    memoizes cells on disk (``True`` → ``results/.cache/``), and
    ``store`` supplies registry traces from compiled binary files
    (``True`` → ``results/.cache/traces/``); all three are bit-neutral —
    the parity suites prove the output identical to this serial loop.
    ``None`` defers to the process-wide defaults the CLI and scripts
    configure via :func:`repro.sim.parallel.set_default_execution`;
    ``cache=False`` / ``store=False`` force that feature off regardless
    of those defaults.
    """
    from repro.sim.cache import resolve_cache
    from repro.sim.parallel import default_execution, parallel_compare
    from repro.workloads.store import resolve_store

    defaults = default_execution()
    effective_jobs = defaults.jobs if jobs is None else max(1, jobs)
    effective_cache = resolve_cache(cache, default=defaults.cache)
    effective_store = resolve_store(store, default=defaults.store)
    effective_native = defaults.native if native is None else native
    if (
        effective_jobs > 1
        or effective_cache is not None
        or effective_store is not None
        or defaults.db is not None
    ):
        return parallel_compare(
            workloads,
            prefetchers,
            hierarchy_config=hierarchy_config,
            core_config=core_config,
            limit=limit,
            jobs=effective_jobs,
            cache=effective_cache,
            store=effective_store,
            native=effective_native,
            progress=progress,
        )

    comparison = ComparisonResult()
    for workload in workloads:
        name, trace = _resolve_trace(workload)
        comparison.results[name] = {}
        for pf_name in prefetchers:
            pf = PREFETCHER_FACTORIES[pf_name]()
            sim = Simulator(
                pf,
                hierarchy_config=hierarchy_config,
                core_config=core_config,
                native=effective_native,
            )
            result = sim.run(trace, workload_name=name, limit=limit)
            comparison.results[name][pf_name] = result
            if effective_native:
                comparison.native_cells[f"{name}/{pf_name}"] = (
                    sim.last_run_native,
                    sim.last_native_fallback,
                )
            if progress is not None:
                progress(result.summary())
    if progress is not None:
        summary = comparison.native_summary()
        if summary is not None:
            progress(summary)
    return comparison


def storage_sweep(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
    cst_sizes: Iterable[int],
    *,
    limit: int | None = None,
    base_config: ContextPrefetcherConfig | None = None,
    jobs: int | None = None,
    cache: "SweepCache | Path | str | bool | None" = None,
    store: "TraceStore | Path | str | bool | None" = None,
    native: bool | None = None,
) -> dict[int, dict[str, SimulationResult]]:
    """Figure 13: context-prefetcher results per CST size per workload.

    Each entry of ``cst_sizes`` is a CST entry count; the reducer scales
    at 8× as the paper does.  Returns {cst_entries: {workload: result}}.
    Baseline (no-prefetch) results are included under each size via the
    key ``"__baseline__:<workload>"``-free convention: callers should run
    a separate baseline comparison; this helper focuses on the context
    prefetcher itself.
    """
    from repro.sim.cache import resolve_cache
    from repro.sim.parallel import default_execution, parallel_storage_sweep
    from repro.workloads.store import resolve_store

    base = base_config or ContextPrefetcherConfig()
    defaults = default_execution()
    effective_jobs = defaults.jobs if jobs is None else max(1, jobs)
    effective_cache = resolve_cache(cache, default=defaults.cache)
    effective_store = resolve_store(store, default=defaults.store)
    effective_native = defaults.native if native is None else native
    if (
        effective_jobs > 1
        or effective_cache is not None
        or effective_store is not None
        or defaults.db is not None
    ):
        return parallel_storage_sweep(
            workloads,
            cst_sizes,
            limit=limit,
            base_config=base,
            jobs=effective_jobs,
            cache=effective_cache,
            store=effective_store,
            native=effective_native,
        )
    resolved = [_resolve_trace(w) for w in workloads]
    out: dict[int, dict[str, SimulationResult]] = {}
    for size in cst_sizes:
        config = base.scaled(size)
        out[size] = {}
        for name, trace in resolved:
            sim = Simulator(ContextPrefetcher(config), native=effective_native)
            out[size][name] = sim.run(trace, workload_name=name, limit=limit)
    return out
