"""Run every paper figure at a chosen scale and dump rendered reports.

Usage:  python scripts/run_full_experiments.py [small|medium|full] [outdir]

This is the script behind EXPERIMENTS.md: it executes the shared sweep
once, regenerates every figure from it, and writes the rendered text
reports (plus a machine-readable summary JSON) into the output directory.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import repro.experiments as ex
from repro.memory.stats import AccessClass


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "medium"
    outdir = Path(sys.argv[2] if len(sys.argv) > 2 else f"results/{scale}")
    outdir.mkdir(parents=True, exist_ok=True)

    t0 = time.time()
    print(f"[{time.time()-t0:7.1f}s] running standard sweep at scale={scale} ...")
    sweep = ex.standard_sweep(scale, progress=lambda s: print(f"    {s}"))

    reports: dict[str, str] = {}
    summary: dict[str, object] = {"scale": scale}

    print(f"[{time.time()-t0:7.1f}s] figure 1 ...")
    r1 = ex.fig01_semantic_locality.run()
    reports["fig01"] = ex.fig01_semantic_locality.render(r1)
    summary["fig01"] = {
        "logical_unit_fraction": r1.logical_step_unit_fraction,
        "physical_adjacent_fraction": r1.physical_step_adjacent_fraction,
    }

    reports["fig05"] = ex.fig05_reward.render(ex.fig05_reward.run())

    print(f"[{time.time()-t0:7.1f}s] figure 8 ...")
    r8 = ex.fig08_hit_depth_cdf.run(scale)
    reports["fig08"] = ex.fig08_hit_depth_cdf.render(r8)
    lo, hi = r8.window
    summary["fig08"] = {
        name: cdf.fraction_in_window(lo, hi) for name, cdf in r8.cdfs.items()
    }

    print(f"[{time.time()-t0:7.1f}s] figures 9-12 from the sweep ...")
    r9 = ex.fig09_accuracy.run(comparison=sweep)
    reports["fig09"] = ex.fig09_accuracy.render(r9)
    summary["fig09_useful_context"] = {
        wl: r9.useful_fraction(wl, "context") for wl in r9.breakdown
    }

    r10 = ex.fig10_l1_mpki.run(comparison=sweep)
    reports["fig10"] = ex.fig10_l1_mpki.render(r10)
    summary["fig10_average"] = r10.average

    r11 = ex.fig11_l2_mpki.run(comparison=sweep)
    reports["fig11"] = ex.fig11_l2_mpki.render(r11)
    summary["fig11"] = {
        "ratio_vs_none": r11.ratio_vs_none,
        "ratio_vs_sms": r11.ratio_vs_sms,
        "average": r11.mpki.average,
    }

    r12 = ex.fig12_speedup.run(comparison=sweep)
    reports["fig12"] = ex.fig12_speedup.render(r12)
    reports["suites"] = ex.suite_summary.render(
        ex.suite_summary.run(comparison=sweep)
    )
    summary["fig12"] = {
        "mean_all": r12.mean_all,
        "mean_spec": r12.mean_spec,
        "context_peak": r12.context_peak,
        "gain_vs_best_competitor": r12.gain_vs_best_competitor,
        "best_competitor": r12.best_competitor,
    }

    print(f"[{time.time()-t0:7.1f}s] figure 13 ...")
    r13 = ex.fig13_storage_sweep.run(scale)
    reports["fig13"] = ex.fig13_storage_sweep.render(r13)
    summary["fig13"] = {
        "mean_all": {str(k): v for k, v in r13.mean_all.items()},
        "mean_top10": {str(k): v for k, v in r13.mean_top10.items()},
    }

    print(f"[{time.time()-t0:7.1f}s] figure 14 ...")
    r14 = ex.fig14_layout_agnostic.run(scale)
    reports["fig14"] = ex.fig14_layout_agnostic.render(r14)
    summary["fig14_gaps"] = {
        study: {
            pf: r14.layout_gap(study, pf) for pf in next(iter(r14.cpi.values()))["linked"]
        }
        for study in r14.cpi
    }

    print(f"[{time.time()-t0:7.1f}s] tables & ablations ...")
    reports["tables"] = "\n\n".join(
        (ex.tables.table1(), ex.tables.table2(), ex.tables.table3())
    )
    rab = ex.ablations.run(scale)
    reports["ablations"] = ex.ablations.render(rab)
    summary["ablations"] = rab.means

    for name, text in reports.items():
        (outdir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    (outdir / "summary.json").write_text(
        json.dumps(summary, indent=2, default=str), encoding="utf-8"
    )
    print(f"[{time.time()-t0:7.1f}s] done -> {outdir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
