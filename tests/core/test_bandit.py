"""Tests for ε-greedy action selection, adaptive ε and degree throttling."""

import pytest

from repro.core.bandit import EpsilonGreedyPolicy
from repro.core.config import ContextPrefetcherConfig
from repro.core.cst import Candidate, CSTEntry


def policy(**overrides) -> EpsilonGreedyPolicy:
    return EpsilonGreedyPolicy(ContextPrefetcherConfig(**overrides))


def cst_entry(scores) -> CSTEntry:
    entry = CSTEntry(tag=0)
    entry.candidates = [Candidate(delta=i + 1, score=s) for i, s in enumerate(scores)]
    return entry


class TestAdaptiveEpsilon:
    def test_cold_policy_explores_at_max(self):
        p = policy()
        assert p.epsilon() == pytest.approx(p.config.epsilon_max)

    def test_converged_policy_explores_at_min(self):
        p = policy()
        for _ in range(3000):
            p.observe_outcome(hit=True)
        assert p.epsilon() == pytest.approx(p.config.epsilon_min, abs=0.01)

    def test_fixed_epsilon_ablation(self):
        p = policy(adaptive_epsilon=False, fixed_epsilon=0.07)
        for _ in range(100):
            p.observe_outcome(hit=True)
        assert p.epsilon() == 0.07

    def test_accuracy_ema_moves_toward_outcomes(self):
        p = policy()
        for _ in range(200):
            p.observe_outcome(hit=True)
        high = p.accuracy
        for _ in range(200):
            p.observe_outcome(hit=False)
        assert p.accuracy < high


class TestDegreeThrottle:
    def test_cold_degree_is_one(self):
        assert policy().degree() == 1

    def test_degree_grows_with_accuracy(self):
        p = policy()
        for _ in range(5000):
            p.observe_outcome(hit=True)
        assert p.degree() == p.config.max_degree

    def test_degree_thresholds_monotonic(self):
        p = policy()
        degrees = []
        for _ in range(3000):
            p.observe_outcome(hit=True)
            degrees.append(p.degree())
        assert degrees == sorted(degrees)


class TestSelection:
    def test_empty_entry_selects_nothing(self):
        sel = policy().select(cst_entry([]))
        assert sel.real == [] and sel.shadow == []

    def test_exploit_picks_best_scores(self):
        p = policy(epsilon_min=0.0, epsilon_max=0.0, shadow_probability=0.0)
        sel = p.select(cst_entry([0, 7, 3]))
        assert sel.real[0].score == 7

    def test_negative_scores_excluded_from_real(self):
        p = policy(epsilon_min=0.0, epsilon_max=0.0, shadow_probability=0.0)
        sel = p.select(cst_entry([-1, -5]))
        assert sel.real == []

    def test_degree_limits_real_selection(self):
        p = policy(epsilon_min=0.0, epsilon_max=0.0, shadow_probability=0.0)
        sel = p.select(cst_entry([5, 4, 3, 2]))
        assert len(sel.real) == 1  # cold accuracy -> degree 1

    def test_exploration_can_pick_negative_candidate(self):
        p = policy(epsilon_min=1.0, epsilon_max=1.0, shadow_probability=0.0)
        sel = p.select(cst_entry([-5]))
        assert len(sel.real) == 1
        assert sel.explored

    def test_shadow_prefetches_generated(self):
        p = policy(
            epsilon_min=0.0, epsilon_max=0.0, shadow_probability=1.0, max_degree=1
        )
        for _ in range(5000):
            p.observe_outcome(hit=True)  # keep epsilon at min
        found_shadow = False
        for _ in range(50):
            sel = p.select(cst_entry([9, 8, 7]))
            if sel.shadow:
                found_shadow = True
                assert sel.shadow[0] not in sel.real
        assert found_shadow

    def test_shadow_ablation_disables_shadows(self):
        p = policy(shadow_prefetches=False, shadow_probability=1.0)
        for _ in range(50):
            assert p.select(cst_entry([5, 3])).shadow == []

    def test_deterministic_under_seed(self):
        a, b = policy(seed=42), policy(seed=42)
        entry = cst_entry([3, 2, 1])
        for _ in range(100):
            sa, sb = a.select(entry), b.select(entry)
            assert [c.delta for c in sa.real] == [c.delta for c in sb.real]

    def test_reset_restores_seed_and_accuracy(self):
        p = policy(seed=42)
        entry = cst_entry([3, 2, 1])
        first = [tuple(c.delta for c in p.select(entry).real) for _ in range(20)]
        p.observe_outcome(hit=True)
        p.reset()
        assert p.accuracy == 0.0
        second = [tuple(c.delta for c in p.select(entry).real) for _ in range(20)]
        assert first == second
