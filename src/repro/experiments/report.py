"""Plain-text table and series rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    series: Sequence[tuple[float, float]],
    *,
    title: str = "",
    width: int = 50,
    label_x: str = "x",
    label_y: str = "y",
) -> str:
    """Render an (x, y) series as a horizontal ASCII bar chart."""
    if not series:
        return f"{title}\n(empty series)"
    max_y = max(abs(y) for _, y in series) or 1.0
    out = []
    if title:
        out.append(title)
    out.append(f"{label_x:>8}  {label_y}")
    for x, y in series:
        bar_len = int(round(abs(y) / max_y * width))
        bar = ("█" * bar_len) if y >= 0 else ("▒" * bar_len)
        out.append(f"{x:>8g}  {bar} {y:g}")
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
