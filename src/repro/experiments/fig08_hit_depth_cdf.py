"""Figure 8: cumulative distribution of prefetch hit depths.

The paper plots, per benchmark, the CDF of the number of demand accesses
between issuing a (real or shadow) prefetch and the demand hit, for the
context prefetcher, expecting the mass to step up inside the positive
range of the reward function (18–50 accesses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ContextPrefetcherConfig
from repro.experiments.report import render_table
from repro.experiments.sweep import SCALES, UKERNELS
from repro.sim.metrics import HitDepthCDF
from repro.sim.runner import run_workload


#: the "regular benchmarks" subset of the paper's bottom panel
REGULAR = ("lbm", "h264ref", "milc", "libquantum", "graph500-csr", "array")


@dataclass
class Figure8Result:
    #: workload -> hit-depth CDF for the context prefetcher
    cdfs: dict[str, HitDepthCDF]
    window: tuple[int, int]

    def summary_rows(self):
        lo, hi = self.window
        rows = []
        for name, cdf in self.cdfs.items():
            rows.append(
                (
                    name,
                    cdf.total,
                    f"{cdf.fraction_late(lo):.1%}",
                    f"{cdf.fraction_in_window(lo, hi):.1%}",
                    f"{cdf.fraction_early(hi):.1%}",
                )
            )
        return rows


def run(
    scale: str = "small",
    workloads: tuple[str, ...] = UKERNELS,
) -> Figure8Result:
    config = ContextPrefetcherConfig()
    limit = SCALES[scale]["limit"]
    cdfs: dict[str, HitDepthCDF] = {}
    for name in workloads:
        result = run_workload(name, "context", limit=limit)
        cdfs[name] = result.hit_depths
    return Figure8Result(cdfs=cdfs, window=(config.window_lo, config.window_hi))


def render(result: Figure8Result) -> str:
    lo, hi = result.window
    return render_table(
        ("workload", "hits", f"late (<{lo})", f"in window [{lo},{hi}]", f"early (>{hi})"),
        result.summary_rows(),
        title="Figure 8 — prefetch hit-depth distribution (context prefetcher)",
    )


def main() -> None:
    print(render(run()))
    print()
    print(render(run(workloads=REGULAR)))


if __name__ == "__main__":
    main()
