"""Inline suppressions: ``# repro: noqa[<RULE>]`` with a staleness check.

A suppression silences findings on its own line whose rule id equals —
or starts with — one of the bracketed codes, so ``noqa[RACE]`` covers
``RACE001``..``RACE003`` while ``noqa[RACE002]`` covers only that code.

Suppressions are audited, not free: one that matches no finding raises a
``NOQA`` finding of its own (a *stale* suppression is a lie about the
code next to it).  Staleness is only judged for codes belonging to the
rule families actually selected for the run — ``--rules DET`` must not
flag a ``noqa[RACE001]`` it never evaluated.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Finding
from repro.analysis.visitor import Project

NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")

#: rule id for stale-suppression findings (synthetic, like PARSE)
STALE_RULE = "NOQA"


def collect_suppressions(project: Project) -> dict[tuple[str, int], set[str]]:
    """``(rel, line) -> codes`` for every inline suppression comment."""
    out: dict[tuple[str, int], set[str]] = {}
    for rel in sorted(project.files):
        text = project.files[rel].text
        if "noqa" not in text:
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = NOQA_RE.search(line)
            if match is None:
                continue
            codes = {
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            }
            if codes:
                out[(rel, lineno)] = codes
    return out


def _matches(code: str, rule_id: str) -> bool:
    return rule_id == code or rule_id.startswith(code)


def apply_suppressions(
    findings: list[Finding],
    project: Project,
    selected_prefixes: tuple[str, ...],
) -> list[Finding]:
    """Drop suppressed findings; add ``NOQA`` findings for stale ones.

    ``selected_prefixes`` are the rule ids that actually ran — a
    suppression code is only judged stale when some selected rule id
    matches it, otherwise the run had no way to know.
    """
    suppressions = collect_suppressions(project)
    if not suppressions:
        return findings

    used: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    for finding in findings:
        codes = suppressions.get((finding.path, finding.line), set())
        hit = next((c for c in sorted(codes) if _matches(c, finding.rule)), None)
        if hit is None:
            kept.append(finding)
        else:
            used.add((finding.path, finding.line, hit))

    for (rel, line), codes in sorted(suppressions.items()):
        for code in sorted(codes):
            if (rel, line, code) in used:
                continue
            # a code is judged only when a selected rule could emit it:
            # noqa[RACE001] under family rule "RACE", noqa[DET] under
            # individual rule "DET001" — either prefix direction counts
            if not any(
                code.startswith(rid) or rid.startswith(code)
                for rid in selected_prefixes
            ):
                continue
            kept.append(
                Finding(
                    rel,
                    line,
                    STALE_RULE,
                    f"stale suppression: noqa[{code}] matches no finding "
                    "on this line — remove it",
                )
            )
    return kept
