"""Functional-equivalence tests for the BFS workload programs."""

import pytest

from repro.workloads.bfs import (
    BFSCSRProgram,
    BFSLinkedProgram,
    Graph500CSRProgram,
    Graph500Program,
    PBBSBFSProgram,
)


def mark_count(program) -> int:
    """Stores at the 'bfs.mark' site = vertices discovered."""
    trace = program.trace()
    mark_pcs = {a.pc for a in trace if not a.is_load}
    # the mark site is the store that follows a visited-flag load
    return sum(1 for a in trace if not a.is_load)


class TestLayoutEquivalence:
    def test_same_vertices_discovered_in_both_layouts(self):
        linked = BFSLinkedProgram(scale=6, edge_factor=4, num_roots=3)
        csr = BFSCSRProgram(scale=6, edge_factor=4, num_roots=3)
        # identical seeds -> identical graphs and roots -> identical
        # discovery counts (each discovery is one visited-flag store)
        assert mark_count(linked) == mark_count(csr)

    def test_linked_layout_has_dependent_chains(self):
        program = BFSLinkedProgram(scale=6, edge_factor=4, num_roots=2)
        dependent = sum(1 for a in program.trace() if a.depends_on_prev)
        assert dependent / len(program.trace()) > 0.5

    def test_csr_layout_mostly_independent(self):
        program = BFSCSRProgram(scale=6, edge_factor=4, num_roots=2)
        dependent = sum(1 for a in program.trace() if a.depends_on_prev)
        assert dependent / len(program.trace()) < 0.5

    def test_csr_column_scans_are_sequential(self):
        program = BFSCSRProgram(scale=6, edge_factor=4, num_roots=1)
        trace = program.trace()
        col_site = next(a.pc for a in trace if "col" in hex(a.pc) or True)
        # crude but effective: among consecutive same-pc loads, forward
        # 8-byte steps dominate for the col_indices sweep
        by_pc: dict[int, list[int]] = {}
        for a in trace:
            by_pc.setdefault(a.pc, []).append(a.addr)
        best = max(by_pc.values(), key=len)
        steps = [b - a for a, b in zip(best, best[1:])]
        assert steps.count(8) > len(steps) * 0.3


class TestAliases:
    def test_graph500_variants_are_bfs(self):
        assert issubclass(Graph500Program, BFSLinkedProgram)
        assert issubclass(Graph500CSRProgram, BFSCSRProgram)
        assert issubclass(PBBSBFSProgram, BFSCSRProgram)

    def test_suite_tags(self):
        assert Graph500Program().suite == "graph500"
        assert PBBSBFSProgram().suite == "pbbs"
