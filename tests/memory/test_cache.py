"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


def small_cache(ways=2, sets=4) -> Cache:
    return Cache(CacheConfig(size_bytes=ways * sets * 64, ways=ways, name="t"))


class TestConfigValidation:
    def test_table2_l1_geometry(self):
        cfg = CacheConfig(size_bytes=64 * 1024, ways=8)
        assert cfg.num_sets == 128
        assert cfg.num_lines == 1024

    def test_table2_l2_geometry(self):
        cfg = CacheConfig(size_bytes=2 * 1024 * 1024, ways=16)
        assert cfg.num_sets == 2048

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64 * 2, ways=2)


class TestFillAndLookup:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(10) is None
        cache.fill(10)
        assert cache.lookup(10) is not None

    def test_contains_does_not_disturb_lru(self):
        cache = small_cache(ways=2)
        cache.fill(0)
        cache.fill(4)  # same set (4 sets): lines 0 and 4 map to set 0
        cache.contains(0)  # should NOT refresh line 0
        cache.fill(8)  # evicts LRU = line 0
        assert not cache.contains(0)
        assert cache.contains(4)

    def test_lookup_refreshes_lru(self):
        cache = small_cache(ways=2)
        cache.fill(0)
        cache.fill(4)
        cache.lookup(0)  # refresh line 0
        cache.fill(8)  # evicts line 4 now
        assert cache.contains(0)
        assert not cache.contains(4)

    def test_refill_existing_keeps_single_copy(self):
        cache = small_cache()
        cache.fill(3)
        cache.fill(3)
        assert cache.occupancy() == 1

    def test_fill_returns_victim(self):
        cache = small_cache(ways=1)
        assert cache.fill(0) is None
        assert cache.fill(4) == 0

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(5)
        assert cache.invalidate(5)
        assert not cache.contains(5)
        assert not cache.invalidate(5)


class TestPrefetchBits:
    def test_prefetched_line_marked(self):
        cache = small_cache()
        cache.fill(1, prefetched=True)
        entry = cache.peek(1)
        assert entry.prefetched and not entry.referenced

    def test_demand_touch_sets_referenced(self):
        cache = small_cache()
        cache.fill(1, prefetched=True)
        cache.lookup(1)
        assert cache.peek(1).referenced
        assert cache.used_prefetch_fills == 1

    def test_unused_prefetch_eviction_counted(self):
        cache = small_cache(ways=1)
        cache.fill(0, prefetched=True)
        cache.fill(4)  # evicts the untouched prefetch
        assert cache.unused_prefetch_evictions == 1

    def test_used_prefetch_eviction_not_counted(self):
        cache = small_cache(ways=1)
        cache.fill(0, prefetched=True)
        cache.lookup(0)
        cache.fill(4)
        assert cache.unused_prefetch_evictions == 0

    def test_demand_fill_never_downgraded_to_prefetch(self):
        cache = small_cache()
        cache.fill(2, prefetched=False)
        cache.fill(2, prefetched=True)  # redundant prefetch of resident line
        assert not cache.peek(2).prefetched

    def test_resident_unused_count(self):
        cache = small_cache()
        cache.fill(0, prefetched=True)
        cache.fill(1, prefetched=True)
        cache.lookup(0)
        assert cache.resident_unused_prefetches() == 1


class TestCapacityInvariant:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    def test_never_exceeds_ways_per_set(self, lines):
        cache = small_cache(ways=2, sets=4)
        for line in lines:
            cache.fill(line)
        per_set: dict[int, int] = {}
        for line in cache.resident_lines():
            per_set[line % 4] = per_set.get(line % 4, 0) + 1
        assert all(count <= 2 for count in per_set.values())
        assert cache.occupancy() <= 8

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_most_recent_fill_always_resident(self, lines):
        cache = small_cache(ways=2, sets=4)
        for line in lines:
            cache.fill(line)
        assert cache.contains(lines[-1])
