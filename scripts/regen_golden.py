"""Regenerate the golden regression fixtures under tests/golden/.

Usage:  PYTHONPATH=src python scripts/regen_golden.py

The golden files pin the paper-facing metrics (IPC, L1/L2 MPKI,
accuracy, coverage) of a small, fast sweep.  tests/test_golden_regression.py
re-runs the same sweep and compares against the checked-in values, so a
PR that shifts the reproduction's numbers must regenerate the fixtures
— making the shift an explicit, reviewable diff instead of a silent
drift.  Only run this script when a change is *supposed* to move the
numbers, and say why in the commit message.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.sim.runner import compare  # noqa: E402

#: the fixture's sweep definition — also recorded inside the JSON so the
#: comparison test always re-runs exactly what was pinned
SPEC = {
    "workloads": ["list", "array", "mcf"],
    "prefetchers": ["none", "stride", "context"],
    "limit": 2000,
}

GOLDEN_PATH = REPO / "tests" / "golden" / "small_sweep.json"


def collect_metrics() -> dict:
    sweep = compare(
        SPEC["workloads"], tuple(SPEC["prefetchers"]), limit=SPEC["limit"],
        jobs=1, cache=False,
    )
    metrics: dict[str, dict[str, dict[str, float]]] = {}
    for wl in sweep.workloads():
        metrics[wl] = {}
        for pf in sweep.prefetchers():
            result = sweep.get(wl, pf)
            metrics[wl][pf] = {
                "ipc": result.ipc,
                "l1_mpki": result.l1_mpki,
                "l2_mpki": result.l2_mpki,
                "accuracy": result.prefetcher_accuracy,
                "coverage": result.classifier.useful_fraction(),
            }
    return metrics


def main() -> int:
    payload = {
        "description": (
            "Golden small-scale sweep metrics; regenerate with "
            "scripts/regen_golden.py only when numbers are meant to move."
        ),
        "spec": SPEC,
        "metrics": collect_metrics(),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
