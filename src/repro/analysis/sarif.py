"""Output formats for CI: SARIF 2.1.0 and GitHub workflow annotations.

``format_sarif`` emits a minimal static-analysis log that GitHub code
scanning accepts (one run, one ``repro-lint`` driver, one result per
finding); ``format_github`` emits ``::error`` workflow commands so
findings annotate the diff even without code-scanning upload.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.registry import rule_catalogue

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: synthetic rule ids the runner can emit outside the registry
SYNTHETIC_RULES = {
    "PARSE": "file failed to parse",
    "NOQA": "stale inline suppression",
}


def _uri_prefix(root: Path) -> str:
    """``root`` relative to the working directory, for repo-rooted URIs."""
    try:
        rel = root.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        return ""
    prefix = rel.as_posix()
    return "" if prefix == "." else prefix + "/"


def format_sarif(findings: list[Finding], root: Path) -> str:
    """A SARIF 2.1.0 log for ``findings``, file URIs relative to cwd."""
    prefix = _uri_prefix(root)
    catalogue = {
        rule_id: cls.title for rule_id, cls in rule_catalogue().items()
    }
    catalogue.update(SYNTHETIC_RULES)
    rules_meta = [
        {
            "id": rule_id,
            "shortDescription": {"text": title},
        }
        for rule_id, title in sorted(catalogue.items())
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": prefix + f.path},
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
        }
        for f in findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def format_github(findings: list[Finding], root: Path) -> str:
    """``::error`` workflow commands, one line per finding."""
    prefix = _uri_prefix(root)
    lines = [
        f"::error file={prefix + f.path},line={max(f.line, 1)},"
        f"title={f.rule}::{f.message}"
        for f in findings
    ]
    return "\n".join(lines)
