"""The Reducer: online feature selection over context attributes.

Section 4.4 / Figure 7: the full 16-bit context hash indexes a 16K-entry
direct-mapped table whose entries hold a bitmap of *active* attributes.
Only the active attributes are re-hashed into the 19-bit value that
indexes the Context-States Table (CST).

Adaptation closes its own small loop:

* **Overload** — many reducer entries point at one CST entry, i.e. many
  full contexts collapse into one reduced context because they differ only
  in inactive attributes.  Response: activate the next attribute, splitting
  the reduced context.
* **Underload** — a CST entry has a single referrer and its candidates
  never earn positive scores: the context is over-specified (or useless),
  so the last-activated attribute is dropped to merge states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import ALL_ATTRIBUTES, AttributeSet
from repro.core.config import ContextPrefetcherConfig
from repro.core.context import _MASK64, ContextCapture
from repro.core.cst import ContextStatesTable


@dataclass(slots=True)
class ReducerEntry:
    tag: int
    active: AttributeSet
    #: reduced hash this entry most recently mapped to (pointer accounting)
    cst_key: int | None = None
    lookups: int = 0
    lookups_at_last_adapt: int = 0


class Reducer:
    """Direct-mapped feature-selection table in front of the CST."""

    __slots__ = (
        "config",
        "_index_bits",
        "_index_mask",
        "_tag_mask",
        "_full_hash_bits",
        "_reduced_hash_bits",
        "_full_bits_map",
        "_full_mask",
        "_reduced_mask",
        "_full_set",
        "_initial",
        "_entries",
        "allocations",
        "conflict_evictions",
        "activations",
        "deactivations",
    )

    def __init__(self, config: ContextPrefetcherConfig):
        self.config = config
        self._index_bits = (config.reducer_entries - 1).bit_length()
        self._index_mask = config.reducer_entries - 1
        self._tag_mask = (1 << config.reducer_tag_bits) - 1
        self._full_hash_bits = config.full_hash_bits
        self._reduced_hash_bits = config.reduced_hash_bits
        self._full_mask = (1 << config.full_hash_bits) - 1
        self._reduced_mask = (1 << config.reduced_hash_bits) - 1
        self._full_set = AttributeSet(ALL_ATTRIBUTES)
        self._full_bits_map = self._full_set.bits
        self._initial = AttributeSet(config.initial_attributes)
        self._entries: dict[int, ReducerEntry] = {}
        self.allocations = 0
        self.conflict_evictions = 0
        self.activations = 0
        self.deactivations = 0

    # ------------------------------------------------------------------

    def _split_full_hash(self, full_hash: int) -> tuple[int, int]:
        index = full_hash & self._index_mask
        tag = (full_hash >> self._index_bits) & self._tag_mask
        return index, tag

    def lookup(
        self, capture: ContextCapture, cst: ContextStatesTable
    ) -> tuple[ReducerEntry, int]:
        """Map a captured context to its reducer entry and reduced hash.

        Allocates on miss/conflict and keeps the CST's reducer-pointer
        counts in sync.  When adaptive reduction is disabled (ablation),
        every entry keeps the full attribute set, reducing the scheme to
        plain full-context hashing.

        Both ``ContextCapture.hash`` calls are inlined here (this method
        runs on every access and computes two hashes); the memo dict is
        read and populated exactly as the method would, so every produced
        key — and every later ``hash`` call on the capture — is identical.
        """
        values = capture.values
        keys = capture._keys
        full_bits_map = self._full_bits_map
        key = keys.get(full_bits_map)
        if key is None:
            # the full set gathers every value in order — splat directly
            key = hash((full_bits_map, *values))
            key = (key * 0x9E3779B97F4A7C15) & _MASK64
            key ^= key >> 29
            keys[full_bits_map] = key
        full_hash = key & self._full_mask
        index = full_hash & self._index_mask
        tag = (full_hash >> self._index_bits) & self._tag_mask

        entry = self._entries.get(index)
        if entry is None or entry.tag != tag:
            if entry is not None:
                self.conflict_evictions += 1
                if entry.cst_key is not None:
                    cst.remove_pointer(entry.cst_key)
            cfg = self.config
            active = self._full_set if not cfg.adaptive_reduction else self._initial
            entry = ReducerEntry(tag=tag, active=active)
            self._entries[index] = entry
            self.allocations += 1

        entry.lookups += 1
        active_bits = entry.active.bits
        key = keys.get(active_bits)
        if key is None:
            indices = entry.active.indices
            if len(indices) == len(values):
                key = hash((active_bits, *values))
            else:
                key = hash((active_bits, *[values[i] for i in indices]))
            key = (key * 0x9E3779B97F4A7C15) & _MASK64
            key ^= key >> 29
            keys[active_bits] = key
        reduced = key & self._reduced_mask
        if entry.cst_key != reduced:
            if entry.cst_key is not None:
                cst.remove_pointer(entry.cst_key)
            cst.add_pointer(reduced)
            entry.cst_key = reduced
        return entry, reduced

    # ------------------------------------------------------------------

    def adapt(
        self,
        entry: ReducerEntry,
        capture: ContextCapture,
        cst: ContextStatesTable,
        reduced: int,
    ) -> int:
        """Run the overload/underload check; returns the (possibly new)
        reduced hash for this capture.

        ``reduced`` is the hash :meth:`lookup` already computed.  Called on
        every access but only performs work every ``overload_check_period``
        lookups of the entry.
        """
        cfg = self.config
        if not cfg.adaptive_reduction:
            return reduced
        if entry.lookups - entry.lookups_at_last_adapt < cfg.overload_check_period:
            return reduced
        entry.lookups_at_last_adapt = entry.lookups

        cst_entry = cst.lookup(reduced)
        if cst_entry is not None:
            cst_entry.lookups -= 1  # adaptation peeks are not predictions

        changed = False
        if cst_entry is not None and cst_entry.ptr_count >= cfg.overload_refs:
            new_active = entry.active.activate_next()
            if new_active != entry.active:
                entry.active = new_active
                self.activations += 1
                changed = True
        elif (
            cst_entry is not None
            and cst_entry.ptr_count <= 1
            and entry.lookups >= cfg.underload_lookups
            and not any(c.score > 0 for c in cst_entry.candidates)
            and len(entry.active) > len(self._initial)
        ):
            new_active = entry.active.deactivate_last()
            if new_active != entry.active:
                entry.active = new_active
                self.deactivations += 1
                changed = True

        if changed:
            reduced = capture.hash(entry.active, cfg.reduced_hash_bits)
            if entry.cst_key is not None:
                cst.remove_pointer(entry.cst_key)
            cst.add_pointer(reduced)
            entry.cst_key = reduced
        return reduced

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
