"""Tests for the seed-robustness experiment."""

import pytest

from repro.experiments import robustness
from repro.experiments.robustness import SpeedupSpread


class TestSpeedupSpread:
    def test_statistics(self):
        spread = SpeedupSpread([1.0, 2.0, 3.0])
        assert spread.mean == pytest.approx(2.0)
        assert spread.spread == pytest.approx(2.0)
        assert spread.stdev == pytest.approx(1.0)
        assert spread.cv == pytest.approx(0.5)

    def test_single_sample(self):
        spread = SpeedupSpread([1.5])
        assert spread.stdev == 0.0
        assert spread.cv == 0.0


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return robustness.run(workloads=("array",), seeds=(7, 11))

    def test_both_axes_covered(self, result):
        assert set(result.workload_seed_spread) == {"array"}
        assert set(result.prefetcher_seed_spread) == {"array"}

    def test_sample_counts(self, result):
        assert len(result.workload_seed_spread["array"].samples) == 2
        assert len(result.prefetcher_seed_spread["array"].samples) == 2

    def test_speedups_positive(self, result):
        assert all(s > 0 for s in result.workload_seed_spread["array"].samples)

    def test_different_workload_seeds_give_different_traces(self, result):
        # not identical samples (heap shuffling differs per seed)
        samples = result.workload_seed_spread["array"].samples
        # array is deterministic in layout, so allow equality here; the
        # meaningful check is that the run completed per-seed
        assert len(samples) == 2

    def test_exploration_noise_is_small(self, result):
        # ε-greedy randomness should perturb, not dominate, the result
        assert result.prefetcher_seed_spread["array"].cv < 0.25

    def test_render(self, result):
        text = robustness.render(result)
        assert "Seed robustness" in text
        assert "workload-seed" in text and "prefetcher-seed" in text
