"""Tests for multi-phase simulation."""

import pytest

from repro.sim.phases import PhasedResult, run_phased, split_phases
from repro.workloads.suites import get_workload
from repro.workloads.trace import TraceBuilder


def toy_trace(n=100):
    tb = TraceBuilder()
    for i in range(n):
        tb.load(0x1000 + i * 64, "x", gap=2)
    return tb.accesses


class TestSplitPhases:
    def test_partitions_whole_trace(self):
        trace = toy_trace(100)
        phases = split_phases(trace, 4)
        assert sum(len(p) for p in phases) == 100
        assert [a for p in phases for a in p] == trace

    def test_near_equal_sizes(self):
        phases = split_phases(toy_trace(101), 4)
        sizes = [len(p) for p in phases]
        assert max(sizes) - min(sizes) <= 1

    def test_single_phase(self):
        trace = toy_trace(10)
        assert split_phases(trace, 1) == [trace]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_phases(toy_trace(10), 0)
        with pytest.raises(ValueError):
            split_phases(toy_trace(10), 11)


class TestRunPhased:
    @pytest.fixture(scope="class")
    def list_trace(self):
        return get_workload("list").build().trace()[:8000]

    def test_aggregates_sum_phases(self, list_trace):
        result = run_phased(list_trace, "none", num_phases=4)
        assert len(result.phases) == 4
        assert result.instructions == sum(p.instructions for p in result.phases)
        assert result.cycles == sum(p.cycles for p in result.phases)
        assert result.ipc > 0

    def test_mpki_aggregation(self, list_trace):
        result = run_phased(list_trace, "none", num_phases=2)
        total_misses = sum(p.l1.misses for p in result.phases)
        assert result.l1_mpki == pytest.approx(
            1000 * total_misses / result.instructions
        )

    def test_warm_start_beats_cold_start_for_learner(self, list_trace):
        cold = run_phased(list_trace, "context", num_phases=4, cold_start=True)
        warm = run_phased(list_trace, "context", num_phases=4, cold_start=False)
        # keeping learned state across phases can only help a recurring
        # traversal (the training-speed limitation of Section 7.3)
        assert warm.ipc >= cold.ipc * 0.98

    def test_speedup_over(self, list_trace):
        base = run_phased(list_trace, "none", num_phases=2)
        ctx = run_phased(list_trace, "context", num_phases=2)
        assert ctx.speedup_over(base) > 1.0

    def test_ipc_variation(self, list_trace):
        result = run_phased(list_trace, "none", num_phases=4)
        assert result.ipc_variation() >= 1.0

    def test_empty_result_properties(self):
        empty = PhasedResult(workload="w", prefetcher="p")
        assert empty.ipc == 0.0
        assert empty.l1_mpki == 0.0
        assert empty.ipc_variation() == 0.0
