"""Tests for result export (dict/CSV/markdown/stats dump)."""

import csv
import io

import pytest

from repro.sim.export import (
    comparison_to_csv,
    comparison_to_markdown,
    result_to_dict,
    results_to_csv,
    stats_dump,
)
from repro.sim.runner import compare, run_workload
from repro.workloads.arrays import ArrayTraversalProgram


@pytest.fixture(scope="module")
def small_result():
    return run_workload(ArrayTraversalProgram(num_elements=256, iterations=2), "context")


@pytest.fixture(scope="module")
def small_comparison():
    return compare(
        [ArrayTraversalProgram(num_elements=256, iterations=2)],
        prefetchers=("none", "context"),
    )


class TestResultToDict:
    def test_headline_fields(self, small_result):
        data = result_to_dict(small_result)
        assert data["workload"] == "array"
        assert data["prefetcher"] == "context"
        assert data["ipc"] == pytest.approx(small_result.ipc)
        assert data["l1_mpki"] == pytest.approx(small_result.l1_mpki)

    def test_classification_fields_present(self, small_result):
        data = result_to_dict(small_result)
        assert "class_hit_prefetched" in data
        assert "class_prefetch_never_hit" in data

    def test_values_json_safe(self, small_result):
        import json

        json.dumps(result_to_dict(small_result))


class TestCSV:
    def test_round_trip_via_csv_reader(self, small_result):
        text = results_to_csv([small_result])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 1
        assert rows[0]["workload"] == "array"
        assert float(rows[0]["ipc"]) == pytest.approx(small_result.ipc)

    def test_empty_input(self):
        assert results_to_csv([]) == ""

    def test_comparison_flattens_grid(self, small_comparison):
        text = comparison_to_csv(small_comparison)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2  # 1 workload x 2 prefetchers
        assert {r["prefetcher"] for r in rows} == {"none", "context"}


class TestMarkdown:
    def test_speedup_table_excludes_baseline(self, small_comparison):
        text = comparison_to_markdown(small_comparison)
        header = text.splitlines()[0]
        assert "context" in header and "none" not in header
        assert text.count("|---") >= 2

    def test_ipc_table_includes_all(self, small_comparison):
        text = comparison_to_markdown(small_comparison, metric="ipc")
        assert "none" in text.splitlines()[0]

    def test_unknown_metric_rejected(self, small_comparison):
        with pytest.raises(ValueError):
            comparison_to_markdown(small_comparison, metric="vibes")


class TestStatsDump:
    def test_gem5_flavoured_format(self, small_result):
        text = stats_dump(small_result)
        assert text.startswith("---------- Begin Simulation Statistics")
        assert text.rstrip().endswith("End Simulation Statistics ----------")
        assert "sim.ipc" in text and "l1d.mpki" in text

    def test_every_line_has_comment(self, small_result):
        lines = stats_dump(small_result).splitlines()[1:-1]
        assert all("#" in line for line in lines)
