"""PBBS convexHull: quickhull over a point set.

Figure 12 names convexHull as the context prefetcher's one significant
negative outlier — a divide-and-conquer kernel whose partition sweeps are
spatially friendly (SMS/stride territory) while its recursion produces
short, ever-changing phases the RL loop cannot amortise (the paper's
"training speed for simple patterns" loss cause).  Including it keeps the
reproduction honest about where the paper loses.

The substrate is a real quickhull: recursive partitioning by signed
triangle area, with the memory trace following the array sweeps
(sequential reads of the active point subset, compacting writes of each
partition).
"""

from __future__ import annotations

import random

from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

WORD = 8


def cross(o: tuple[float, float], a: tuple[float, float], b: tuple[float, float]) -> float:
    """Twice the signed area of triangle (o, a, b)."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Reference hull (Andrew's monotone chain) for validation."""
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    def half(iterable):
        chain: list[tuple[float, float]] = []
        for p in iterable:
            while len(chain) >= 2 and cross(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain[:-1]

    return half(pts) + half(reversed(pts))


class ConvexHullProgram(TraceProgram):
    """Quickhull with an array-sweep memory trace."""

    name = "convexhull"
    suite = "pbbs"

    def __init__(self, *, num_points: int = 4096, seed: int = 7):
        super().__init__(seed=seed)
        self.num_points = num_points
        self.result_hull: list[tuple[float, float]] = []

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        points = [(rng.random(), rng.random()) for _ in range(self.num_points)]
        # x and y coordinate arrays plus a scratch index array per level,
        # the PBBS-style structure-of-arrays layout
        x_base = heap.alloc(self.num_points * WORD)
        y_base = heap.alloc(self.num_points * WORD)
        idx_base = heap.alloc(2 * self.num_points * WORD)
        coord_hints = tb.index_hints("coords")

        def read_point(slot: int, i: int) -> None:
            tb.load(idx_base + slot * WORD, "hull.idx", value=i, gap=1)
            tb.load(x_base + i * WORD, "hull.x", value=i, depends=True, hints=coord_hints, gap=1)
            tb.load(y_base + i * WORD, "hull.y", value=i, depends=True, hints=coord_hints, gap=2)

        hull: list[int] = []

        def quickhull(indices: list[int], a: int, b: int, slot_base: int) -> None:
            if not indices:
                return
            # sweep the active subset: find the farthest point and the
            # two child partitions in one pass
            far, far_area = -1, 0.0
            left: list[int] = []
            for slot, i in enumerate(indices):
                read_point(slot_base + slot, i)
                area = cross(points[a], points[b], points[i])
                tb.branch(area > far_area)
                if area > far_area:
                    far, far_area = i, area
                if area > 0:
                    left.append(i)
            if far < 0:
                return
            hull.append(far)
            tb.store(idx_base + (slot_base % self.num_points) * WORD, "hull.emit", gap=2)
            above_ac = [i for i in left if cross(points[a], points[far], points[i]) > 0]
            above_cb = [i for i in left if cross(points[far], points[b], points[i]) > 0]
            quickhull(above_ac, a, far, slot_base)
            quickhull(above_cb, far, b, slot_base + len(above_ac))

        # initial sweep: min/max x points
        lo = min(range(self.num_points), key=lambda i: points[i])
        hi = max(range(self.num_points), key=lambda i: points[i])
        for i in range(self.num_points):
            read_point(i, i)
        hull.extend((lo, hi))
        upper = [i for i in range(self.num_points) if cross(points[lo], points[hi], points[i]) > 0]
        lower = [i for i in range(self.num_points) if cross(points[hi], points[lo], points[i]) > 0]
        quickhull(upper, lo, hi, 0)
        quickhull(lower, hi, lo, self.num_points)

        self.result_hull = sorted(points[i] for i in set(hull))
        return tb
