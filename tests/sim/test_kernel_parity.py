"""Kernel-parity suite: the optimized hot path is bit-exact.

``tests/golden/kernel_parity.json`` pins the complete
:class:`~repro.sim.metrics.SimulationResult` — every field, via the
lossless codec — for every registered prefetcher across three workloads,
including the warmup and multi-phase simulator paths.  The fixture was
generated from the tree *before* the PR-4 hot-path rewrite
(``scripts/regen_kernel_golden.py``), so these tests prove the rewritten
per-access kernel produces results identical to the unoptimized one.

Any mismatch here means an "optimization" changed simulation semantics.
Regenerate the golden only for a change that is *supposed* to move
results, and say why in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim import native as native_pkg
from repro.sim.codec import decode_result, encode_result
from repro.sim.config import PREFETCHER_FACTORIES
from repro.sim.phases import run_phased
from repro.sim.simulator import Simulator
from repro.workloads.suites import get_workload

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "kernel_parity.json"

_PAYLOAD = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
SPEC = _PAYLOAD["spec"]
GOLDEN = _PAYLOAD["results"]

_TRACES: dict[str, list] = {}


def _trace(name: str) -> list:
    if name not in _TRACES:
        _TRACES[name] = get_workload(name).build().trace()[: SPEC["limit"]]
    return _TRACES[name]


def _assert_matches(key: str, result) -> None:
    assert key in GOLDEN, f"golden fixture has no entry for {key}"
    golden = decode_result(GOLDEN[key])
    # dataclass equality covers every field (stats, classifier, CDF, …);
    # on failure the encoded dicts give a readable diff
    assert result == golden, (
        f"{key}: optimized kernel drifted from the pre-optimization golden\n"
        f"got:    {encode_result(result)}\n"
        f"golden: {GOLDEN[key]}"
    )


def test_spec_matches_registry() -> None:
    """The fixture covers exactly the registered prefetchers."""
    assert SPEC["prefetchers"] == sorted(PREFETCHER_FACTORIES)


def test_golden_is_complete() -> None:
    expected = (
        len(SPEC["workloads"]) * len(SPEC["prefetchers"])
        + len(SPEC["warmup"]["workloads"]) * len(SPEC["prefetchers"])
        + len(SPEC["phased"]["prefetchers"]) * SPEC["phased"]["num_phases"]
    )
    assert len(GOLDEN) == expected


@pytest.mark.parametrize("workload", sorted(set(SPEC["workloads"])))
@pytest.mark.parametrize("prefetcher", sorted(PREFETCHER_FACTORIES))
def test_plain_run_parity(workload: str, prefetcher: str) -> None:
    sim = Simulator(PREFETCHER_FACTORIES[prefetcher]())
    result = sim.run(_trace(workload), workload_name=workload)
    _assert_matches(f"plain/{workload}/{prefetcher}", result)


@pytest.mark.parametrize("workload", sorted(set(SPEC["warmup"]["workloads"])))
@pytest.mark.parametrize("prefetcher", sorted(PREFETCHER_FACTORIES))
def test_warmup_run_parity(workload: str, prefetcher: str) -> None:
    sim = Simulator(PREFETCHER_FACTORIES[prefetcher]())
    result = sim.run(
        _trace(workload), workload_name=workload, warmup=SPEC["warmup"]["warmup"]
    )
    _assert_matches(f"warmup/{workload}/{prefetcher}", result)


@pytest.fixture(scope="module")
def store_traces(tmp_path_factory) -> dict[str, list]:
    """The golden workloads again, round-tripped through the mmap store.

    Decoded records must drive the kernel to the *same* goldens as the
    built traces — a lossy trace codec would surface here as drift
    against the pre-optimization fixture, not as a crash.
    """
    from repro.workloads.store import TraceStore, read_trace

    store = TraceStore(tmp_path_factory.mktemp("traces"))
    names = set(SPEC["workloads"]) | {SPEC["phased"]["workload"]}
    traces = {}
    for name in sorted(names):
        stored, _ = store.ensure(name)
        traces[name] = read_trace(
            stored.path,
            limit=SPEC["limit"],
            expect_fingerprint=stored.fingerprint,
        )
    return traces


@pytest.mark.parametrize("workload", sorted(set(SPEC["workloads"])))
@pytest.mark.parametrize("prefetcher", sorted(PREFETCHER_FACTORIES))
def test_plain_run_parity_from_store(
    workload: str, prefetcher: str, store_traces: dict[str, list]
) -> None:
    sim = Simulator(PREFETCHER_FACTORIES[prefetcher]())
    result = sim.run(store_traces[workload], workload_name=workload)
    _assert_matches(f"plain/{workload}/{prefetcher}", result)


@pytest.mark.parametrize("prefetcher", sorted(set(SPEC["phased"]["prefetchers"])))
def test_phased_run_parity_from_store(
    prefetcher: str, store_traces: dict[str, list]
) -> None:
    phased = SPEC["phased"]
    workload = phased["workload"]
    run = run_phased(
        store_traces[workload],
        prefetcher,
        workload_name=workload,
        num_phases=phased["num_phases"],
        cold_start=phased["cold_start"],
    )
    for i, phase_result in enumerate(run.phases):
        _assert_matches(f"phased/{workload}/{prefetcher}/p{i}", phase_result)


@pytest.mark.parametrize("prefetcher", sorted(set(SPEC["phased"]["prefetchers"])))
def test_phased_run_parity(prefetcher: str) -> None:
    phased = SPEC["phased"]
    workload = phased["workload"]
    run = run_phased(
        _trace(workload),
        prefetcher,
        workload_name=workload,
        num_phases=phased["num_phases"],
        cold_start=phased["cold_start"],
    )
    assert len(run.phases) == phased["num_phases"]
    for i, phase_result in enumerate(run.phases):
        _assert_matches(f"phased/{workload}/{prefetcher}/p{i}", phase_result)


# -- native-kernel legs -------------------------------------------------
#
# The same goldens again, through the compiled batch kernel — including
# the RL context prefetcher, whose CST/bandit/reward loop runs in C with
# a bit-exact CPython MT19937.  Any run the kernel cannot represent
# silently takes the interpreted fallback inside ``run``; keeping those
# configs parametrized proves the fallback is bit-exact too, and the
# explicit assertion below proves the default context config does NOT
# fall back.  Skipped, not passed, when the toolchain cannot build the
# kernel, so a green run really means the native path was exercised.


def _require_native() -> None:
    if not native_pkg.is_available():
        pytest.skip("compiled kernel unavailable (numpy/cffi/toolchain)")


@pytest.mark.parametrize("workload", sorted(set(SPEC["workloads"])))
@pytest.mark.parametrize("prefetcher", sorted(PREFETCHER_FACTORIES))
def test_plain_run_parity_native(workload: str, prefetcher: str) -> None:
    _require_native()
    sim = Simulator(PREFETCHER_FACTORIES[prefetcher](), native=True)
    result = sim.run(_trace(workload), workload_name=workload)
    # every registered family now has a native port; a silent fallback
    # here would make this leg a no-op re-run of the interpreted test
    assert sim.last_run_native, sim.last_native_fallback
    _assert_matches(f"plain/{workload}/{prefetcher}", result)


@pytest.mark.parametrize("workload", sorted(set(SPEC["warmup"]["workloads"])))
@pytest.mark.parametrize("prefetcher", sorted(PREFETCHER_FACTORIES))
def test_warmup_run_parity_native(workload: str, prefetcher: str) -> None:
    _require_native()
    sim = Simulator(PREFETCHER_FACTORIES[prefetcher](), native=True)
    result = sim.run(
        _trace(workload), workload_name=workload, warmup=SPEC["warmup"]["warmup"]
    )
    assert sim.last_run_native, sim.last_native_fallback
    _assert_matches(f"warmup/{workload}/{prefetcher}", result)


@pytest.mark.parametrize("prefetcher", sorted(set(SPEC["phased"]["prefetchers"])))
def test_phased_run_parity_native(prefetcher: str) -> None:
    """Multi-phase native runs: warm prefetcher state crosses the kernel
    boundary via the per-object handle registry."""
    _require_native()
    phased = SPEC["phased"]
    workload = phased["workload"]
    run = run_phased(
        _trace(workload),
        prefetcher,
        workload_name=workload,
        num_phases=phased["num_phases"],
        cold_start=phased["cold_start"],
        native=True,
    )
    for i, phase_result in enumerate(run.phases):
        _assert_matches(f"phased/{workload}/{prefetcher}/p{i}", phase_result)


@pytest.fixture(scope="module")
def store_readers(tmp_path_factory):
    """mmap-backed readers over the golden workloads (not decoded lists)."""
    from repro.workloads.store import TraceReader, TraceStore

    store = TraceStore(tmp_path_factory.mktemp("reader-traces"))
    readers = {}
    for name in sorted(set(SPEC["workloads"])):
        stored, _ = store.ensure(name)
        readers[name] = TraceReader(stored.path)
    return readers


@pytest.mark.parametrize("workload", sorted(set(SPEC["workloads"])))
@pytest.mark.parametrize("prefetcher", sorted(PREFETCHER_FACTORIES))
def test_plain_run_parity_native_zero_copy(
    workload: str, prefetcher: str, store_readers: dict
) -> None:
    """The zero-copy decode phase: a TraceReader handed straight to the
    simulator must hit the same goldens as the decoded list."""
    _require_native()
    sim = Simulator(PREFETCHER_FACTORIES[prefetcher](), native=True)
    result = sim.run(
        store_readers[workload], workload_name=workload, limit=SPEC["limit"]
    )
    assert sim.last_run_native, sim.last_native_fallback
    _assert_matches(f"plain/{workload}/{prefetcher}", result)
