"""Figure 1: memory accesses of list insertion sort, two views.

The paper plots the accesses of a 100-element linked-list insertion sort
indexed by real memory address (top: scattered, no spatial structure) and
by logical list index (bottom: perfectly recurring linear traversals).
``run`` regenerates both series and quantifies the contrast: physical
neighbour distances are large and erratic, logical ones are almost always
exactly +1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.workloads.linked_list import InsertionSortProgram


@dataclass
class Figure1Result:
    #: (access ordinal, physical byte address) — the paper's top panel
    physical_series: list[tuple[int, int]]
    #: (access ordinal, logical list index) — the paper's bottom panel
    logical_series: list[tuple[int, int]]
    #: fraction of consecutive traversal steps that are +1 logically
    logical_step_unit_fraction: float
    #: fraction of consecutive traversal steps that are one node (32B)
    #: apart physically
    physical_step_adjacent_fraction: float
    #: physical span of the structure in bytes
    physical_span: int
    num_elements: int


def run(num_elements: int = 100, seed: int = 7) -> Figure1Result:
    program = InsertionSortProgram(num_elements=num_elements, seed=seed)
    program.trace()  # populates figure1_series
    series = program.figure1_series

    physical = [(ordinal, addr) for ordinal, addr, _ in series]
    logical = [(ordinal, idx) for ordinal, _, idx in series]

    unit_steps = 0
    adjacent_steps = 0
    steps = 0
    for (_, a_addr, a_idx), (_, b_addr, b_idx) in zip(series, series[1:]):
        if b_idx == 0:
            continue  # new insertion restarts the traversal
        steps += 1
        if b_idx - a_idx == 1:
            unit_steps += 1
        if abs(b_addr - a_addr) <= 64:
            adjacent_steps += 1

    addrs = [addr for _, addr, _ in series]
    return Figure1Result(
        physical_series=physical,
        logical_series=logical,
        logical_step_unit_fraction=unit_steps / steps if steps else 0.0,
        physical_step_adjacent_fraction=adjacent_steps / steps if steps else 0.0,
        physical_span=max(addrs) - min(addrs) if addrs else 0,
        num_elements=num_elements,
    )


def render(result: Figure1Result) -> str:
    rows = [
        ("elements inserted", result.num_elements),
        ("traversal accesses plotted", len(result.logical_series)),
        ("physical span (bytes)", result.physical_span),
        (
            "logical steps that are +1",
            f"{result.logical_step_unit_fraction:.1%}",
        ),
        (
            "physical steps within one node",
            f"{result.physical_step_adjacent_fraction:.1%}",
        ),
    ]
    return render_table(
        ("metric", "value"),
        rows,
        title="Figure 1 — semantic vs physical order (list insertion sort)",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
