"""Figure 11 bench: L2 MPKI per prefetcher and the paper's headline ratios."""

from conftest import run_once

from repro.experiments import fig11_l2_mpki as fig11


def test_fig11_l2_mpki(benchmark, bench_sweep):
    result = run_once(benchmark, fig11.run, "small", bench_sweep)

    # paper headline: context cuts average L2 MPKI ~4x vs none and ~2x vs
    # SMS; our substrate must show the same ordering with a clear margin
    assert result.ratio_vs_none > 1.5
    assert result.ratio_vs_sms > 1.0
    avg = result.mpki.average
    assert avg["context"] < avg["sms"] < avg["none"]
    print()
    print(fig11.render(result))
