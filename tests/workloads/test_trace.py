"""Tests for trace records, the builder and the heap allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hints import RefForm
from repro.workloads.trace import Heap, TraceBuilder, interleave


class TestHeapSequential:
    def test_allocations_are_adjacent(self):
        heap = Heap(placement="sequential")
        a = heap.alloc(32)
        b = heap.alloc(32)
        assert b == a + 32

    def test_alignment(self):
        heap = Heap(placement="sequential", align=8)
        heap.alloc(5)
        b = heap.alloc(8)
        assert b % 8 == 0

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Heap().alloc(0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=256), min_size=2, max_size=100))
    def test_no_overlapping_allocations(self, sizes):
        heap = Heap(placement="sequential")
        regions = sorted((heap.alloc(s), s) for s in sizes)
        for (a, sa), (b, _) in zip(regions, regions[1:]):
            assert a + sa <= b


class TestHeapShuffled:
    def test_allocation_order_differs_from_address_order(self):
        heap = Heap(placement="shuffled", seed=3)
        addrs = [heap.alloc(32) for _ in range(64)]
        assert addrs != sorted(addrs)

    def test_addresses_stay_within_window_span(self):
        heap = Heap(placement="shuffled", shuffle_window=8192, seed=3)
        addrs = [heap.alloc(32) for _ in range(100)]
        # consecutive allocations come from at most two adjacent windows
        for a, b in zip(addrs, addrs[1:]):
            assert abs(a - b) <= 2 * 8192

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from([16, 32, 64]), min_size=2, max_size=150))
    def test_no_overlapping_allocations_shuffled(self, sizes):
        heap = Heap(placement="shuffled", seed=5)
        regions = sorted((heap.alloc(s), s) for s in sizes)
        for (a, sa), (b, _) in zip(regions, regions[1:]):
            assert a + sa <= b

    def test_deterministic_under_seed(self):
        a = [Heap(placement="shuffled", seed=9).alloc(32) for _ in range(1)]
        b = [Heap(placement="shuffled", seed=9).alloc(32) for _ in range(1)]
        assert a == b

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            Heap(placement="chaotic")


class TestTraceBuilder:
    def test_sites_get_stable_distinct_pcs(self):
        tb = TraceBuilder()
        a = tb.site("load_a")
        b = tb.site("load_b")
        assert a != b
        assert tb.site("load_a") == a

    def test_branches_attach_to_next_access(self):
        tb = TraceBuilder()
        tb.branch(True)
        tb.branch(False)
        access = tb.load(0x1000, "x")
        assert access.branches == (True, False)
        assert tb.load(0x1008, "x").branches == ()

    def test_branch_counts_as_instruction(self):
        tb = TraceBuilder()
        tb.branch(True)
        access = tb.load(0x1000, "x", gap=2)
        assert access.inst_gap == 3

    def test_gap_accumulates(self):
        tb = TraceBuilder()
        tb.gap(10)
        access = tb.load(0x1000, "x", gap=2)
        assert access.inst_gap == 12

    def test_rejects_negative_gap(self):
        tb = TraceBuilder()
        with pytest.raises(ValueError):
            tb.gap(-1)

    def test_rejects_non_positive_address(self):
        tb = TraceBuilder()
        with pytest.raises(ValueError):
            tb.load(0, "x")

    def test_store_is_not_a_load(self):
        tb = TraceBuilder()
        assert not tb.store(0x1000, "s").is_load
        assert tb.load(0x1000, "l").is_load

    def test_pointer_hints_shape(self):
        tb = TraceBuilder()
        hints = tb.pointer_hints("node", 16)
        assert hints.ref_form is RefForm.ARROW
        assert hints.link_offset == 16
        assert hints.type_id == tb.type_id("node")

    def test_index_hints_shape(self):
        tb = TraceBuilder()
        hints = tb.index_hints("arr")
        assert hints.ref_form is RefForm.INDEX

    def test_type_ids_unique_per_name(self):
        tb = TraceBuilder()
        assert tb.type_id("a") != tb.type_id("b")
        assert tb.type_id("a") == tb.type_id("a")


class TestInterleave:
    def test_preserves_all_accesses(self):
        tb1, tb2 = TraceBuilder(), TraceBuilder()
        for i in range(5):
            tb1.load(0x1000 + i * 8, "a")
            tb2.load(0x2000 + i * 8, "b")
        merged = interleave([tb1.accesses, tb2.accesses])
        assert len(merged) == 10
        assert {a.addr for a in merged} == {
            a.addr for a in tb1.accesses + tb2.accesses
        }

    def test_preserves_per_stream_order(self):
        tb1, tb2 = TraceBuilder(), TraceBuilder()
        for i in range(5):
            tb1.load(0x1000 + i * 8, "a")
            tb2.load(0x2000 + i * 8, "b")
        merged = interleave([tb1.accesses, tb2.accesses], seed=1)
        a_addrs = [a.addr for a in merged if a.addr < 0x2000]
        assert a_addrs == sorted(a_addrs)
