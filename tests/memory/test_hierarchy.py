"""Tests for the two-level hierarchy with prefetch timing."""

from repro.memory.hierarchy import Hierarchy, HierarchyConfig
from repro.memory.stats import AccessClass


def tiny_hierarchy(**overrides) -> Hierarchy:
    """A small hierarchy with Table 2 latencies but tiny capacities."""
    defaults = dict(
        l1_size=8 * 64,  # 8 lines, 2 ways
        l1_ways=2,
        l1_latency=2,
        l1_mshrs=4,
        l2_size=64 * 64,
        l2_ways=4,
        l2_latency=20,
        l2_mshrs=20,
        dram_latency=300,
    )
    defaults.update(overrides)
    return Hierarchy(HierarchyConfig(**defaults))


ADDR = 0x10000


class TestDemandLatencies:
    def test_cold_miss_pays_full_dram_path(self):
        hier = tiny_hierarchy()
        result = hier.demand_access(ADDR, now=0)
        assert result.latency == 2 + 20 + 300
        assert not result.l1_hit and not result.l2_hit
        assert result.served_by == "dram"

    def test_l1_hit_after_fill(self):
        hier = tiny_hierarchy()
        hier.demand_access(ADDR, now=0)
        result = hier.demand_access(ADDR, now=1000)
        assert result.l1_hit
        assert result.latency == 2
        assert result.access_class is AccessClass.HIT_OLDER_DEMAND

    def test_l2_hit_after_l1_eviction(self):
        hier = tiny_hierarchy()
        hier.demand_access(ADDR, now=0)
        # thrash set 0 of the tiny L1 (4 sets => lines 4 apart conflict)
        hier.demand_access(ADDR + 4 * 64, now=1000)
        hier.demand_access(ADDR + 8 * 64, now=2000)
        result = hier.demand_access(ADDR, now=3000)
        assert not result.l1_hit and result.l2_hit
        assert result.latency == 2 + 20

    def test_demand_merge_with_inflight_demand(self):
        hier = tiny_hierarchy()
        first = hier.demand_access(ADDR, now=0)
        second = hier.demand_access(ADDR + 8, now=100)  # same line
        assert second.served_by == "mshr"
        assert second.latency == first.latency - 100
        assert second.access_class is AccessClass.HIT_OLDER_DEMAND

    def test_mshr_exhaustion_delays_demand(self):
        hier = tiny_hierarchy(l1_mshrs=2)
        hier.demand_access(ADDR, now=0)
        hier.demand_access(ADDR + 64, now=0)
        result = hier.demand_access(ADDR + 128, now=0)
        # must wait for an earlier miss to retire before starting
        assert result.latency > 322


class TestPrefetchPath:
    def test_prefetch_fills_l1_after_latency(self):
        hier = tiny_hierarchy()
        outcome = hier.prefetch(ADDR, now=0)
        assert outcome.issued
        result = hier.demand_access(ADDR, now=outcome.completes_at + 1)
        assert result.l1_hit
        assert result.access_class is AccessClass.HIT_PREFETCHED

    def test_second_touch_of_prefetched_line_is_older_demand(self):
        hier = tiny_hierarchy()
        outcome = hier.prefetch(ADDR, now=0)
        hier.demand_access(ADDR, now=outcome.completes_at + 1)
        result = hier.demand_access(ADDR, now=outcome.completes_at + 2)
        assert result.access_class is AccessClass.HIT_OLDER_DEMAND

    def test_demand_during_prefetch_gets_shorter_wait(self):
        hier = tiny_hierarchy()
        hier.prefetch(ADDR, now=0)  # cold: completes at 322
        result = hier.demand_access(ADDR, now=300)
        assert result.access_class is AccessClass.SHORTER_WAIT
        assert result.latency == 22  # only the remainder

    def test_dram_prefetch_also_fills_l2(self):
        hier = tiny_hierarchy()
        outcome = hier.prefetch(ADDR, now=0)
        hier.drain(outcome.completes_at + 1)
        assert hier.l2.contains(ADDR // 64)

    def test_l2_resident_prefetch_is_fast(self):
        hier = tiny_hierarchy()
        first = hier.demand_access(ADDR, now=0)  # brings line into L1+L2
        # evict from L1 via conflicts
        hier.demand_access(ADDR + 4 * 64, now=1000)
        hier.demand_access(ADDR + 8 * 64, now=2000)
        outcome = hier.prefetch(ADDR, now=3000)
        assert outcome.completes_at - 3000 == 22

    def test_redundant_prefetch_of_resident_line(self):
        hier = tiny_hierarchy()
        hier.demand_access(ADDR, now=0)
        outcome = hier.prefetch(ADDR, now=1000)
        assert not outcome.issued
        assert outcome.reason == "resident"
        assert hier.prefetches_redundant == 1

    def test_redundant_prefetch_of_inflight_line(self):
        hier = tiny_hierarchy()
        hier.prefetch(ADDR, now=0)
        outcome = hier.prefetch(ADDR, now=10)
        assert not outcome.issued
        assert outcome.reason == "in-flight"


class TestBacklog:
    def test_excess_prefetches_queue_and_drain(self):
        hier = tiny_hierarchy(prefetch_buffers=2, prefetch_mshr_reserve=0)
        outcomes = [hier.prefetch(ADDR + i * 64, now=0) for i in range(5)]
        assert all(o.issued for o in outcomes)
        assert hier.prefetches_issued == 2
        # after the first two complete, the backlog drains
        hier.drain(400)
        assert hier.prefetches_issued == 4
        hier.drain(800)
        assert hier.prefetches_issued == 5

    def test_backlog_overflow_rejected(self):
        hier = tiny_hierarchy(
            prefetch_buffers=1, prefetch_backlog_depth=2, prefetch_mshr_reserve=0
        )
        for i in range(6):
            hier.prefetch(ADDR + i * 64, now=0)
        assert hier.prefetches_rejected_mshr > 0

    def test_queued_line_not_requeued(self):
        hier = tiny_hierarchy(prefetch_buffers=1, prefetch_mshr_reserve=0)
        hier.prefetch(ADDR, now=0)
        hier.prefetch(ADDR + 64, now=0)  # queued
        outcome = hier.prefetch(ADDR + 64, now=0)
        assert outcome.reason == "queued-already"


class TestClassificationPlumbing:
    def test_non_timely_when_prediction_never_issued(self):
        hier = tiny_hierarchy()
        hier.note_unissued_prediction(ADDR // 64)
        result = hier.demand_access(ADDR, now=0)
        assert result.access_class is AccessClass.NON_TIMELY

    def test_plain_miss_not_prefetched(self):
        hier = tiny_hierarchy()
        result = hier.demand_access(ADDR, now=0)
        assert result.access_class is AccessClass.MISS_NOT_PREFETCHED

    def test_wasted_prefetch_counted_on_eviction(self):
        hier = tiny_hierarchy()
        out = hier.prefetch(ADDR, now=0)
        hier.drain(out.completes_at + 1)
        # evict the prefetched line with conflicting demand fills
        t = out.completes_at + 10
        for i in range(1, 3):
            r = hier.demand_access(ADDR + 4 * i * 64, now=t)
            t += r.latency + 10
        hier.drain(t + 1000)
        assert hier.wasted_prefetches() == 1

    def test_l2_stats_recorded_on_l1_miss_only(self):
        hier = tiny_hierarchy()
        hier.demand_access(ADDR, now=0)
        hier.demand_access(ADDR, now=1000)  # L1 hit: no L2 access
        assert hier.l2_stats.accesses == 1
