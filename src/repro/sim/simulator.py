"""The trace-driven simulator: one workload, one prefetcher, one run.

Replays a workload trace through the branch-history register, the core
timing model and the cache hierarchy, feeding each demand access to the
prefetcher and dispatching the prefetches it returns.  Produces the
:class:`~repro.sim.metrics.SimulationResult` every figure consumes.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.cpu.branch import BranchHistoryRegister
from repro.cpu.core_model import CoreStats
from repro.memory.stats import AccessClassifier, CacheStats
from repro.cpu.core_model import CoreConfig, CoreModel
from repro.memory.hierarchy import Hierarchy, HierarchyConfig
from repro.prefetchers.base import AccessInfo, Prefetcher
from repro.sim.metrics import HitDepthCDF, SimulationResult
from repro.workloads.trace import MemoryAccess


class Simulator:
    """Drives one prefetcher through one access trace."""

    def __init__(
        self,
        prefetcher: Prefetcher,
        *,
        hierarchy_config: HierarchyConfig | None = None,
        core_config: CoreConfig | None = None,
        bhr_bits: int = 8,
    ):
        self.prefetcher = prefetcher
        self.hierarchy = Hierarchy(hierarchy_config)
        self.core = CoreModel(core_config or CoreConfig())
        self.bhr = BranchHistoryRegister(bits=bhr_bits)
        self._line_bytes = self.hierarchy.config.line_bytes
        self._cycle_base = 0

    def _reset_stats(self) -> None:
        """Zero the statistics counters without disturbing warm state.

        Caches, MSHRs, in-flight fills and the prefetcher's learned state
        all survive; only the counters (and the cycle baseline) restart.
        Used by the ``warmup`` mode of :meth:`run`.
        """
        hier = self.hierarchy
        stats = self.core.finalize()
        self._cycle_base = stats.cycles
        hier.l1_stats = CacheStats(name="L1D")
        hier.l2_stats = CacheStats(name="L2")
        hier.prefetches_issued = 0
        hier.prefetches_rejected_mshr = 0
        hier.prefetches_redundant = 0
        hier.l1.unused_prefetch_evictions = 0
        hier.l1.used_prefetch_fills = 0
        self.core.stats = CoreStats()

    def run(
        self,
        trace: "Iterable[MemoryAccess]",
        *,
        workload_name: str = "trace",
        limit: int | None = None,
        start_index: int = 0,
        warmup: int = 0,
    ) -> SimulationResult:
        """Replay ``trace`` (optionally truncated to ``limit`` accesses).

        ``trace`` may be any iterable — a workload's list or a streaming
        reader such as :func:`repro.workloads.serialize.iter_trace`.
        (``warmup`` mode materialises the stream, since it replays a
        prefix separately.)

        ``start_index`` offsets the access-stream indices handed to the
        prefetcher — used by multi-phase runs that keep prefetcher state
        across phases, so hit depths remain monotone across the seam.

        ``warmup`` runs that many leading accesses through the caches and
        the prefetcher *before* statistics start counting — the standard
        simulator practice for measuring steady state (the paper simulates
        pre-characterised steady-state phases, Section 6).
        """
        if warmup:
            trace = list(trace)
            accesses = trace[:limit] if limit is not None else trace
            if warmup >= len(accesses):
                raise ValueError("warmup consumes the whole trace")
            self.run(
                accesses[:warmup],
                workload_name=workload_name,
                start_index=start_index,
            )
            self._reset_stats()
            return self.run(
                accesses[warmup:],
                workload_name=workload_name,
                start_index=start_index + warmup,
            )
        hier = self.hierarchy
        core = self.core
        pf = self.prefetcher
        hit_depths = HitDepthCDF()
        classifier = AccessClassifier()
        #: line -> access index of the most recent (real or shadow)
        #: prediction; mirrors the paper's 128-entry prefetch queue, so
        #: hits deeper than the queue capacity count as expirations
        predicted_at: dict[int, int] = {}
        depth_cap = 128
        last_value = 0
        issued_real = 0
        issued_shadow = 0

        accesses = itertools.islice(trace, limit) if limit is not None else trace
        for index, access in enumerate(accesses, start=start_index):
            self.bhr.update_many(access.branches)
            # inst_gap already includes branch instructions (TraceBuilder
            # contract); branches are carried separately only for the BHR
            gap = access.inst_gap
            issue = core.issue_time(gap, depends_on_prev=access.depends_on_prev)

            result = hier.demand_access(access.addr, issue)
            classifier.record_demand(result.access_class)
            core.complete(issue, result.latency, gap)

            line = access.addr // self._line_bytes
            if line in predicted_at:
                depth = index - predicted_at.pop(line)
                if depth <= depth_cap:
                    hit_depths.add(depth)

            info = AccessInfo(
                index=index,
                cycle=issue,
                addr=access.addr,
                pc=access.pc,
                is_load=access.is_load,
                l1_hit=result.l1_hit,
                primary_miss=not result.l1_hit and result.served_by != "mshr",
                branch_history=self.bhr.value,
                reg_value=access.reg_value,
                last_value=last_value,
                hints=access.hints,
            )
            for request in pf.on_access(info):
                pf_line = request.addr // self._line_bytes
                if request.shadow:
                    hier.note_unissued_prediction(pf_line)
                    issued_shadow += 1
                else:
                    outcome = hier.prefetch(request.addr, issue)
                    pf.on_prefetch_issue(request, outcome.issued, outcome.reason)
                    if outcome.issued:
                        issued_real += 1
                    else:
                        hier.note_unissued_prediction(pf_line)
                        issued_shadow += 1
                # oldest-unexpired semantics: a line keeps its first
                # prediction's timestamp until that entry would have
                # expired from a 128-deep prefetch queue
                prev = predicted_at.get(pf_line)
                if prev is None or index - prev > depth_cap:
                    predicted_at[pf_line] = index
            if len(predicted_at) > 8 * depth_cap:
                cutoff = index - depth_cap
                predicted_at = {
                    ln: i for ln, i in predicted_at.items() if i >= cutoff
                }

            last_value = access.value if access.is_load else last_value

        # The context prefetcher tracks per-queue-entry hit depths itself
        # (real and shadow predictions, exactly the paper's Figure 8
        # metric); prefer that over the per-line approximation.
        own_histogram = getattr(pf, "hit_depth_histogram", None)
        if own_histogram:
            hit_depths = HitDepthCDF()
            for depth, count in own_histogram.items():
                hit_depths.add(depth, count)

        stats = core.finalize()
        hier.drain(stats.cycles + 10_000)
        classifier.record_wasted_prefetch(
            hier.wasted_prefetches() + hier.l1.resident_unused_prefetches()
        )

        return SimulationResult(
            workload=workload_name,
            prefetcher=pf.name,
            instructions=stats.instructions,
            cycles=max(1, stats.cycles - self._cycle_base),
            l1=hier.l1_stats,
            l2=hier.l2_stats,
            classifier=classifier,
            hit_depths=hit_depths,
            prefetches_issued=issued_real,
            prefetches_shadow=issued_shadow,
            prefetches_rejected=hier.prefetches_rejected_mshr,
            prefetches_redundant=hier.prefetches_redundant,
            prefetcher_accuracy=getattr(pf, "accuracy", lambda: 0.0)(),
            storage_bits=pf.storage_bits(),
        )
