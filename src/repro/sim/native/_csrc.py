"""C source for the native batch kernel (compiled at runtime via cffi).

The kernel is a line-for-line port of the interpreted hot path — the
core timing model, the two-level hierarchy with MSHRs/prefetch buffers,
and the five table-based prefetcher families — with every tie-breaking
data structure (the CPython heapq layout for the pending-fill heap, the
dict-insertion-order LRU of the caches and index tables) reproduced
exactly so results are bit-identical.  ``docs/native_kernel.md`` carries
the per-phase exactness arguments; the golden/parity/fuzz suites prove
them.
"""

from __future__ import annotations

#: number of int64 slots rp_run writes into its output block
OUT_SLOTS = 19 + 129

CDEF = """
typedef struct RpSim RpSim;
typedef struct RpPf RpPf;

RpSim *rp_sim_new(const int64_t *hier_cfg, const int64_t *core_cfg);
void rp_sim_free(RpSim *sim);
void rp_reset_stats(RpSim *sim);
RpPf *rp_pf_new(int kind, const int64_t *cfg);
void rp_pf_free(RpPf *pf);
int rp_run(RpSim *sim, RpPf *pf, int64_t n, int64_t start_index,
           const uint64_t *addrs, const uint64_t *pcs,
           const uint64_t *lines, const uint32_t *inst_gaps,
           const uint8_t *flags, int64_t *out);
"""

SOURCE_RUNTIME = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* open-addressing hash map: int64 key -> int64 value.  Linear probing
 * with backward-shift deletion (no tombstones); iteration order is
 * never observed, matching the plain-dict uses it mirrors. */

static uint64_t mix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

typedef struct {
    int64_t *keys;
    int64_t *vals;
    uint8_t *used;
    size_t cap;   /* power of two */
    size_t count;
} Map;

static int map_init(Map *m, size_t cap) {
    m->cap = cap; m->count = 0;
    m->keys = (int64_t *)malloc(cap * sizeof(int64_t));
    m->vals = (int64_t *)malloc(cap * sizeof(int64_t));
    m->used = (uint8_t *)calloc(cap, 1);
    return m->keys && m->vals && m->used;
}

static void map_free(Map *m) {
    free(m->keys); free(m->vals); free(m->used);
    m->keys = 0; m->vals = 0; m->used = 0; m->cap = 0; m->count = 0;
}

static void map_clear(Map *m) {
    memset(m->used, 0, m->cap);
    m->count = 0;
}

static int map_grow(Map *m);

/* returns slot of key, or (size_t)-1 */
static size_t map_find(const Map *m, int64_t key) {
    size_t mask = m->cap - 1;
    size_t i = (size_t)mix64((uint64_t)key) & mask;
    while (m->used[i]) {
        if (m->keys[i] == key) return i;
        i = (i + 1) & mask;
    }
    return (size_t)-1;
}

static int map_set(Map *m, int64_t key, int64_t val) {
    if ((m->count + 1) * 4 >= m->cap * 3) {
        if (!map_grow(m)) return 0;
    }
    size_t mask = m->cap - 1;
    size_t i = (size_t)mix64((uint64_t)key) & mask;
    while (m->used[i]) {
        if (m->keys[i] == key) { m->vals[i] = val; return 1; }
        i = (i + 1) & mask;
    }
    m->keys[i] = key; m->vals[i] = val; m->used[i] = 1; m->count++;
    return 1;
}

static int map_grow(Map *m) {
    Map bigger;
    if (!map_init(&bigger, m->cap * 2)) return 0;
    for (size_t i = 0; i < m->cap; i++) {
        if (m->used[i]) map_set(&bigger, m->keys[i], m->vals[i]);
    }
    map_free(m);
    *m = bigger;
    return 1;
}

/* value of key, or `absent` when missing */
static int64_t map_get(const Map *m, int64_t key, int64_t absent) {
    size_t i = map_find(m, key);
    return i == (size_t)-1 ? absent : m->vals[i];
}

static void map_del_slot(Map *m, size_t i) {
    size_t mask = m->cap - 1;
    size_t j = i;
    for (;;) {
        m->used[i] = 0;
        for (;;) {
            j = (j + 1) & mask;
            if (!m->used[j]) { m->count--; return; }
            size_t k = (size_t)mix64((uint64_t)m->keys[j]) & mask;
            /* keep entries whose home slot lies cyclically in (i, j] */
            if (i <= j ? (k <= i || k > j) : (k <= i && k > j)) break;
        }
        m->keys[i] = m->keys[j];
        m->vals[i] = m->vals[j];
        m->used[i] = 1;
        i = j;
    }
}

static void map_del(Map *m, int64_t key) {
    size_t i = map_find(m, key);
    if (i != (size_t)-1) map_del_slot(m, i);
}

/* pop(key, default): removes and returns, like dict.pop */
static int64_t map_pop(Map *m, int64_t key, int64_t absent) {
    size_t i = map_find(m, key);
    if (i == (size_t)-1) return absent;
    int64_t v = m->vals[i];
    map_del_slot(m, i);
    return v;
}

/* ------------------------------------------------------------------ */
/* growable FIFO ring of (idx, line) pairs: the prediction logs */

typedef struct {
    int64_t *idx;
    int64_t *line;
    size_t cap;   /* power of two */
    size_t head;
    size_t len;
} Log;

static int log_init(Log *g, size_t cap) {
    g->cap = cap; g->head = 0; g->len = 0;
    g->idx = (int64_t *)malloc(cap * sizeof(int64_t));
    g->line = (int64_t *)malloc(cap * sizeof(int64_t));
    return g->idx && g->line;
}

static void log_free(Log *g) {
    free(g->idx); free(g->line);
    g->idx = 0; g->line = 0; g->cap = 0; g->head = 0; g->len = 0;
}

static void log_clear(Log *g) { g->head = 0; g->len = 0; }

static int log_push(Log *g, int64_t idx, int64_t line) {
    if (g->len == g->cap) {
        size_t ncap = g->cap * 2;
        int64_t *ni = (int64_t *)malloc(ncap * sizeof(int64_t));
        int64_t *nl = (int64_t *)malloc(ncap * sizeof(int64_t));
        if (!ni || !nl) { free(ni); free(nl); return 0; }
        for (size_t i = 0; i < g->len; i++) {
            size_t s = (g->head + i) & (g->cap - 1);
            ni[i] = g->idx[s]; nl[i] = g->line[s];
        }
        free(g->idx); free(g->line);
        g->idx = ni; g->line = nl; g->cap = ncap; g->head = 0;
    }
    size_t s = (g->head + g->len) & (g->cap - 1);
    g->idx[s] = idx; g->line[s] = line;
    g->len++;
    return 1;
}

static void log_pop(Log *g, int64_t *idx, int64_t *line) {
    *idx = g->idx[g->head]; *line = g->line[g->head];
    g->head = (g->head + 1) & (g->cap - 1);
    g->len--;
}

/* ------------------------------------------------------------------ */
/* pending-fill heap: a verbatim port of CPython's heapq siftdown/siftup
 * over elements compared ONLY on completes_at with strict <, matching
 * _PendingFill.__lt__ — equal-time fills therefore pop in the identical
 * structure-dependent order as the interpreted path. */

typedef struct {
    int64_t t;       /* completes_at */
    int64_t line;
    uint8_t prefetched;
    uint8_t fill_l2;
} Fill;

typedef struct { Fill *a; size_t len, cap; } FillHeap;

static int fheap_init(FillHeap *h, size_t cap) {
    h->len = 0; h->cap = cap;
    h->a = (Fill *)malloc(cap * sizeof(Fill));
    return h->a != 0;
}

static void fheap_free(FillHeap *h) { free(h->a); h->a = 0; h->len = 0; h->cap = 0; }

static void fheap_siftdown(FillHeap *h, size_t startpos, size_t pos) {
    Fill newitem = h->a[pos];
    while (pos > startpos) {
        size_t parentpos = (pos - 1) >> 1;
        Fill parent = h->a[parentpos];
        if (newitem.t < parent.t) { h->a[pos] = parent; pos = parentpos; continue; }
        break;
    }
    h->a[pos] = newitem;
}

static void fheap_siftup(FillHeap *h, size_t pos) {
    size_t startpos = pos, endpos = h->len;
    Fill newitem = h->a[pos];
    size_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        size_t rightpos = childpos + 1;
        if (rightpos < endpos && !(h->a[childpos].t < h->a[rightpos].t))
            childpos = rightpos;
        h->a[pos] = h->a[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    h->a[pos] = newitem;
    fheap_siftdown(h, startpos, pos);
}

static int fheap_push(FillHeap *h, Fill item) {
    if (h->len == h->cap) {
        size_t ncap = h->cap * 2;
        Fill *na = (Fill *)realloc(h->a, ncap * sizeof(Fill));
        if (!na) return 0;
        h->a = na; h->cap = ncap;
    }
    h->a[h->len++] = item;
    fheap_siftdown(h, 0, h->len - 1);
    return 1;
}

static Fill fheap_pop(FillHeap *h) {
    Fill lastelt = h->a[--h->len];
    if (h->len) {
        Fill returnitem = h->a[0];
        h->a[0] = lastelt;
        fheap_siftup(h, 0);
        return returnitem;
    }
    return lastelt;
}

/* ------------------------------------------------------------------ */
/* MSHR expiry heap: (completes_at, line) tuples, full lexicographic
 * order — lines are unique so successive pops are totally sorted and
 * any correct min-heap matches the interpreted retirement order. */

typedef struct { int64_t t; int64_t line; } Pair;

typedef struct { Pair *a; size_t len, cap; } PairHeap;

static int pheap_lt(Pair x, Pair y) {
    return x.t < y.t || (x.t == y.t && x.line < y.line);
}

static int pheap_init(PairHeap *h, size_t cap) {
    h->len = 0; h->cap = cap;
    h->a = (Pair *)malloc(cap * sizeof(Pair));
    return h->a != 0;
}

static void pheap_free(PairHeap *h) { free(h->a); h->a = 0; h->len = 0; h->cap = 0; }

static void pheap_siftdown(PairHeap *h, size_t startpos, size_t pos) {
    Pair newitem = h->a[pos];
    while (pos > startpos) {
        size_t parentpos = (pos - 1) >> 1;
        Pair parent = h->a[parentpos];
        if (pheap_lt(newitem, parent)) { h->a[pos] = parent; pos = parentpos; continue; }
        break;
    }
    h->a[pos] = newitem;
}

static void pheap_siftup(PairHeap *h, size_t pos) {
    size_t startpos = pos, endpos = h->len;
    Pair newitem = h->a[pos];
    size_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        size_t rightpos = childpos + 1;
        if (rightpos < endpos && !pheap_lt(h->a[childpos], h->a[rightpos]))
            childpos = rightpos;
        h->a[pos] = h->a[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    h->a[pos] = newitem;
    pheap_siftdown(h, startpos, pos);
}

static int pheap_push(PairHeap *h, Pair item) {
    if (h->len == h->cap) {
        size_t ncap = h->cap * 2;
        Pair *na = (Pair *)realloc(h->a, ncap * sizeof(Pair));
        if (!na) return 0;
        h->a = na; h->cap = ncap;
    }
    h->a[h->len++] = item;
    pheap_siftdown(h, 0, h->len - 1);
    return 1;
}

static Pair pheap_pop(PairHeap *h) {
    Pair lastelt = h->a[--h->len];
    if (h->len) {
        Pair returnitem = h->a[0];
        h->a[0] = lastelt;
        pheap_siftup(h, 0);
        return returnitem;
    }
    return lastelt;
}
"""

SOURCE_MEMORY = r"""
/* ------------------------------------------------------------------ */
/* MSHR file: linear entry table (files are small) + expiry heap with
 * the _next_expiry short-circuit invariant; lazy retirement exactly as
 * the interpreted MSHRFile.  NEVER == INT64_MAX stands in for inf. */

#define MSHR_NEVER INT64_MAX

typedef struct {
    int64_t line;
    int64_t completes_at;
    uint8_t used;
} MEntry;

typedef struct {
    int num_entries;
    MEntry *entries;
    int count;
    PairHeap heap;
    int64_t next_expiry;
} Mshr;

static int mshr_init(Mshr *m, int num_entries) {
    m->num_entries = num_entries;
    m->count = 0;
    m->next_expiry = MSHR_NEVER;
    m->entries = (MEntry *)calloc((size_t)num_entries, sizeof(MEntry));
    if (!m->entries) return 0;
    return pheap_init(&m->heap, (size_t)num_entries + 1);
}

static void mshr_free(Mshr *m) {
    free(m->entries); m->entries = 0;
    pheap_free(&m->heap);
}

static MEntry *mshr_slot(Mshr *m, int64_t line) {
    for (int i = 0; i < m->num_entries; i++) {
        if (m->entries[i].used && m->entries[i].line == line) return &m->entries[i];
    }
    return 0;
}

static void mshr_expire(Mshr *m, int64_t now) {
    if (now < m->next_expiry) return;
    while (m->heap.len && m->heap.a[0].t <= now) {
        Pair p = pheap_pop(&m->heap);
        MEntry *e = mshr_slot(m, p.line);
        e->used = 0;
        m->count--;
    }
    m->next_expiry = m->heap.len ? m->heap.a[0].t : MSHR_NEVER;
}

static int mshr_available(Mshr *m, int64_t now) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    return m->num_entries - m->count;
}

/* completion time of an in-flight line, or -1 */
static int64_t mshr_lookup(Mshr *m, int64_t line, int64_t now) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    MEntry *e = mshr_slot(m, line);
    return e ? e->completes_at : -1;
}

static int64_t mshr_earliest(Mshr *m, int64_t now) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    if (!m->count) return -1;
    return m->next_expiry;
}

static int mshr_allocate(Mshr *m, int64_t line, int64_t now, int64_t completes_at) {
    if (now >= m->next_expiry) mshr_expire(m, now);
    MEntry *e = mshr_slot(m, line);
    if (e) return 1;  /* merge: completion time unchanged */
    if (m->count >= m->num_entries) return 0;
    for (int i = 0; i < m->num_entries; i++) {
        if (!m->entries[i].used) {
            m->entries[i].line = line;
            m->entries[i].completes_at = completes_at;
            m->entries[i].used = 1;
            break;
        }
    }
    pheap_push(&m->heap, (Pair){completes_at, line});
    if (completes_at < m->next_expiry) m->next_expiry = completes_at;
    m->count++;
    return 1;
}

/* ------------------------------------------------------------------ */
/* set-associative cache: each set is an array ordered LRU -> MRU, the
 * exact mirror of the dict-as-LRU sets (array order == dict insertion
 * order; move-to-end == delete+reinsert; victim == first entry). */

typedef struct {
    int64_t line;
    uint8_t prefetched;
    uint8_t referenced;
} CLine;

typedef struct {
    int64_t num_sets;   /* power of two (validated by CacheConfig) */
    int ways;
    CLine *data;        /* num_sets * ways */
    int *counts;
    int64_t unused_prefetch_evictions;
    int64_t used_prefetch_fills;
} NCache;

static int cache_init(NCache *c, int64_t num_sets, int ways) {
    c->num_sets = num_sets;
    c->ways = ways;
    c->unused_prefetch_evictions = 0;
    c->used_prefetch_fills = 0;
    c->data = (CLine *)calloc((size_t)(num_sets * ways), sizeof(CLine));
    c->counts = (int *)calloc((size_t)num_sets, sizeof(int));
    return c->data && c->counts;
}

static void cache_free(NCache *c) {
    free(c->data); free(c->counts);
    c->data = 0; c->counts = 0;
}

static int cache_contains(NCache *c, int64_t line) {
    CLine *set = c->data + (line & (c->num_sets - 1)) * c->ways;
    int n = c->counts[line & (c->num_sets - 1)];
    for (int i = 0; i < n; i++) {
        if (set[i].line == line) return 1;
    }
    return 0;
}

/* demand_lookup: (found, fresh_prefetch) with lookup side effects */
static int cache_demand_lookup(NCache *c, int64_t line, int *fresh_prefetch) {
    int64_t s = line & (c->num_sets - 1);
    CLine *set = c->data + s * c->ways;
    int n = c->counts[s];
    for (int i = 0; i < n; i++) {
        if (set[i].line == line) {
            CLine e = set[i];
            memmove(set + i, set + i + 1, (size_t)(n - 1 - i) * sizeof(CLine));
            int fresh = e.prefetched && !e.referenced;
            if (fresh) c->used_prefetch_fills++;
            e.referenced = 1;
            set[n - 1] = e;
            *fresh_prefetch = fresh;
            return 1;
        }
    }
    *fresh_prefetch = 0;
    return 0;
}

/* Cache.lookup: hit? with LRU + reference side effects */
static int cache_lookup(NCache *c, int64_t line) {
    int fresh;
    return cache_demand_lookup(c, line, &fresh);
}

static void cache_fill(NCache *c, int64_t line, int prefetched) {
    int64_t s = line & (c->num_sets - 1);
    CLine *set = c->data + s * c->ways;
    int n = c->counts[s];
    for (int i = 0; i < n; i++) {
        if (set[i].line == line) {
            /* refresh LRU position; never downgrade flags */
            CLine e = set[i];
            memmove(set + i, set + i + 1, (size_t)(n - 1 - i) * sizeof(CLine));
            set[n - 1] = e;
            return;
        }
    }
    if (n >= c->ways) {
        CLine victim = set[0];
        if (victim.prefetched && !victim.referenced) c->unused_prefetch_evictions++;
        memmove(set, set + 1, (size_t)(n - 1) * sizeof(CLine));
        n--;
    }
    set[n].line = line;
    set[n].prefetched = (uint8_t)prefetched;
    set[n].referenced = 0;
    c->counts[s] = n + 1;
}

static int64_t cache_resident_unused(NCache *c) {
    int64_t total = 0;
    for (int64_t s = 0; s < c->num_sets; s++) {
        CLine *set = c->data + s * c->ways;
        int n = c->counts[s];
        for (int i = 0; i < n; i++) {
            if (set[i].prefetched && !set[i].referenced) total++;
        }
    }
    return total;
}

/* ------------------------------------------------------------------ */
/* two-level hierarchy */

/* access classes, in ACCESS_CLASS_ORDER */
#define AC_HIT_PREFETCHED 0
#define AC_SHORTER_WAIT 1
#define AC_NON_TIMELY 2
#define AC_MISS_NOT_PREFETCHED 3
#define AC_HIT_OLDER_DEMAND 4
#define AC_PREFETCH_NEVER_HIT 5

/* served-by codes */
#define SERVED_L1 0
#define SERVED_MSHR 1
#define SERVED_L2 2
#define SERVED_DRAM 3

typedef struct {
    int64_t line_bytes;
    int64_t l1_latency, l2_hit_latency, dram_fill_latency, service_interval;
    int64_t pf_reserve, backlog_depth;
    uint8_t prefetch_fill_l1;
    NCache l1, l2;
    Mshr l1m, l2m, pfb;
    FillHeap pending;
    int64_t *backlog;
    int backlog_len;
    int64_t dram_next_free;
    int64_t dram_fetches;
    Map predicted;          /* _predicted_not_issued */
    Log pred_log;
    int64_t prediction_window;
    int64_t access_index;
    int64_t l1_acc, l1_hit, l1_miss;
    int64_t l2_acc, l2_hit, l2_miss;
    int64_t prefetches_issued, prefetches_rejected_mshr, prefetches_redundant;
} Hier;

static int64_t hier_dram_completion(Hier *h, int64_t now, int64_t base_latency) {
    int64_t start = h->dram_next_free;
    if (now > start) start = now;
    h->dram_next_free = start + h->service_interval;
    h->dram_fetches++;
    return start + base_latency;
}

static void hier_note_unissued(Hier *h, int64_t line) {
    int64_t index = h->access_index;
    map_set(&h->predicted, line, index);
    log_push(&h->pred_log, index, line);
    int64_t cutoff = index - h->prediction_window;
    while (h->pred_log.len && h->pred_log.idx[h->pred_log.head] < cutoff) {
        int64_t idx, ln;
        log_pop(&h->pred_log, &idx, &ln);
        if (map_get(&h->predicted, ln, -1) == idx) map_del(&h->predicted, ln);
    }
}

/* try_issue_prefetch result codes */
#define TRY_NONE 0
#define TRY_ISSUED 1
#define TRY_RESIDENT_L2 2

static int hier_try_issue(Hier *h, int64_t line, int64_t now) {
    if (mshr_available(&h->pfb, now) <= 0) return TRY_NONE;
    int64_t completes_at;
    uint8_t fill_l2;
    if (cache_contains(&h->l2, line)) {
        if (!h->prefetch_fill_l1) {
            h->prefetches_redundant++;
            return TRY_RESIDENT_L2;
        }
        cache_lookup(&h->l2, line);
        completes_at = now + h->l2_hit_latency;
        fill_l2 = 0;
    } else {
        if (mshr_available(&h->l2m, now) <= 0) return TRY_NONE;
        completes_at = hier_dram_completion(h, now, h->dram_fill_latency);
        fill_l2 = 1;
        mshr_allocate(&h->l2m, line, now, completes_at);
    }
    mshr_allocate(&h->pfb, line, now, completes_at);
    fheap_push(&h->pending, (Fill){completes_at, line, 1, fill_l2});
    h->prefetches_issued++;
    return TRY_ISSUED;
}

static void hier_drain_backlog(Hier *h, int64_t now) {
    while (h->backlog_len && mshr_available(&h->pfb, now) > 0) {
        int64_t line = h->backlog[0];
        if (cache_contains(&h->l1, line)
            || mshr_lookup(&h->pfb, line, now) >= 0
            || mshr_lookup(&h->l1m, line, now) >= 0) {
            memmove(h->backlog, h->backlog + 1, (size_t)(h->backlog_len - 1) * sizeof(int64_t));
            h->backlog_len--;
            continue;
        }
        if (hier_try_issue(h, line, now) == TRY_NONE) break;
        memmove(h->backlog, h->backlog + 1, (size_t)(h->backlog_len - 1) * sizeof(int64_t));
        h->backlog_len--;
    }
}

static void hier_apply_fills(Hier *h, int64_t now) {
    if (h->pending.len && h->pending.a[0].t <= now) {
        while (h->pending.len && h->pending.a[0].t <= now) {
            Fill f = fheap_pop(&h->pending);
            if (f.fill_l2) cache_fill(&h->l2, f.line, f.prefetched);
            if (!f.prefetched || h->prefetch_fill_l1) cache_fill(&h->l1, f.line, f.prefetched);
        }
    }
    if (h->backlog_len) hier_drain_backlog(h, now);
}

/* demand access; fills the latency / l1_hit / served / ac out-params */
static void hier_demand_access(Hier *h, int64_t line, int64_t now,
                               int64_t *latency, int *l1_hit, int *served, int *ac) {
    if ((h->pending.len && h->pending.a[0].t <= now) || h->backlog_len)
        hier_apply_fills(h, now);
    h->access_index++;
    int64_t l1_latency = h->l1_latency;

    int fresh;
    if (cache_demand_lookup(&h->l1, line, &fresh)) {
        h->l1_acc++; h->l1_hit++;
        *latency = l1_latency;
        *l1_hit = 1;
        *served = SERVED_L1;
        *ac = fresh ? AC_HIT_PREFETCHED : AC_HIT_OLDER_DEMAND;
        return;
    }
    h->l1_acc++; h->l1_miss++;
    *l1_hit = 0;

    int64_t pf_inflight = mshr_lookup(&h->pfb, line, now);
    if (pf_inflight >= 0) {
        int64_t lat = pf_inflight - now;
        if (lat < l1_latency) lat = l1_latency;
        *latency = lat;
        *served = SERVED_MSHR;
        *ac = AC_SHORTER_WAIT;
        return;
    }

    int64_t inflight = mshr_lookup(&h->l1m, line, now);
    if (inflight >= 0) {
        mshr_allocate(&h->l1m, line, now, inflight);  /* secondary-miss merge */
        int64_t lat = inflight - now;
        if (lat < l1_latency) lat = l1_latency;
        *latency = lat;
        *served = SERVED_MSHR;
        *ac = AC_HIT_OLDER_DEMAND;
        return;
    }

    int l2_hit = cache_lookup(&h->l2, line);
    h->l2_acc++;
    if (l2_hit) h->l2_hit++; else h->l2_miss++;

    int64_t issue_at = now;
    if (mshr_available(&h->l1m, now) == 0) {
        int64_t earliest = mshr_earliest(&h->l1m, now);
        if (earliest > issue_at) issue_at = earliest;
    }

    int64_t completes_at;
    if (l2_hit) {
        completes_at = issue_at + h->l2_hit_latency;
        *served = SERVED_L2;
    } else {
        int64_t dram_fill = h->dram_fill_latency;
        completes_at = hier_dram_completion(h, now, dram_fill);
        int64_t floor = issue_at + dram_fill;
        if (floor > completes_at) completes_at = floor;
        *served = SERVED_DRAM;
    }
    *latency = completes_at - now;

    mshr_allocate(&h->l1m, line, issue_at, completes_at);
    if (!l2_hit) mshr_allocate(&h->l2m, line, issue_at, completes_at);
    fheap_push(&h->pending, (Fill){completes_at, line, 0, (uint8_t)!l2_hit});

    int64_t idx = map_get(&h->predicted, line, -1);
    if (idx >= 0 && h->access_index - idx <= h->prediction_window)
        *ac = AC_NON_TIMELY;
    else
        *ac = AC_MISS_NOT_PREFETCHED;
}

/* prefetch of addr at now; returns the outcome's issued flag */
static int hier_prefetch(Hier *h, int64_t addr, int64_t now) {
    if ((h->pending.len && h->pending.a[0].t <= now) || h->backlog_len)
        hier_apply_fills(h, now);
    int64_t line = addr / h->line_bytes;
    int64_t reserve = h->pf_reserve;

    if (cache_contains(&h->l1, line)) {
        h->prefetches_redundant++;
        return 0;  /* resident */
    }
    if (mshr_lookup(&h->pfb, line, now) >= 0 || mshr_lookup(&h->l1m, line, now) >= 0) {
        h->prefetches_redundant++;
        return 0;  /* in-flight */
    }
    for (int i = 0; i < h->backlog_len; i++) {
        if (h->backlog[i] == line) {
            h->prefetches_redundant++;
            return 0;  /* queued-already */
        }
    }
    if (mshr_available(&h->pfb, now) > reserve) {
        int r = hier_try_issue(h, line, now);
        if (r == TRY_ISSUED) return 1;
        if (r == TRY_RESIDENT_L2) return 0;
    }
    if (h->backlog_len < h->backlog_depth) {
        h->backlog[h->backlog_len++] = line;
        hier_note_unissued(h, line);
        return 1;  /* queued: PrefetchOutcome(True, "queued") */
    }
    h->prefetches_rejected_mshr++;
    return 0;  /* mshr-pressure */
}

/* ------------------------------------------------------------------ */
/* interval core model */

typedef struct {
    double cursor, last_completion, max_completion, rob_floor;
    int64_t inst_pos;
    int64_t issue_width, rob_size, lq_size;
    double *lq;
    int lq_head, lq_len;
    double *rob_c;
    int64_t *rob_i;
    size_t rob_head, rob_len, rob_cap;  /* ring; cap power of two */
    int64_t stall_cycles, instructions, memory_accesses, cycles;
} Core;

static int core_init(Core *c, int64_t issue_width, int64_t rob_size, int64_t lq_size) {
    memset(c, 0, sizeof(*c));
    c->issue_width = issue_width;
    c->rob_size = rob_size;
    c->lq_size = lq_size;
    c->lq = (double *)malloc((size_t)lq_size * sizeof(double));
    c->rob_cap = 256;
    while (c->rob_cap < (size_t)rob_size + 2) c->rob_cap *= 2;
    c->rob_c = (double *)malloc(c->rob_cap * sizeof(double));
    c->rob_i = (int64_t *)malloc(c->rob_cap * sizeof(int64_t));
    return c->lq && c->rob_c && c->rob_i;
}

static void core_free(Core *c) {
    free(c->lq); free(c->rob_c); free(c->rob_i);
    c->lq = 0; c->rob_c = 0; c->rob_i = 0;
}

static int core_rob_push(Core *c, double completion, int64_t inst_pos) {
    if (c->rob_len == c->rob_cap) {
        size_t ncap = c->rob_cap * 2;
        double *nc = (double *)malloc(ncap * sizeof(double));
        int64_t *ni = (int64_t *)malloc(ncap * sizeof(int64_t));
        if (!nc || !ni) { free(nc); free(ni); return 0; }
        for (size_t i = 0; i < c->rob_len; i++) {
            size_t s = (c->rob_head + i) & (c->rob_cap - 1);
            nc[i] = c->rob_c[s]; ni[i] = c->rob_i[s];
        }
        free(c->rob_c); free(c->rob_i);
        c->rob_c = nc; c->rob_i = ni; c->rob_cap = ncap; c->rob_head = 0;
    }
    size_t s = (c->rob_head + c->rob_len) & (c->rob_cap - 1);
    c->rob_c[s] = completion; c->rob_i[s] = inst_pos;
    c->rob_len++;
    return 1;
}
"""

SOURCE_PF = r"""
/* ------------------------------------------------------------------ */
/* prefetchers.  Request buffer: every family emits at most 64 requests
 * per access (degree <= 64, SMS lines_per_region <= 64 — enforced on
 * the Python side before a config is handed to the kernel). */

#define MAX_REQS 64

#define PF_NONE 0
#define PF_STRIDE 1
#define PF_GHB 2
#define PF_SMS 3
#define PF_MARKOV 4

/* ---- stride: direct-mapped RPT with 2-bit confidence ---- */

typedef struct {
    uint64_t tag;
    int64_t last_addr;
    int64_t stride;
    int state;
    uint8_t used;
} SEntry;

typedef struct {
    int64_t table_entries, degree, line_bytes;
    uint8_t train_on_miss_only;
    SEntry *table;
} Stride;

/* ---- GHB with delta correlation; ordered index table (insertion
 * order, assignment keeps position, FIFO eviction of the oldest key
 * when the table overflows — exactly dict semantics) ---- */

typedef struct {
    int64_t key;
    int64_t val;
    int prev, next;
    uint8_t used;
} OmNode;

typedef struct {
    OmNode *nodes;
    int cap;         /* number of node slots */
    int head, tail;  /* insertion-order list, -1 when empty */
    int free_head;   /* free list via .next */
    int count;
    Map slots;       /* key -> node index */
} OrderedMap;

static int om_init(OrderedMap *o, int cap) {
    o->cap = cap;
    o->head = o->tail = -1;
    o->count = 0;
    o->nodes = (OmNode *)calloc((size_t)cap, sizeof(OmNode));
    if (!o->nodes) return 0;
    for (int i = 0; i < cap; i++) o->nodes[i].next = i + 1 < cap ? i + 1 : -1;
    o->free_head = 0;
    size_t mcap = 16;
    while (mcap < (size_t)cap * 2) mcap *= 2;
    return map_init(&o->slots, mcap);
}

static void om_free(OrderedMap *o) {
    free(o->nodes); o->nodes = 0;
    map_free(&o->slots);
}

static int om_node_of(OrderedMap *o, int64_t key) {
    return (int)map_get(&o->slots, key, -1);
}

/* dict assignment: update in place when present, else append */
static void om_set(OrderedMap *o, int64_t key, int64_t val) {
    int n = om_node_of(o, key);
    if (n >= 0) { o->nodes[n].val = val; return; }
    n = o->free_head;
    o->free_head = o->nodes[n].next;
    OmNode *node = &o->nodes[n];
    node->key = key; node->val = val; node->used = 1;
    node->prev = o->tail; node->next = -1;
    if (o->tail >= 0) o->nodes[o->tail].next = n; else o->head = n;
    o->tail = n;
    o->count++;
    map_set(&o->slots, key, n);
}

static void om_unlink(OrderedMap *o, int n) {
    OmNode *node = &o->nodes[n];
    if (node->prev >= 0) o->nodes[node->prev].next = node->next; else o->head = node->next;
    if (node->next >= 0) o->nodes[node->next].prev = node->prev; else o->tail = node->prev;
    node->used = 0;
    node->next = o->free_head;
    o->free_head = n;
    o->count--;
    map_del(&o->slots, node->key);
}

static void om_evict_oldest(OrderedMap *o) {
    if (o->head >= 0) om_unlink(o, o->head);
}

typedef struct {
    int64_t ghb_entries, index_entries, match_length, degree, max_walk, line_bytes;
    uint8_t localization_pc;
    uint8_t train_on_miss_only;
    int64_t *buf_addr;
    int64_t *buf_link;
    uint8_t *buf_used;
    int64_t next_seq;
    OrderedMap index;
    int64_t *stream;   /* scratch, max_walk */
    int64_t *deltas;   /* scratch, max_walk */
} Ghb;

/* ---- SMS: insertion-ordered filter/AGT arrays + PHT ---- */

typedef struct {
    int64_t region;
    uint64_t trigger_pc;
    int64_t trigger_offset;
    uint64_t pattern;
    int64_t last_touch;
} Gen;

typedef struct {
    int64_t region_bytes, line_bytes, filter_entries, agt_entries, pht_entries;
    int64_t timeout, lines_per_region;
    Gen *filt;
    int filt_len;
    Gen *agt;
    int agt_len;
    uint64_t *pht;     /* 0 == absent: committed patterns have >= 2 bits */
    int64_t *stale;    /* scratch */
} Sms;

static int64_t sms_pht_index(Sms *s, uint64_t pc, int64_t offset) {
    unsigned __int128 x =
        (unsigned __int128)pc * 0x9E3779B1ULL + (unsigned __int128)(uint64_t)offset;
    return (int64_t)(uint64_t)(x % (unsigned __int128)(uint64_t)s->pht_entries);
}

static void sms_end_generation(Sms *s, Gen *g) {
    if (__builtin_popcountll(g->pattern) >= 2)
        s->pht[sms_pht_index(s, g->trigger_pc, g->trigger_offset)] = g->pattern;
}

static int sms_find(Gen *arr, int len, int64_t region) {
    for (int i = 0; i < len; i++) {
        if (arr[i].region == region) return i;
    }
    return -1;
}

static Gen sms_remove(Gen *arr, int *len, int i) {
    Gen g = arr[i];
    memmove(arr + i, arr + i + 1, (size_t)(*len - 1 - i) * sizeof(Gen));
    (*len)--;
    return g;
}

static void sms_expire_stale(Sms *s, int64_t now_index) {
    int nstale = 0;
    for (int i = 0; i < s->agt_len; i++) {
        if (now_index - s->agt[i].last_touch > s->timeout) s->stale[nstale++] = s->agt[i].region;
    }
    for (int k = 0; k < nstale; k++) {
        int i = sms_find(s->agt, s->agt_len, s->stale[k]);
        Gen g = sms_remove(s->agt, &s->agt_len, i);
        sms_end_generation(s, &g);
    }
    nstale = 0;
    for (int i = 0; i < s->filt_len; i++) {
        if (now_index - s->filt[i].last_touch > s->timeout) s->stale[nstale++] = s->filt[i].region;
    }
    for (int k = 0; k < nstale; k++) {
        int i = sms_find(s->filt, s->filt_len, s->stale[k]);
        sms_remove(s->filt, &s->filt_len, i);
    }
}

/* ---- Markov: LRU-ordered state table with per-state successor lists ---- */

typedef struct {
    int64_t table_entries, max_succ, degree, line_bytes;
    uint8_t train_on_miss_only;
    OrderedMap table;    /* line -> slot in succ arrays (node index) */
    int64_t *succ_line;  /* cap * max_succ */
    int64_t *succ_count;
    int *nsucc;          /* per node */
    int64_t last_line;
    uint8_t has_last;
} Markov;

static void markov_move_to_end(OrderedMap *o, int n) {
    if (o->tail == n) return;
    OmNode *node = &o->nodes[n];
    if (node->prev >= 0) o->nodes[node->prev].next = node->next; else o->head = node->next;
    if (node->next >= 0) o->nodes[node->next].prev = node->prev;
    node->prev = o->tail;
    node->next = -1;
    o->nodes[o->tail].next = n;
    o->tail = n;
}

/* ---- dispatch ---- */

typedef struct RpPf {
    int kind;
    Stride stride;
    Ghb ghb;
    Sms sms;
    Markov markov;
} RpPf;

static int pf_on_access(RpPf *pf, int64_t index, uint64_t uaddr, uint64_t pc,
                        int primary_miss, int64_t *reqs) {
    int n = 0;
    switch (pf->kind) {
    case PF_NONE:
        break;
    case PF_STRIDE: {
        Stride *st = &pf->stride;
        if (st->train_on_miss_only && !primary_miss) break;
        int64_t addr = (int64_t)(uaddr / (uint64_t)st->line_bytes) * st->line_bytes;
        int64_t idx = (int64_t)(pc % (uint64_t)st->table_entries);
        uint64_t tag = pc / (uint64_t)st->table_entries;
        SEntry *e = &st->table[idx];
        if (!e->used || e->tag != tag) {
            e->tag = tag; e->last_addr = addr; e->stride = 0; e->state = 0; e->used = 1;
            break;
        }
        int64_t stride = addr - e->last_addr;
        if (stride == e->stride && stride != 0) {
            e->state = e->state + 1 < 2 ? e->state + 1 : 2;
        } else if (stride != 0) {
            e->stride = stride;
            e->state = 1;
        } else {
            e->state = 0;
        }
        e->last_addr = addr;
        if (e->state < 2 || e->stride == 0) break;
        for (int64_t k = 1; k <= st->degree; k++) {
            int64_t target = addr + e->stride * k;
            if (target > 0) reqs[n++] = target;
        }
        break;
    }
    case PF_GHB: {
        Ghb *g = &pf->ghb;
        if (g->train_on_miss_only && !primary_miss) break;
        int64_t addr = (int64_t)(uaddr / (uint64_t)g->line_bytes) * g->line_bytes;
        int64_t key = g->localization_pc ? (int64_t)pc : 0;
        int node = om_node_of(&g->index, key);
        int64_t prev_seq = node >= 0 ? g->index.nodes[node].val : -1;
        if (prev_seq < 0 || prev_seq < g->next_seq - g->ghb_entries
            || !g->buf_used[prev_seq % g->ghb_entries])
            prev_seq = -1;
        int64_t seq = g->next_seq;
        int64_t slot = seq % g->ghb_entries;
        g->buf_addr[slot] = addr;
        g->buf_link[slot] = prev_seq;
        g->buf_used[slot] = 1;
        om_set(&g->index, key, seq);
        if (g->index.count > g->index_entries) om_evict_oldest(&g->index);
        g->next_seq++;

        int slen = 0;
        int64_t s = seq;
        int64_t oldest_valid = g->next_seq - g->ghb_entries;
        if (oldest_valid < 0) oldest_valid = 0;
        while (s >= oldest_valid && slen < g->max_walk) {
            int64_t bs = s % g->ghb_entries;
            if (!g->buf_used[bs]) break;
            g->stream[slen++] = g->buf_addr[bs];
            s = g->buf_link[bs];
        }
        int64_t m = g->match_length;
        if (slen < m + 2) break;
        int nd = slen - 1;
        for (int i = 0; i < nd; i++) g->deltas[i] = g->stream[i] - g->stream[i + 1];
        int64_t match_at = -1;
        for (int start = 1; start <= nd - (int)m; start++) {
            int ok = 1;
            for (int j = 0; j < (int)m; j++) {
                if (g->deltas[start + j] != g->deltas[j]) { ok = 0; break; }
            }
            if (ok) { match_at = start; break; }
        }
        if (match_at <= 0) break;
        int64_t target = addr;
        for (int64_t step = 1; step <= g->degree; step++) {
            int64_t idx = match_at - step;
            int64_t delta;
            if (idx >= 0) delta = g->deltas[idx];
            else delta = g->deltas[((idx % m) + m) % m];  /* pattern[idx % m], Python modulo */
            target += delta;
            if (target > 0) reqs[n++] = target;
        }
        break;
    }
    case PF_SMS: {
        Sms *s = &pf->sms;
        int64_t region = (int64_t)(uaddr / (uint64_t)s->region_bytes);
        int64_t offset = (int64_t)((uaddr % (uint64_t)s->region_bytes) / (uint64_t)s->line_bytes);
        sms_expire_stale(s, index);

        int i = sms_find(s->agt, s->agt_len, region);
        if (i >= 0) {
            Gen g = s->agt[i];
            g.pattern |= 1ULL << offset;
            g.last_touch = index;
            sms_remove(s->agt, &s->agt_len, i);  /* move_to_end */
            s->agt[s->agt_len++] = g;
            break;
        }
        i = sms_find(s->filt, s->filt_len, region);
        if (i >= 0) {
            s->filt[i].last_touch = index;
            if (!(s->filt[i].pattern & (1ULL << offset))) {
                Gen g = sms_remove(s->filt, &s->filt_len, i);
                g.pattern |= 1ULL << offset;
                s->agt[s->agt_len++] = g;
                if (s->agt_len > s->agt_entries) {
                    Gen ev = sms_remove(s->agt, &s->agt_len, 0);
                    sms_end_generation(s, &ev);
                }
            }
            break;
        }
        Gen ng;
        ng.region = region;
        ng.trigger_pc = pc;
        ng.trigger_offset = offset;
        ng.pattern = 1ULL << offset;
        ng.last_touch = index;
        s->filt[s->filt_len++] = ng;
        if (s->filt_len > s->filter_entries) sms_remove(s->filt, &s->filt_len, 0);

        uint64_t pattern = s->pht[sms_pht_index(s, pc, offset)];
        if (pattern == 0) break;
        int64_t base = region * s->region_bytes;
        for (int64_t line = 0; line < s->lines_per_region; line++) {
            if ((pattern & (1ULL << line)) && line != offset)
                reqs[n++] = base + line * s->line_bytes;
        }
        break;
    }
    case PF_MARKOV: {
        Markov *mk = &pf->markov;
        if (mk->train_on_miss_only && !primary_miss) break;
        int64_t line = (int64_t)(uaddr / (uint64_t)mk->line_bytes);
        if (mk->has_last && mk->last_line != line) {
            int node = om_node_of(&mk->table, mk->last_line);
            if (node < 0) {
                om_set(&mk->table, mk->last_line, 0);
                node = om_node_of(&mk->table, mk->last_line);
                mk->nsucc[node] = 0;
                if (mk->table.count > mk->table_entries) om_evict_oldest(&mk->table);
            } else {
                markov_move_to_end(&mk->table, node);
            }
            /* observe(line): count bump, or evict the first-minimal successor */
            int64_t *sl = mk->succ_line + (int64_t)node * mk->max_succ;
            int64_t *sc = mk->succ_count + (int64_t)node * mk->max_succ;
            int ns = mk->nsucc[node];
            int found = -1;
            for (int j = 0; j < ns; j++) {
                if (sl[j] == line) { found = j; break; }
            }
            if (found >= 0) {
                sc[found]++;
            } else {
                if (ns >= mk->max_succ) {
                    int victim = 0;
                    for (int j = 1; j < ns; j++) {
                        if (sc[j] < sc[victim]) victim = j;
                    }
                    memmove(sl + victim, sl + victim + 1, (size_t)(ns - 1 - victim) * sizeof(int64_t));
                    memmove(sc + victim, sc + victim + 1, (size_t)(ns - 1 - victim) * sizeof(int64_t));
                    ns--;
                }
                sl[ns] = line;
                sc[ns] = 1;
                ns++;
                mk->nsucc[node] = ns;
            }
        }
        mk->last_line = line;
        mk->has_last = 1;

        int node = om_node_of(&mk->table, line);
        if (node < 0) break;
        markov_move_to_end(&mk->table, node);
        int64_t *sl = mk->succ_line + (int64_t)node * mk->max_succ;
        int64_t *sc = mk->succ_count + (int64_t)node * mk->max_succ;
        int ns = mk->nsucc[node];
        /* stable sort desc by count == repeatedly take the earliest
         * not-yet-taken successor with the strictly largest count */
        uint8_t taken[MAX_REQS];
        memset(taken, 0, sizeof(taken));
        for (int64_t d = 0; d < mk->degree && d < ns; d++) {
            int best = -1;
            for (int j = 0; j < ns; j++) {
                if (!taken[j] && (best < 0 || sc[j] > sc[best])) best = j;
            }
            taken[best] = 1;
            reqs[n++] = sl[best] * mk->line_bytes;
        }
        break;
    }
    }
    return n;
}
"""

SOURCE_RUN = r"""
/* ------------------------------------------------------------------ */
/* simulator API: one RpSim = one Simulator (hierarchy + core + the
 * per-run prediction-depth bookkeeping), one RpPf = one prefetcher.
 * rp_run is Simulator.run without warmup; the adapter composes warmup
 * as run(prefix) + rp_reset_stats + run(remainder), like the Python. */

typedef struct RpSim {
    Hier hier;
    Core core;
    int64_t cycle_base;
    Map predicted_at;   /* per-run: cleared at every rp_run entry */
    Log pred_log;
} RpSim;

void rp_sim_free(RpSim *s);
void rp_pf_free(RpPf *p);

RpSim *rp_sim_new(const int64_t *hc, const int64_t *cc) {
    RpSim *s = (RpSim *)calloc(1, sizeof(RpSim));
    if (!s) return 0;
    Hier *h = &s->hier;
    int64_t line_bytes = hc[10];
    h->line_bytes = line_bytes;
    h->l1_latency = hc[2];
    h->l2_hit_latency = hc[2] + hc[6];
    h->dram_fill_latency = hc[2] + hc[6] + hc[8];
    h->service_interval = hc[9];
    h->pf_reserve = hc[12];
    h->backlog_depth = hc[13];
    h->prefetch_fill_l1 = (uint8_t)hc[14];
    int ok = 1;
    ok &= cache_init(&h->l1, hc[0] / (hc[1] * line_bytes), (int)hc[1]);
    ok &= cache_init(&h->l2, hc[4] / (hc[5] * line_bytes), (int)hc[5]);
    ok &= mshr_init(&h->l1m, (int)hc[3]);
    ok &= mshr_init(&h->l2m, (int)hc[7]);
    ok &= mshr_init(&h->pfb, (int)hc[11]);
    ok &= fheap_init(&h->pending, 64);
    h->backlog = (int64_t *)malloc((size_t)(hc[13] > 0 ? hc[13] : 1) * sizeof(int64_t));
    ok &= h->backlog != 0;
    ok &= map_init(&h->predicted, 1024);
    ok &= log_init(&h->pred_log, 512);
    h->prediction_window = 256;
    ok &= core_init(&s->core, cc[0], cc[1], cc[2]);
    ok &= map_init(&s->predicted_at, 1024);
    ok &= log_init(&s->pred_log, 512);
    if (!ok) { rp_sim_free(s); return 0; }
    return s;
}

void rp_sim_free(RpSim *s) {
    if (!s) return;
    Hier *h = &s->hier;
    cache_free(&h->l1); cache_free(&h->l2);
    mshr_free(&h->l1m); mshr_free(&h->l2m); mshr_free(&h->pfb);
    fheap_free(&h->pending);
    free(h->backlog); h->backlog = 0;
    map_free(&h->predicted);
    log_free(&h->pred_log);
    core_free(&s->core);
    map_free(&s->predicted_at);
    log_free(&s->pred_log);
    free(s);
}

/* Simulator._reset_stats: zero the counters, keep the warm state */
void rp_reset_stats(RpSim *s) {
    Core *c = &s->core;
    double m = c->cursor > c->max_completion ? c->cursor : c->max_completion;
    s->cycle_base = (int64_t)m;   /* finalize().cycles */
    Hier *h = &s->hier;
    h->l1_acc = h->l1_hit = h->l1_miss = 0;
    h->l2_acc = h->l2_hit = h->l2_miss = 0;
    h->prefetches_issued = 0;
    h->prefetches_rejected_mshr = 0;
    h->prefetches_redundant = 0;
    h->l1.unused_prefetch_evictions = 0;
    h->l1.used_prefetch_fills = 0;
    c->stall_cycles = c->instructions = c->memory_accesses = c->cycles = 0;
}

RpPf *rp_pf_new(int kind, const int64_t *cfg) {
    RpPf *p = (RpPf *)calloc(1, sizeof(RpPf));
    if (!p) return 0;
    p->kind = kind;
    int ok = 1;
    switch (kind) {
    case PF_NONE:
        break;
    case PF_STRIDE: {
        Stride *st = &p->stride;
        st->table_entries = cfg[0];
        st->degree = cfg[1];
        st->line_bytes = cfg[2];
        st->train_on_miss_only = (uint8_t)cfg[3];
        st->table = (SEntry *)calloc((size_t)st->table_entries, sizeof(SEntry));
        ok &= st->table != 0;
        break;
    }
    case PF_GHB: {
        Ghb *g = &p->ghb;
        g->ghb_entries = cfg[0];
        g->index_entries = cfg[1];
        g->match_length = cfg[2];
        g->degree = cfg[3];
        g->max_walk = cfg[4];
        g->localization_pc = (uint8_t)cfg[5];
        g->line_bytes = cfg[6];
        g->train_on_miss_only = (uint8_t)cfg[7];
        g->buf_addr = (int64_t *)calloc((size_t)g->ghb_entries, sizeof(int64_t));
        g->buf_link = (int64_t *)calloc((size_t)g->ghb_entries, sizeof(int64_t));
        g->buf_used = (uint8_t *)calloc((size_t)g->ghb_entries, 1);
        g->stream = (int64_t *)malloc((size_t)g->max_walk * sizeof(int64_t));
        g->deltas = (int64_t *)malloc((size_t)g->max_walk * sizeof(int64_t));
        ok &= g->buf_addr && g->buf_link && g->buf_used && g->stream && g->deltas;
        ok &= om_init(&g->index, (int)g->index_entries + 1);
        break;
    }
    case PF_SMS: {
        Sms *m = &p->sms;
        m->region_bytes = cfg[0];
        m->line_bytes = cfg[1];
        m->filter_entries = cfg[2];
        m->agt_entries = cfg[3];
        m->pht_entries = cfg[4];
        m->timeout = cfg[5];
        m->lines_per_region = m->region_bytes / m->line_bytes;
        m->filt = (Gen *)calloc((size_t)m->filter_entries + 1, sizeof(Gen));
        m->agt = (Gen *)calloc((size_t)m->agt_entries + 1, sizeof(Gen));
        m->pht = (uint64_t *)calloc((size_t)m->pht_entries, sizeof(uint64_t));
        int64_t scratch = (m->filter_entries > m->agt_entries
                           ? m->filter_entries : m->agt_entries) + 1;
        m->stale = (int64_t *)malloc((size_t)scratch * sizeof(int64_t));
        ok &= m->filt && m->agt && m->pht && m->stale;
        break;
    }
    case PF_MARKOV: {
        Markov *mk = &p->markov;
        mk->table_entries = cfg[0];
        mk->max_succ = cfg[1];
        mk->degree = cfg[2];
        mk->line_bytes = cfg[3];
        mk->train_on_miss_only = (uint8_t)cfg[4];
        ok &= om_init(&mk->table, (int)mk->table_entries + 1);
        size_t slots = (size_t)(mk->table_entries + 1) * (size_t)mk->max_succ;
        mk->succ_line = (int64_t *)calloc(slots, sizeof(int64_t));
        mk->succ_count = (int64_t *)calloc(slots, sizeof(int64_t));
        mk->nsucc = (int *)calloc((size_t)mk->table_entries + 1, sizeof(int));
        ok &= mk->succ_line && mk->succ_count && mk->nsucc;
        break;
    }
    default:
        ok = 0;
    }
    if (!ok) { rp_pf_free(p); return 0; }
    return p;
}

void rp_pf_free(RpPf *p) {
    if (!p) return;
    switch (p->kind) {
    case PF_STRIDE:
        free(p->stride.table);
        break;
    case PF_GHB:
        free(p->ghb.buf_addr); free(p->ghb.buf_link); free(p->ghb.buf_used);
        free(p->ghb.stream); free(p->ghb.deltas);
        om_free(&p->ghb.index);
        break;
    case PF_SMS:
        free(p->sms.filt); free(p->sms.agt); free(p->sms.pht); free(p->sms.stale);
        break;
    case PF_MARKOV:
        om_free(&p->markov.table);
        free(p->markov.succ_line); free(p->markov.succ_count); free(p->markov.nsucc);
        break;
    }
    free(p);
}

/* out-block layout (OUT_SLOTS int64s):
 *  0 instructions (cumulative core stat, as finalize() reports)
 *  1 cycles, already max(1, cycles - cycle_base)
 *  2..4  l1 accesses/hits/misses    5..7  l2 accesses/hits/misses
 *  8..13 class counts in ACCESS_CLASS_ORDER (wasted prefetches in 13)
 *  14 demand accesses   15 issued real   16 issued shadow
 *  17 rejected (mshr-pressure)   18 redundant
 *  19..147 hit-depth histogram, depth 0..128 */

#define DEPTH_CAP 128

int rp_run(RpSim *s, RpPf *pf, int64_t n, int64_t start_index,
           const uint64_t *addrs, const uint64_t *pcs,
           const uint64_t *lines, const uint32_t *inst_gaps,
           const uint8_t *flags, int64_t *out) {
    Hier *h = &s->hier;
    Core *c = &s->core;
    Map *predicted_at = &s->predicted_at;
    Log *plog = &s->pred_log;
    map_clear(predicted_at);
    log_clear(plog);

    int64_t depth_counts[DEPTH_CAP + 1];
    memset(depth_counts, 0, sizeof(depth_counts));
    int64_t class_counts[6];
    memset(class_counts, 0, sizeof(class_counts));
    int64_t issued_real = 0, issued_shadow = 0;
    int64_t line_bytes = h->line_bytes;
    int64_t reqs[MAX_REQS];

    /* core-model state in locals for the loop, written back after —
     * the same arithmetic, in the same order, as the interpreted loop */
    double cursor = c->cursor;
    double last_completion = c->last_completion;
    double max_completion = c->max_completion;
    double rob_floor = c->rob_floor;
    int64_t inst_pos = c->inst_pos;
    int64_t issue_width = c->issue_width;
    int64_t rob_size = c->rob_size;
    int64_t stall_cycles = 0, instructions = 0;

    for (int64_t k = 0; k < n; k++) {
        int64_t index = start_index + k;
        int64_t gap = (int64_t)inst_gaps[k];
        uint64_t uaddr = addrs[k];
        int depends = (flags[k] >> 1) & 1;

        /* --- CoreModel.issue_time --- */
        double issue_f = cursor + (double)(gap + 1) / (double)issue_width;
        if (depends && last_completion > issue_f) issue_f = last_completion;
        if (c->lq_len == (int)c->lq_size && c->lq[c->lq_head] > issue_f)
            issue_f = c->lq[c->lq_head];
        if (c->rob_len) {
            int64_t rob_horizon = inst_pos + gap + 1 - rob_size;
            while (c->rob_len && c->rob_i[c->rob_head] <= rob_horizon) {
                double completion = c->rob_c[c->rob_head];
                c->rob_head = (c->rob_head + 1) & (c->rob_cap - 1);
                c->rob_len--;
                if (completion > rob_floor) rob_floor = completion;
            }
        }
        if (rob_floor > issue_f) issue_f = rob_floor;
        int64_t issue = (int64_t)issue_f;

        /* --- Hierarchy.demand_access --- */
        int64_t latency;
        int l1_hit, served, ac;
        hier_demand_access(h, (int64_t)lines[k], issue, &latency, &l1_hit, &served, &ac);
        class_counts[ac]++;

        /* --- CoreModel.complete --- */
        double completion = (double)(issue + latency);
        int64_t insts = gap + 1;
        double stall = (double)issue - (cursor + (double)insts / (double)issue_width);
        if (stall > 0) stall_cycles += (int64_t)stall;
        cursor = (double)issue;
        inst_pos += insts;
        last_completion = completion;
        if (completion > max_completion) max_completion = completion;
        /* lq_ring.append (deque(maxlen=lq_size): drop oldest when full) */
        if (c->lq_len == (int)c->lq_size) {
            c->lq[c->lq_head] = completion;
            c->lq_head = (c->lq_head + 1) % (int)c->lq_size;
        } else {
            c->lq[(c->lq_head + c->lq_len) % (int)c->lq_size] = completion;
            c->lq_len++;
        }
        if (!core_rob_push(c, completion, inst_pos)) return -1;
        instructions += insts;

        /* hit-depth bookkeeping */
        int64_t line = (int64_t)lines[k];
        int64_t prev = map_pop(predicted_at, line, -1);
        if (prev >= 0) {
            int64_t depth = index - prev;
            if (depth <= DEPTH_CAP) depth_counts[depth]++;
        }

        /* --- prefetcher --- */
        int primary_miss = !l1_hit && served != SERVED_MSHR;
        int nreq = pf_on_access(pf, index, uaddr, pcs[k], primary_miss, reqs);
        for (int r = 0; r < nreq; r++) {
            int64_t req_addr = reqs[r];
            int64_t pf_line = req_addr / line_bytes;
            if (hier_prefetch(h, req_addr, issue)) {
                issued_real++;
            } else {
                hier_note_unissued(h, pf_line);
                issued_shadow++;
            }
            prev = map_get(predicted_at, pf_line, -1);
            if (prev < 0 || index - prev > DEPTH_CAP) {
                if (!map_set(predicted_at, pf_line, index)) return -1;
                if (!log_push(plog, index, pf_line)) return -1;
            }
        }
        int64_t cutoff = index - DEPTH_CAP;
        while (plog->len && plog->idx[plog->head] < cutoff) {
            int64_t i, ln;
            log_pop(plog, &i, &ln);
            if (map_get(predicted_at, ln, -1) == i) map_del(predicted_at, ln);
        }
    }

    /* write the core state back (Simulator.run's finally block) */
    c->cursor = cursor;
    c->last_completion = last_completion;
    c->max_completion = max_completion;
    c->inst_pos = inst_pos;
    c->rob_floor = rob_floor;
    c->stall_cycles += stall_cycles;
    c->instructions += instructions;
    c->memory_accesses += n;

    /* finalize + drain */
    double m = cursor > max_completion ? cursor : max_completion;
    int64_t cycles = (int64_t)m;
    c->cycles = cycles;
    hier_apply_fills(h, cycles + 10000);
    int64_t wasted = h->l1.unused_prefetch_evictions + cache_resident_unused(&h->l1);

    out[0] = c->instructions;
    int64_t net = cycles - s->cycle_base;
    out[1] = net > 1 ? net : 1;
    out[2] = h->l1_acc; out[3] = h->l1_hit; out[4] = h->l1_miss;
    out[5] = h->l2_acc; out[6] = h->l2_hit; out[7] = h->l2_miss;
    out[8] = class_counts[AC_HIT_PREFETCHED];
    out[9] = class_counts[AC_SHORTER_WAIT];
    out[10] = class_counts[AC_NON_TIMELY];
    out[11] = class_counts[AC_MISS_NOT_PREFETCHED];
    out[12] = class_counts[AC_HIT_OLDER_DEMAND];
    out[13] = wasted;
    out[14] = n;
    out[15] = issued_real;
    out[16] = issued_shadow;
    out[17] = h->prefetches_rejected_mshr;
    out[18] = h->prefetches_redundant;
    for (int d = 0; d <= DEPTH_CAP; d++) out[19 + d] = depth_counts[d];
    return 0;
}
"""

#: full translation unit handed to cffi's ``set_source``
SOURCE = SOURCE_RUNTIME + SOURCE_MEMORY + SOURCE_PF + SOURCE_RUN
