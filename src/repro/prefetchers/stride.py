"""PC-indexed stride prefetcher (Fu, Patel & Janssens, MICRO 1992).

A reference-prediction table keyed by the load PC tracks the last address
and stride per load site with a two-bit confidence state machine
(initial → transient → steady).  In the steady state it prefetches
``degree`` strides ahead.  The paper evaluated this prefetcher and found
it significantly weaker than the others (Section 7), which our Figure 12
reproduction confirms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest


@dataclass(slots=True)
class StrideConfig:
    table_entries: int = 512
    degree: int = 3
    line_bytes: int = 64
    #: classic placement: the prefetcher observes the L1 miss stream, so
    #: unit-stride loops appear as clean one-line strides
    train_on_miss_only: bool = True


@dataclass(slots=True)
class _RPTEntry:
    tag: int
    last_addr: int
    stride: int = 0
    state: int = 0  # 0=initial, 1=transient, 2=steady


class StridePrefetcher(Prefetcher):
    """Classic reference-prediction-table stride prefetcher."""

    name = "stride"

    __slots__ = ("config", "_table")

    def __init__(self, config: StrideConfig | None = None):
        self.config = config or StrideConfig()
        self._table: dict[int, _RPTEntry] = {}

    def _index(self, pc: int) -> tuple[int, int]:
        idx = pc % self.config.table_entries
        tag = pc // self.config.table_entries
        return idx, tag

    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        cfg = self.config
        if cfg.train_on_miss_only and not access.primary_miss:
            return []
        addr = (access.addr // cfg.line_bytes) * cfg.line_bytes
        idx, tag = self._index(access.pc)
        entry = self._table.get(idx)

        if entry is None or entry.tag != tag:
            self._table[idx] = _RPTEntry(tag=tag, last_addr=addr)
            return []

        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            entry.state = min(2, entry.state + 1)
        elif stride != 0:
            # new stride: transient — one confirmation away from steady
            entry.stride = stride
            entry.state = 1
        else:
            entry.state = 0
        entry.last_addr = addr

        if entry.state < 2 or entry.stride == 0:
            return []
        requests = []
        for k in range(1, cfg.degree + 1):
            target = addr + entry.stride * k
            if target > 0:
                requests.append(PrefetchRequest(addr=target))
        return requests

    def storage_bits(self) -> int:
        # tag (32) + last addr (48) + stride (16) + state (2) per entry
        return self.config.table_entries * (32 + 48 + 16 + 2)

    def reset(self) -> None:
        self._table.clear()

    def is_pristine(self) -> bool:
        return not self._table
