"""Tests for trace serialization."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.hints import RefForm, SemanticHints
from repro.workloads.linked_list import ListTraversalProgram
from repro.workloads.serialize import (
    access_from_dict,
    access_to_dict,
    dump_trace,
    iter_trace,
    load_trace,
    save_trace,
)
from repro.workloads.trace import MemoryAccess


def sample_access(**overrides) -> MemoryAccess:
    defaults = dict(
        addr=0x1234,
        pc=0x400010,
        is_load=False,
        inst_gap=5,
        depends_on_prev=True,
        branches=(True, False),
        reg_value=42,
        value=0x9000,
        hints=SemanticHints(type_id=3, link_offset=16, ref_form=RefForm.ARROW),
    )
    defaults.update(overrides)
    return MemoryAccess(**defaults)


class TestRoundTrip:
    def test_full_record(self):
        access = sample_access()
        assert access_from_dict(access_to_dict(access)) == access

    def test_minimal_record(self):
        access = MemoryAccess(addr=0x10, pc=0x20)
        assert access_from_dict(access_to_dict(access)) == access

    def test_defaults_omitted(self):
        data = access_to_dict(MemoryAccess(addr=0x10, pc=0x20))
        assert set(data) == {"a", "p"}

    @settings(max_examples=60)
    @given(
        addr=st.integers(min_value=1, max_value=1 << 48),
        pc=st.integers(min_value=1, max_value=1 << 32),
        gap=st.integers(min_value=0, max_value=100),
        is_load=st.booleans(),
        depends=st.booleans(),
        branches=st.lists(st.booleans(), max_size=4),
        value=st.integers(min_value=0, max_value=1 << 48),
    )
    def test_round_trip_property(self, addr, pc, gap, is_load, depends, branches, value):
        access = MemoryAccess(
            addr=addr,
            pc=pc,
            is_load=is_load,
            inst_gap=gap,
            depends_on_prev=depends,
            branches=tuple(branches),
            value=value,
        )
        assert access_from_dict(access_to_dict(access)) == access


class TestStreaming:
    def test_dump_then_iter(self):
        trace = [sample_access(addr=0x1000 + i * 8) for i in range(10)]
        buffer = io.StringIO()
        assert dump_trace(trace, buffer) == 10
        buffer.seek(0)
        assert list(iter_trace(buffer)) == trace

    def test_rejects_wrong_format(self):
        buffer = io.StringIO('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro trace"):
            list(iter_trace(buffer))

    def test_rejects_wrong_version(self):
        buffer = io.StringIO('{"format": "repro-trace", "version": 99}\n')
        with pytest.raises(ValueError, match="unsupported"):
            list(iter_trace(buffer))

    def test_rejects_empty_file(self):
        with pytest.raises(ValueError, match="empty"):
            list(iter_trace(io.StringIO("")))

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            access_from_dict({"a": 5})


class TestFiles:
    def test_save_and_load_workload_trace(self, tmp_path):
        program = ListTraversalProgram(num_nodes=32, iterations=2)
        trace = program.trace()
        path = tmp_path / "list.trace.jsonl"
        assert save_trace(trace, path) == len(trace)
        assert load_trace(path) == trace

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.prefetchers.nopf import NoPrefetcher
        from repro.sim.simulator import Simulator

        program = ListTraversalProgram(num_nodes=32, iterations=2)
        path = tmp_path / "t.jsonl"
        save_trace(program.trace(), path)
        a = Simulator(NoPrefetcher()).run(program.trace())
        b = Simulator(NoPrefetcher()).run(load_trace(path))
        assert a.cycles == b.cycles
        assert a.l1.misses == b.l1.misses
