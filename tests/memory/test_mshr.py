"""Tests for the MSHR file."""

import pytest

from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_allocate_and_lookup(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(line=5, now=0, completes_at=100)
        assert mshrs.lookup(5, now=10) == 100

    def test_full_file_rejects(self):
        mshrs = MSHRFile(1)
        assert mshrs.allocate(1, 0, 100)
        assert not mshrs.allocate(2, 0, 100)
        assert mshrs.rejections == 1

    def test_merge_always_succeeds_when_full(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(1, 0, 100)
        assert mshrs.allocate(1, 50, 100)  # secondary miss to same line
        assert mshrs.merges == 1

    def test_available_counts(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 0, 100)
        mshrs.allocate(2, 0, 100)
        assert mshrs.available(0) == 2
        assert mshrs.outstanding(0) == 2


class TestExpiry:
    def test_entry_retires_at_completion(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(1, 0, 100)
        assert mshrs.lookup(1, 99) == 100
        assert mshrs.lookup(1, 100) is None
        assert mshrs.available(100) == 1

    def test_expired_entry_frees_slot(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(1, 0, 100)
        assert mshrs.allocate(2, 100, 200)

    def test_in_flight_lines_sorted(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(9, 0, 100)
        mshrs.allocate(3, 0, 100)
        assert mshrs.in_flight_lines(0) == [3, 9]


class TestPrefetchFlag:
    def test_prefetch_flag_tracked(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, 0, 100, is_prefetch=True)
        assert mshrs.is_prefetch(1, 0)

    def test_demand_merge_clears_prefetch_flag(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, 0, 100, is_prefetch=True)
        mshrs.allocate(1, 10, 100, is_prefetch=False)
        assert not mshrs.is_prefetch(1, 10)

    def test_prefetch_merge_does_not_set_flag(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, 0, 100, is_prefetch=False)
        mshrs.allocate(1, 10, 100, is_prefetch=True)
        assert not mshrs.is_prefetch(1, 10)
