"""Parallel sweep engine: the grid → jobs → ordered merge pipeline.

Every cell of a workload × prefetcher sweep is independent — the
simulator is a pure function of (trace, prefetcher, configs, limit) —
so the sweep is embarrassingly parallel.  This module fans the grid out
over a ``ProcessPoolExecutor`` and merges results back **in grid
order**, so the output is field-for-field identical to the serial path
(``tests/sim/test_parallel_parity.py`` proves it):

* jobs are enumerated and submitted in deterministic grid order
  (workloads outer, prefetchers inner — the serial loop's order);
* workers never inherit parent state: the pool uses the ``spawn`` start
  method, and each worker rebuilds its workload and prefetcher from
  config, re-seeding every RNG from the config's seed field;
* results cross the process boundary through the versioned codec
  (:mod:`repro.sim.codec`) — the same encoding the on-disk cache
  persists, so both paths are exercised by the same parity tests;
* the merge iterates the original grid, never completion order.

Observability: ``progress`` receives one line per finished cell
(``[done/total] workload/prefetcher: …``), flagged ``cached`` for cache
hits.  Wall-clock timing is deliberately absent here — the simulator
package is wall-clock-free by lint rule DET003 — so callers that want
per-job timing inject a clock via ``progress`` closures (see
``scripts/run_full_experiments.py``).
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

if TYPE_CHECKING:  # runner imports this module lazily; avoid the cycle
    from repro.sim.runner import ComparisonResult

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.cache import SweepCache, cell_key, trace_fingerprint
from repro.sim.codec import decode_result, encode_result
from repro.sim.config import PREFETCHER_FACTORIES
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulator
from repro.workloads.suites import WorkloadSpec, get_workload
from repro.workloads.trace import MemoryAccess, TraceProgram

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class SweepJob:
    """One executable sweep cell, fully described by value.

    ``trace`` is only populated for workloads that cannot be rebuilt
    from the registry by name (ad-hoc :class:`TraceProgram` instances);
    registry workloads ship as their name and are rebuilt inside the
    worker, re-seeded from their own config — workers never receive
    parent RNG state.
    """

    index: int
    workload: str
    prefetcher: str
    limit: int | None
    hierarchy_config: HierarchyConfig | None = None
    core_config: CoreConfig | None = None
    context_config: ContextPrefetcherConfig | None = None
    trace: tuple[MemoryAccess, ...] | None = None


@dataclass
class ExecutionDefaults:
    """Process-wide defaults the CLI/scripts set once per invocation."""

    jobs: int = 1
    cache: SweepCache | None = None


_DEFAULTS = ExecutionDefaults()


def default_execution() -> ExecutionDefaults:
    """The currently configured process-wide execution defaults."""
    return _DEFAULTS


def set_default_execution(
    *, jobs: int | None = None, cache: SweepCache | None | bool = False
) -> ExecutionDefaults:
    """Set process-wide defaults; returns the previous values.

    ``cache=False`` (the sentinel) leaves the cache default untouched;
    pass an explicit ``SweepCache`` or ``None`` to change it.
    """
    global _DEFAULTS
    previous = _DEFAULTS
    _DEFAULTS = ExecutionDefaults(
        jobs=previous.jobs if jobs is None else max(1, jobs),
        cache=previous.cache if cache is False else cache,
    )
    return previous


def _make_prefetcher(job: SweepJob):
    if job.prefetcher == "context" and job.context_config is not None:
        return ContextPrefetcher(job.context_config)
    return PREFETCHER_FACTORIES[job.prefetcher]()


def _run_cell(job: SweepJob, trace: Sequence[MemoryAccess]) -> SimulationResult:
    sim = Simulator(
        _make_prefetcher(job),
        hierarchy_config=job.hierarchy_config,
        core_config=job.core_config,
    )
    return sim.run(trace, workload_name=job.workload, limit=job.limit)


def run_job(job: SweepJob) -> SimulationResult:
    """Execute one cell from scratch (also the in-worker entry point)."""
    if job.trace is not None:
        trace: Sequence[MemoryAccess] = job.trace
    else:
        trace = get_workload(job.workload).build().trace()
    return _run_cell(job, trace)


def _execute_job(job: SweepJob) -> tuple[int, dict[str, Any]]:
    """Worker body: run the cell, return its index + encoded result.

    Returning the *encoded* form means every parallel result crosses the
    process boundary through the same versioned codec the cache uses.
    """
    return job.index, encode_result(run_job(job))


@dataclass
class _Cell:
    """Bookkeeping for one grid position during a sweep.

    ``local_trace`` is the parent-resolved trace, used by the inline
    (jobs == 1) path so cached-but-cold runs never rebuild a workload
    per cell; it is never shipped to workers — only ``job`` is.
    """

    workload: str
    prefetcher: str
    job: SweepJob
    local_trace: Sequence[MemoryAccess] | None = None
    key: str | None = None
    result: SimulationResult | None = None
    cached: bool = False


def _resolve_grid(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
) -> list[tuple[str, list[MemoryAccess], bool]]:
    """(name, trace, rebuildable-by-name) per workload, in input order.

    A workload is rebuilt by name inside workers only when the name
    resolves to the *same* registry entry the caller passed — a custom
    spec or ad-hoc program that merely shares a name ships its trace
    explicitly instead, so workers can never run the wrong workload.
    """
    out: list[tuple[str, list[MemoryAccess], bool]] = []
    for workload in workloads:
        spec: WorkloadSpec | None = None
        if isinstance(workload, str):
            spec = get_workload(workload)
        elif isinstance(workload, WorkloadSpec):
            spec = workload
        if spec is not None:
            by_name = False
            try:
                by_name = get_workload(spec.name) is spec
            except KeyError:
                by_name = False
            out.append((spec.name, spec.build().trace(), by_name))
        else:
            assert isinstance(workload, TraceProgram)
            out.append((workload.name, workload.trace(), False))
    return out


def parallel_compare(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
    prefetchers: Iterable[str],
    *,
    hierarchy_config: HierarchyConfig | None = None,
    core_config: CoreConfig | None = None,
    context_config: ContextPrefetcherConfig | None = None,
    limit: int | None = None,
    jobs: int = 1,
    cache: SweepCache | None = None,
    progress: ProgressFn | None = None,
) -> "ComparisonResult":
    """Run the sweep grid with ``jobs`` workers and an optional cache.

    Returns the same :class:`~repro.sim.runner.ComparisonResult` the
    serial path builds, with identical cell values and identical
    workload/prefetcher ordering.
    """
    from repro.sim.runner import ComparisonResult

    prefetcher_names = list(prefetchers)
    grid = _resolve_grid(workloads)

    cells: list[_Cell] = []
    for name, trace, by_name in grid:
        trace_fp = trace_fingerprint(trace) if cache is not None else ""
        # ship the (truncated) trace to workers whenever a limit applies —
        # rebuilding a full trace per cell just to truncate it dwarfs the
        # pickling cost; only full-trace registry workloads rebuild by
        # name, where a rebuild costs the same as shipping would
        if by_name and limit is None:
            shipped = None
        elif limit is not None:
            shipped = tuple(trace[:limit])
        else:
            shipped = tuple(trace)
        for pf_name in prefetcher_names:
            job = SweepJob(
                index=len(cells),
                workload=name,
                prefetcher=pf_name,
                limit=limit,
                hierarchy_config=hierarchy_config,
                core_config=core_config,
                context_config=context_config,
                trace=shipped,
            )
            cell = _Cell(
                workload=name, prefetcher=pf_name, job=job, local_trace=trace
            )
            if cache is not None:
                cell.key = cell_key(
                    workload=name,
                    trace_fp=trace_fp,
                    prefetcher=pf_name,
                    limit=limit,
                    hierarchy_config=hierarchy_config,
                    core_config=core_config,
                    context_config=context_config,
                )
                cell.result = cache.load(cell.key)
                cell.cached = cell.result is not None
            cells.append(cell)

    total = len(cells)
    done = 0

    def report(cell: _Cell) -> None:
        if progress is None:
            return
        assert cell.result is not None
        suffix = " [cached]" if cell.cached else ""
        progress(f"[{done}/{total}] {cell.result.summary()}{suffix}")

    for cell in cells:
        if cell.cached:
            done += 1
            report(cell)

    pending = [cell for cell in cells if cell.result is None]
    if pending and jobs > 1:
        # spawn (not fork): workers start from a clean interpreter and
        # can only re-seed from config, never inherit parent RNG state
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            mp_context=get_context("spawn"),
        ) as pool:
            futures: list[tuple[_Cell, Future]] = [
                (cell, pool.submit(_execute_job, cell.job)) for cell in pending
            ]
            # iterate submission order, not completion order: progress
            # lines and cache stores stay deterministic run to run
            for cell, future in futures:
                index, payload = future.result()
                assert index == cell.job.index
                cell.result = decode_result(payload)
                done += 1
                if cache is not None and cell.key is not None:
                    cache.store(cell.key, cell.result)
                report(cell)
    else:
        for cell in pending:
            assert cell.local_trace is not None
            cell.result = decode_result(
                encode_result(_run_cell(cell.job, cell.local_trace))
            )
            done += 1
            if cache is not None and cell.key is not None:
                cache.store(cell.key, cell.result)
            report(cell)

    comparison = ComparisonResult()
    for cell in cells:
        assert cell.result is not None
        comparison.results.setdefault(cell.workload, {})[cell.prefetcher] = cell.result
    if progress is not None and cache is not None:
        progress(cache.counters.summary())
    return comparison


def parallel_storage_sweep(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
    cst_sizes: Iterable[int],
    *,
    limit: int | None = None,
    base_config: ContextPrefetcherConfig | None = None,
    jobs: int = 1,
    cache: SweepCache | None = None,
    progress: ProgressFn | None = None,
) -> dict[int, dict[str, SimulationResult]]:
    """Figure 13's (CST size × workload) grid on the parallel engine.

    Each size is one ``context`` configuration (CST rescaled, reducer at
    8×), so the cache keys config sweeps exactly like prefetcher sweeps.
    """
    base = base_config or ContextPrefetcherConfig()
    workload_list = list(workloads)  # reused across sizes; don't exhaust
    sizes = list(cst_sizes)
    out: dict[int, dict[str, SimulationResult]] = {}
    for size in sizes:
        comparison = parallel_compare(
            workload_list,
            ("context",),
            context_config=base.scaled(size),
            limit=limit,
            jobs=jobs,
            cache=cache,
            progress=progress,
        )
        out[size] = {
            wl: comparison.get(wl, "context") for wl in comparison.workloads()
        }
    return out


__all__ = [
    "ExecutionDefaults",
    "SweepJob",
    "default_execution",
    "parallel_compare",
    "parallel_storage_sweep",
    "run_job",
    "set_default_execution",
]
