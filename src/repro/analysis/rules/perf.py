"""Hot-path performance rules (``PERF*``).

The per-access simulation loop constructs and touches objects of the
classes defined under ``core/``, ``prefetchers/``, ``memory/`` and
``cpu/`` millions of times per sweep.  A class without ``__slots__``
carries a per-instance ``__dict__`` — slower attribute access and a
~3× memory footprint — so the hot-path modules must opt every class
into slotted layout:

* ``PERF001`` — a class in a hot-path module declares neither
  ``__slots__`` nor ``@dataclass(slots=True)`` and is not one of the
  layouts that manage their own storage (``NamedTuple``, enums,
  exceptions).  Legitimately dict-backed classes are listed in
  :data:`DICT_BACKED_ALLOWLIST` (budget-style: the allowlist *is* the
  inventory, so growing it is a reviewed decision).
* ``PERF002`` — the binary trace-store record layout
  (``workloads/store.py``) is an on-disk contract: files compiled by
  one build are read by later ones.  The rule extracts
  ``STORE_VERSION`` and ``RECORD_FIELDS`` from the AST and compares
  the layout hash against :data:`PINNED_RECORD_LAYOUTS`; changing the
  field list, order or formats without bumping ``STORE_VERSION`` (and
  pinning the new hash) fails ``repro lint``, so a stale file can
  never be misread as a current one.
* ``PERF003`` — the native batch kernel declares its phase contract in
  ``repro.sim.native.VECTOR_PHASES``: every vectorized phase names the
  scalar-fallback implementation that must keep existing (the kernel
  falls back per run, so deleting or renaming either side strands the
  other).  The rule resolves both sides of every row against the AST;
  a one-sided edit — a vectorized phase whose fallback is gone, or a
  fallback whose vectorized twin was renamed — fails ``repro lint``.
* ``PERF005`` — the in-kernel batch driver (``sim/native/_csrc.py``)
  is the one C entry point that runs whole shards GIL-released across
  an OpenMP team, so its layout is pinned like PERF002 pins the trace
  store: ``CDEF_BATCH``/``SOURCE_BATCH`` must stay statically
  extractable literals whose hash matches the pin for
  ``BATCH_VERSION``; the batch source may not declare ``static`` (or
  ``__thread``) storage — shared mutable state is exactly what would
  break the bit-identical-at-any-thread-count guarantee — and must
  keep the ``#ifdef _OPENMP`` guard so the serial fallback build keeps
  compiling.
* ``PERF004`` — the warm-worker batch-dispatch layout
  (``sim/sched/``) is pinned.  Cells cross the spawn boundary as bare
  ``CELL_FIELDS`` tuples riding one per-batch ``BatchShared`` — never
  as per-cell job objects (``SweepJob`` pickles a config per cell) and
  never as per-cell futures (``concurrent.futures`` re-spawns workers
  per call).  Queue-put and submit callsites are allowlisted
  (budget-style, like ``PERF001``): a new place that ships payloads
  into workers is a reviewed decision, because that is exactly where
  the per-cell pickling the warm pool exists to avoid would creep
  back in.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.visitor import NodeRule, Project, SourceFile

#: modules whose classes live on the per-access path
HOT_DIRS = ("core/", "prefetchers/", "memory/", "cpu/")

#: base classes that manage instance storage themselves
_SELF_STORING_BASES = frozenset(
    {"NamedTuple", "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "Protocol"}
)

#: ``rel-path:ClassName`` entries reviewed as legitimately dict-backed
DICT_BACKED_ALLOWLIST = frozenset(
    {
        # frozen dataclasses that derive ``_bell_denom`` in __post_init__
        # via object.__setattr__; declaring it as a field would leak the
        # derived value into asdict()/repr comparisons, and the objects
        # are constructed once per run, not per access
        "core/reward.py:RewardFunction",
        "core/reward.py:FlatRewardFunction",
    }
)


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_with_slots(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = (
            deco.func.attr
            if isinstance(deco.func, ast.Attribute)
            else getattr(deco.func, "id", "")
        )
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


@register_rule
class SlotsRule(NodeRule):
    """PERF001: hot-path classes must use slotted instance layout."""

    rule_id = "PERF001"
    title = "hot-path class without __slots__"
    node_types = (ast.ClassDef,)
    scope = HOT_DIRS

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        assert isinstance(node, ast.ClassDef)
        bases = _base_names(node)
        if any(base in _SELF_STORING_BASES for base in bases):
            return
        if any(base.endswith(("Error", "Exception")) for base in bases):
            return
        if _declares_slots(node) or _dataclass_with_slots(node):
            return
        if f"{source.rel}:{node.name}" in DICT_BACKED_ALLOWLIST:
            return
        yield Finding(
            source.rel,
            node.lineno,
            self.rule_id,
            f"{node.name} is on the hot path but has no __slots__ "
            "(declare __slots__, use @dataclass(slots=True), or add a "
            "reviewed entry to DICT_BACKED_ALLOWLIST)",
        )


# ----------------------------------------------------------------------
# PERF002: the trace-store record layout is pinned per STORE_VERSION

STORE_MODULE = "workloads/store.py"

#: STORE_VERSION -> sha256 of the canonical RECORD_FIELDS JSON (the same
#: hash ``repro.workloads.store.record_layout_hash`` computes).  Bumping
#: the version means adding a row here — the table doubles as the
#: format's change history.
PINNED_RECORD_LAYOUTS = {
    1: "e7832b3697cc9849029949bdfc5eca03c21159a0b768041dc658d1488dc120d2",
}


def _literal_assign(tree: ast.Module, name: str) -> tuple[object, int] | None:
    """``(value, lineno)`` of a top-level literal assignment, else None."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in targets
        ):
            continue
        try:
            return ast.literal_eval(value), stmt.lineno
        except ValueError:
            return None
    return None


def layout_hash(fields: Iterable[Iterable[str]]) -> str:
    """The pinned-layout hash: canonical JSON of the field list.

    Mirrors ``repro.workloads.store.record_layout_hash`` byte-for-byte;
    duplicated here so the analysis pass stays purely static (it reads
    the AST, never imports the module under analysis).
    """
    canonical = json.dumps([list(f) for f in fields], separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@register_rule
class RecordLayoutRule(Rule):
    """PERF002: trace-store record layout must match its pinned hash."""

    rule_id = "PERF002"
    title = "trace-store record layout drifted without a version bump"

    def check(self, project: Project) -> Iterator[Finding]:
        source = project.get(STORE_MODULE)
        if source is None:
            yield Finding(
                STORE_MODULE,
                0,
                self.rule_id,
                "workloads/store.py is missing: the trace-store codec "
                "(and its pinned record layout) must exist",
            )
            return
        version = _literal_assign(source.tree, "STORE_VERSION")
        fields = _literal_assign(source.tree, "RECORD_FIELDS")
        if version is None or not isinstance(version[0], int):
            yield Finding(
                source.rel,
                version[1] if version else 0,
                self.rule_id,
                "STORE_VERSION must be a top-level integer literal so the "
                "on-disk format version is statically auditable",
            )
            return
        raw, fields_line = fields if fields is not None else (None, 0)
        if not isinstance(raw, (tuple, list)):
            yield Finding(
                source.rel,
                fields_line,
                self.rule_id,
                "RECORD_FIELDS must be a top-level literal tuple of "
                "(name, format) pairs so the record layout is statically "
                "auditable",
            )
            return
        pinned = PINNED_RECORD_LAYOUTS.get(version[0])
        if pinned is None:
            yield Finding(
                source.rel,
                version[1],
                self.rule_id,
                f"STORE_VERSION {version[0]} has no pinned record layout: "
                "add its layout hash to PINNED_RECORD_LAYOUTS in "
                "analysis/rules/perf.py",
            )
            return
        actual = layout_hash(raw)
        if actual != pinned:
            yield Finding(
                source.rel,
                fields_line,
                self.rule_id,
                f"RECORD_FIELDS changed but STORE_VERSION is still "
                f"{version[0]} (layout hash {actual[:12]}… != pinned "
                f"{pinned[:12]}…): bump STORE_VERSION and pin the new "
                "layout, or revert the layout change",
            )


# ----------------------------------------------------------------------
# PERF003: vectorized phases keep their scalar-fallback counterparts

NATIVE_MODULE = "sim/native/__init__.py"


def _module_rel(module: str) -> str:
    """``repro.sim.native.adapter`` -> ``sim/native/adapter.py``."""
    parts = module.split(".")
    if parts and parts[0] == "repro":
        parts = parts[1:]
    return "/".join(parts) + ".py"


def _resolve_qualname(tree: ast.Module, qualname: str) -> bool:
    """True when ``qualname`` names a function/method in ``tree``.

    Handles top-level functions (``lines_of_array``) and one class level
    (``Simulator.run``) — the only shapes the phase table uses.
    """
    parts = qualname.split(".")
    body: list[ast.stmt] = tree.body
    for i, part in enumerate(parts):
        match = None
        for stmt in body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == part
                and i == len(parts) - 1
            ):
                match = stmt
                break
            if isinstance(stmt, ast.ClassDef) and stmt.name == part:
                match = stmt
                break
        if match is None:
            return False
        if isinstance(match, ast.ClassDef):
            body = match.body
    return not isinstance(match, ast.ClassDef) or len(parts) == 1


@register_rule
class VectorPhaseContractRule(Rule):
    """PERF003: every vectorized phase keeps its scalar fallback."""

    rule_id = "PERF003"
    title = "vectorized phase without its scalar-fallback counterpart"

    def check(self, project: Project) -> Iterator[Finding]:
        source = project.get(NATIVE_MODULE)
        if source is None:
            yield Finding(
                NATIVE_MODULE,
                0,
                self.rule_id,
                "sim/native/__init__.py is missing: the native kernel's "
                "phase contract (VECTOR_PHASES) must exist",
            )
            return
        phases = _literal_assign(source.tree, "VECTOR_PHASES")
        if phases is None or not isinstance(phases[0], (tuple, list)):
            yield Finding(
                source.rel,
                phases[1] if phases else 0,
                self.rule_id,
                "VECTOR_PHASES must be a top-level literal tuple of "
                "(phase, native_impl, scalar_fallback) rows so the "
                "vectorize/fallback pairing is statically auditable",
            )
            return
        rows, line = phases
        for row in rows:
            if (
                not isinstance(row, (tuple, list))
                or len(row) != 3
                or not all(isinstance(item, str) for item in row)
            ):
                yield Finding(
                    source.rel,
                    line,
                    self.rule_id,
                    f"malformed VECTOR_PHASES row {row!r}: expected "
                    "(phase, 'module:qualname', 'module:qualname')",
                )
                continue
            phase, native_impl, fallback = row
            for side, ref in (("native", native_impl), ("fallback", fallback)):
                if ref.count(":") != 1:
                    yield Finding(
                        source.rel,
                        line,
                        self.rule_id,
                        f"phase {phase!r}: {side} reference {ref!r} is not "
                        "'module:qualname'",
                    )
                    continue
                module, qualname = ref.split(":")
                target = project.get(_module_rel(module))
                if target is None:
                    yield Finding(
                        source.rel,
                        line,
                        self.rule_id,
                        f"phase {phase!r}: {side} module {module!r} "
                        f"({_module_rel(module)}) does not exist — the "
                        "vectorized phase and its scalar fallback must "
                        "be edited together",
                    )
                    continue
                if not _resolve_qualname(target.tree, qualname):
                    yield Finding(
                        source.rel,
                        line,
                        self.rule_id,
                        f"phase {phase!r}: {side} implementation "
                        f"{qualname!r} is gone from {_module_rel(module)} "
                        "— a vectorized phase must keep its scalar "
                        "fallback (and vice versa); update VECTOR_PHASES "
                        "together with the code",
                    )


# ----------------------------------------------------------------------
# PERF004: the warm-worker batch-dispatch layout is pinned

SCHED_DIR = "sim/sched/"
POOL_MODULE = "sim/sched/pool.py"
PARALLEL_MODULE = "sim/parallel.py"

#: the wire shape of one sweep cell inside a batch message.  Everything
#: else a cell needs (trace identity, limit, native flag, the context
#: config table) is batch-shared; growing this tuple grows every queue
#: message by cells-per-batch copies, so it is a reviewed decision.
PINNED_CELL_FIELDS = ("index", "prefetcher", "context_id")

#: ``rel-path:qualname`` functions allowed to put onto worker queues —
#: the complete inventory of places payloads enter the spawn boundary
QUEUE_PUT_ALLOWLIST = frozenset(
    {
        f"{POOL_MODULE}:WorkerPool.submit",  # batch messages in
        f"{POOL_MODULE}:_worker_main",  # results/errors out
        f"{POOL_MODULE}:WorkerPool.close",  # shutdown sentinels
    }
)

#: ``rel-path:qualname`` functions allowed to call ``*.submit(...)``:
#: the scheduler's batch dispatch, and the legacy pool-per-call paths
#: kept in ``parallel_compare`` (the measured bench baseline)
SUBMIT_ALLOWLIST = frozenset(
    {
        "sim/sched/scheduler.py:dispatch",
        f"{PARALLEL_MODULE}:parallel_compare",
    }
)

#: names whose appearance under ``sim/sched/`` signals per-cell payloads
#: or per-call executors leaking into the warm dispatch layer
_SCHED_BANNED_NAMES = {
    "SweepJob": "per-cell job objects must not enter the batch protocol "
    "(ship bare CELL_FIELDS tuples; batch-constant state rides "
    "BatchShared)",
    "ProcessPoolExecutor": "the scheduler dispatches to the persistent "
    "worker pool, never to a pool-per-call executor",
}


def _qualname_walk(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, str]]:
    """Every node paired with its enclosing class/function qualname."""

    def rec(node: ast.AST, stack: tuple[str, ...]) -> Iterator[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            yield child, ".".join(stack)
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from rec(child, stack + (child.name,))
            else:
                yield from rec(child, stack)

    return rec(tree, ())


@register_rule
class BatchDispatchLayoutRule(Rule):
    """PERF004: warm-pool dispatch ships batches, never per-cell jobs."""

    rule_id = "PERF004"
    title = "batch-dispatch layout drifted from its pinned contract"

    def check(self, project: Project) -> Iterator[Finding]:
        pool = project.get(POOL_MODULE)
        if pool is None:
            yield Finding(
                POOL_MODULE,
                0,
                self.rule_id,
                "sim/sched/pool.py is missing: the warm worker pool (and "
                "its pinned CELL_FIELDS wire shape) must exist",
            )
            return
        fields = _literal_assign(pool.tree, "CELL_FIELDS")
        if fields is None or not isinstance(fields[0], (tuple, list)):
            yield Finding(
                pool.rel,
                fields[1] if fields else 0,
                self.rule_id,
                "CELL_FIELDS must be a top-level literal tuple so the "
                "per-cell wire shape is statically auditable",
            )
        elif tuple(fields[0]) != PINNED_CELL_FIELDS:
            yield Finding(
                pool.rel,
                fields[1],
                self.rule_id,
                f"CELL_FIELDS {tuple(fields[0])!r} != pinned "
                f"{PINNED_CELL_FIELDS!r}: growing the per-cell message is "
                "a reviewed decision — move batch-constant state to "
                "BatchShared, or update the pin in analysis/rules/perf.py",
            )
        for source in project.in_dir(SCHED_DIR):
            yield from self._check_sched_file(source)
        parallel = project.get(PARALLEL_MODULE)
        if parallel is not None:
            yield from self._check_submits(parallel)

    def _check_sched_file(self, source: SourceFile) -> Iterator[Finding]:
        for node, qualname in _qualname_walk(source.tree):
            if isinstance(node, ast.Name) and node.id in _SCHED_BANNED_NAMES:
                yield Finding(
                    source.rel,
                    node.lineno,
                    self.rule_id,
                    f"{node.id} referenced under sim/sched/: "
                    f"{_SCHED_BANNED_NAMES[node.id]}",
                )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                module = getattr(node, "module", "") or ""
                names = [alias.name for alias in node.names]
                if module.startswith("concurrent") or any(
                    name.startswith("concurrent") for name in names
                ):
                    yield Finding(
                        source.rel,
                        node.lineno,
                        self.rule_id,
                        "concurrent.futures imported under sim/sched/: the "
                        "scheduler dispatches to the persistent worker "
                        "pool, never to a pool-per-call executor",
                    )
                banned = [
                    alias.name
                    for alias in node.names
                    if alias.name in _SCHED_BANNED_NAMES
                ]
                for name in banned:
                    yield Finding(
                        source.rel,
                        node.lineno,
                        self.rule_id,
                        f"{name} imported under sim/sched/: "
                        f"{_SCHED_BANNED_NAMES[name]}",
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attr = node.func.attr
                site = f"{source.rel}:{qualname}"
                if attr in ("put", "put_nowait"):
                    if site not in QUEUE_PUT_ALLOWLIST:
                        yield Finding(
                            source.rel,
                            node.lineno,
                            self.rule_id,
                            f"queue put in {qualname or '<module>'} is not "
                            "in QUEUE_PUT_ALLOWLIST: payloads enter the "
                            "spawn boundary only through the reviewed "
                            "pool entry points",
                        )
                elif attr == "submit" and site not in SUBMIT_ALLOWLIST:
                    yield Finding(
                        source.rel,
                        node.lineno,
                        self.rule_id,
                        f".submit() in {qualname or '<module>'} is not in "
                        "SUBMIT_ALLOWLIST: batches are submitted from the "
                        "scheduler's dispatch loop, never per cell",
                    )

    def _check_submits(self, source: SourceFile) -> Iterator[Finding]:
        for node, qualname in _qualname_walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
            ):
                site = f"{source.rel}:{qualname}"
                if site not in SUBMIT_ALLOWLIST:
                    yield Finding(
                        source.rel,
                        node.lineno,
                        self.rule_id,
                        f".submit() in {qualname or '<module>'} is not in "
                        "SUBMIT_ALLOWLIST: sweep dispatch goes through "
                        "the warm pool (or the reviewed legacy paths in "
                        "parallel_compare), never new per-cell futures",
                    )


# ----------------------------------------------------------------------
# PERF005: the in-kernel batch driver's layout is pinned

CSRC_MODULE = "sim/native/_csrc.py"

#: BATCH_VERSION -> sha256 of ``CDEF_BATCH + SOURCE_BATCH``.  Bumping
#: the version means adding a row here — the table doubles as the batch
#: ABI's change history (the build keys its artifact cache on the same
#: source text, so a drifted hash is a silently different kernel).
PINNED_BATCH_LAYOUTS = {
    1: "6936c5c2fe7b921543cedc75f1608142e5b9bf5c4580f0a72469af0d08171c2f",
}

#: storage-class tokens banned from the batch source: anything with
#: process lifetime is shared across the OpenMP team and would make
#: results depend on thread interleaving
_BATCH_BANNED_TOKENS = ("static", "__thread")


def batch_layout_hash(cdef: str, source: str) -> str:
    """The pinned-batch hash: sha256 over the concatenated C text."""
    return hashlib.sha256((cdef + source).encode("utf-8")).hexdigest()


@register_rule
class BatchKernelLayoutRule(Rule):
    """PERF005: the batch C driver must match its pinned, state-free layout."""

    rule_id = "PERF005"
    title = "batch kernel layout drifted or declares shared mutable state"

    def check(self, project: Project) -> Iterator[Finding]:
        source = project.get(CSRC_MODULE)
        if source is None:
            yield Finding(
                CSRC_MODULE,
                0,
                self.rule_id,
                "sim/native/_csrc.py is missing: the compiled kernel's "
                "batch driver (and its pinned layout) must exist",
            )
            return
        version = _literal_assign(source.tree, "BATCH_VERSION")
        cdef = _literal_assign(source.tree, "CDEF_BATCH")
        body = _literal_assign(source.tree, "SOURCE_BATCH")
        if version is None or not isinstance(version[0], int):
            yield Finding(
                source.rel,
                version[1] if version else 0,
                self.rule_id,
                "BATCH_VERSION must be a top-level integer literal so the "
                "batch ABI version is statically auditable",
            )
            return
        for name, got in (("CDEF_BATCH", cdef), ("SOURCE_BATCH", body)):
            if got is None or not isinstance(got[0], str):
                yield Finding(
                    source.rel,
                    got[1] if got else 0,
                    self.rule_id,
                    f"{name} must be a top-level string literal so the "
                    "batch driver's C text is statically auditable",
                )
                return
        pinned = PINNED_BATCH_LAYOUTS.get(version[0])
        if pinned is None:
            yield Finding(
                source.rel,
                version[1],
                self.rule_id,
                f"BATCH_VERSION {version[0]} has no pinned layout: add "
                "its hash to PINNED_BATCH_LAYOUTS in analysis/rules/perf.py",
            )
            return
        actual = batch_layout_hash(cdef[0], body[0])
        if actual != pinned:
            yield Finding(
                source.rel,
                body[1],
                self.rule_id,
                f"the batch C driver changed but BATCH_VERSION is still "
                f"{version[0]} (layout hash {actual[:12]}… != pinned "
                f"{pinned[:12]}…): bump BATCH_VERSION and pin the new "
                "layout, or revert the change",
            )
        # strip comments first (block comments span lines), then match
        # tokens as whole words so e.g. `statically` in prose is fine
        code = re.sub(r"/\*.*?\*/", "", body[0], flags=re.S)
        code = re.sub(r"//[^\n]*", "", code)
        for token in _BATCH_BANNED_TOKENS:
            for offset, line in enumerate(code.splitlines()):
                if re.search(rf"\b{token}\b", line):
                    yield Finding(
                        source.rel,
                        body[1],
                        self.rule_id,
                        f"SOURCE_BATCH declares `{token}` storage (batch "
                        f"source line {offset + 1}): everything mutable "
                        "must live in per-cell state, or results depend "
                        "on OpenMP scheduling",
                    )
        if "#ifdef _OPENMP" not in body[0]:
            yield Finding(
                source.rel,
                body[1],
                self.rule_id,
                "SOURCE_BATCH has no `#ifdef _OPENMP` guard: the batch "
                "driver must keep compiling (serially) on toolchains "
                "without OpenMP",
            )
