"""Result containers and derived metrics for simulation runs."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.memory.stats import AccessClass, AccessClassifier, CacheStats


def geomean(values: list[float]) -> float:
    """Geometric mean (the conventional speedup aggregate)."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean needs strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class HitDepthCDF:
    """Cumulative distribution of prefetch hit depths (Figure 8)."""

    histogram: Counter[int] = field(default_factory=Counter)

    def add(self, depth: int, count: int = 1) -> None:
        if depth < 0:
            raise ValueError("depth cannot be negative")
        self.histogram[depth] += count

    @property
    def total(self) -> int:
        return sum(self.histogram.values())

    def cdf(self, max_depth: int = 128) -> list[tuple[int, float]]:
        """(depth, cumulative fraction) pairs for depths 0..max_depth."""
        total = self.total
        if total == 0:
            return [(d, 0.0) for d in range(max_depth + 1)]
        out = []
        running = 0
        for depth in range(max_depth + 1):
            running += self.histogram.get(depth, 0)
            out.append((depth, running / total))
        return out

    def fraction_in_window(self, lo: int, hi: int) -> float:
        """Fraction of hits whose depth lies in [lo, hi] (timely hits)."""
        total = self.total
        if total == 0:
            return 0.0
        inside = sum(c for d, c in self.histogram.items() if lo <= d <= hi)
        return inside / total

    def fraction_late(self, lo: int) -> float:
        """Fraction of hits at depths below ``lo`` (issued too late)."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(c for d, c in self.histogram.items() if d < lo) / total

    def fraction_early(self, hi: int) -> float:
        """Fraction of hits at depths above ``hi`` (issued too early)."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(c for d, c in self.histogram.items() if d > hi) / total


@dataclass
class SimulationResult:
    """Everything one (workload, prefetcher) run produces."""

    workload: str
    prefetcher: str
    instructions: int
    cycles: int
    l1: CacheStats
    l2: CacheStats
    classifier: AccessClassifier
    hit_depths: HitDepthCDF
    prefetches_issued: int = 0
    prefetches_shadow: int = 0
    prefetches_rejected: int = 0
    prefetches_redundant: int = 0
    prefetcher_accuracy: float = 0.0
    storage_bits: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def l1_mpki(self) -> float:
        return self.l1.mpki(self.instructions)

    @property
    def l2_mpki(self) -> float:
        return self.l2.mpki(self.instructions)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC speedup of this run over ``baseline`` (Figure 12 metric)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def class_fraction(self, cls: AccessClass) -> float:
        return self.classifier.fractions()[cls]

    def summary(self) -> str:
        return (
            f"{self.workload}/{self.prefetcher}: "
            f"IPC={self.ipc:.3f} L1-MPKI={self.l1_mpki:.1f} "
            f"L2-MPKI={self.l2_mpki:.1f} "
            f"useful={self.classifier.useful_fraction():.1%}"
        )
