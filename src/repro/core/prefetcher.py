"""The context-based prefetcher (Algorithm 1 / Figures 6–7 of the paper).

Three units run on every demand access:

1. **Feedback** — the current address is matched against the prefetch
   queue; hit depths drive the bell-shaped reward applied to the CST, and
   queue expirations apply the negative expiry reward.
2. **Collection** — the current address is associated (as a stored delta)
   with the contexts sampled from the history queue at depths spanning the
   prefetch window.
3. **Prediction** — the current context is reduced (Reducer), looked up in
   the CST, and the ε-greedy policy picks real and shadow prefetches,
   throttled by the accuracy-driven degree.

Feedback runs before prediction so that a prediction pushed by this very
access cannot immediately reward itself at depth zero.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.core.bandit import EpsilonGreedyPolicy, make_policy
from repro.core.config import ContextPrefetcherConfig
from repro.core.context import (
    _ADDR_HISTORY,
    _BRANCH_HISTORY,
    _IP,
    _LAST_VALUE,
    _LINK_OFFSET,
    _MASK64,
    _REF_FORM,
    _REG_VALUE,
    _TYPE_ID,
    ContextTracker,
)
from repro.core.cst import _SCORE_KEY, Candidate, ContextStatesTable, CSTEntry
from repro.core.history import HistoryQueue, HistoryRecord
from repro.core.prefetch_queue import FeedbackEvent, PrefetchQueue, QueueEntry
from repro.core.reducer import Reducer, ReducerEntry
from repro.core.reward import FlatRewardFunction, RewardFunction
from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest

#: the generated NamedTuple __new__ is a Python frame per construction
#: that does exactly ``tuple.__new__(cls, (args...))``; calling that
#: directly builds an identical instance without the frame
_tuple_new = tuple.__new__


class ContextPrefetcher(Prefetcher):
    """Reinforcement-learning prefetcher approximating semantic locality."""

    name = "context"

    __slots__ = (
        "config",
        "tracker",
        "reducer",
        "cst",
        "history",
        "queue",
        "policy",
        "reward",
        "hit_depth_histogram",
        "predictions_real",
        "predictions_shadow",
        "rewards_applied",
        "_depth_ema",
        "_feedback_events",
        "window_updates",
        "_granularity",
        "_dmin",
        "_dmax",
        "_adapt_enabled",
        "_overload_period",
        "_adaptive_window",
        "_window_update_period",
        "_sample_depths",
        "_by_block",
        "_cst_entries",
        "_cst_index_mask",
        "_cst_index_bits",
        "_cst_tag_mask",
        "_cst_links",
        "_cst_initial_score",
        "_cst_replace_threshold",
        "_cst_score_min",
        "_cst_score_max",
        "_policy_select",
        "_observe_inline",
        # tracker internals (ContextTracker.capture is inlined in on_access)
        "_block_bytes",
        "_addr_history_depth",
        "_recent_blocks",
        "_addr_hist_memo",
        "_hist_pos",
        "_ctx_values",
        "_ctx_keys",
        "_ctx_capture",
        # reducer internals (Reducer.lookup is inlined in on_access)
        "_r_full_bits",
        "_r_full_mask",
        "_r_reduced_mask",
        "_r_index_mask",
        "_r_index_bits",
        "_r_tag_mask",
        "_r_entries",
        "_r_alloc_active",
        # policy internals (EpsilonGreedyPolicy.select is inlined)
        "_select_inline",
        "_rng_random",
        "_rng_choice",
        "_pol_score_threshold",
        "_pol_degree_thresholds",
        "_pol_max_degree",
        "_pol_adaptive_eps",
        "_pol_eps_min",
        "_pol_eps_range",
        "_pol_fixed_eps",
        "_pol_shadow_on",
        "_pol_shadow_p",
    )

    def __init__(self, config: ContextPrefetcherConfig | None = None):
        self.config = config or ContextPrefetcherConfig()
        cfg = self.config
        self.tracker = ContextTracker(block_bytes=cfg.block_bytes)
        self.reducer = Reducer(cfg)
        self.cst = ContextStatesTable(cfg)
        self.history = HistoryQueue(cfg.history_entries, cfg.sample_depths)
        self.queue = PrefetchQueue(cfg.prefetch_queue_entries)
        self.policy = make_policy(cfg)
        self.reward = self._make_reward(
            cfg.window_lo, cfg.window_hi, cfg.window_center
        )
        #: depth -> count over every resolved prediction (Figure 8 input)
        self.hit_depth_histogram: Counter[int] = Counter()
        self.predictions_real = 0
        self.predictions_shadow = 0
        self.rewards_applied = 0
        # adaptive-window extension state
        self._depth_ema = float(cfg.window_center)
        self._feedback_events = 0
        self.window_updates = 0
        # per-access hot-path constants flattened out of the config (the
        # delta bounds are properties — bit arithmetic per read)
        self._granularity = cfg.delta_granularity
        self._dmin = cfg.delta_min
        self._dmax = cfg.delta_max
        self._adapt_enabled = cfg.adaptive_reduction
        self._overload_period = cfg.overload_check_period
        self._adaptive_window = cfg.adaptive_window
        self._window_update_period = cfg.window_update_period
        # hot-path aliases: the components themselves are never reassigned
        # (reset() clears them in place), so bound methods and their
        # in-place-mutated containers can be bound once here
        self._sample_depths = self.history.sample_depths
        self._by_block = self.queue._by_block
        self._cst_entries = self.cst._entries
        self._cst_index_mask = self.cst._index_mask
        self._cst_index_bits = self.cst._index_bits
        self._cst_tag_mask = self.cst._tag_mask
        self._cst_links = self.cst._links
        self._cst_initial_score = self.cst._initial_score
        self._cst_replace_threshold = self.cst._replace_threshold
        self._cst_score_min = self.cst._score_min
        self._cst_score_max = self.cst._score_max
        self._policy_select = self.policy.select
        # the EMA update is inlined only while the policy keeps the base
        # implementation (guards against a subclass override)
        self._observe_inline = (
            type(self.policy).observe_outcome
            is EpsilonGreedyPolicy.observe_outcome
        )
        # tracker internals: the inlined capture reads/writes the very same
        # buffers ContextTracker.capture would (reset() clears in place)
        tracker = self.tracker
        self._block_bytes = tracker.block_bytes
        self._addr_history_depth = tracker.addr_history_depth
        self._recent_blocks = tracker._recent_blocks
        self._ctx_values = tracker._values
        self._ctx_keys = tracker._keys
        self._ctx_capture = tracker._capture
        #: software memo of the (pure) address-history hash chain, keyed
        #: by the recent-block window; bounded by clearing when full
        self._addr_hist_memo: dict[tuple[int, ...], int] = {}
        #: ``history._count % capacity`` maintained incrementally — this
        #: method is the only writer of the ring during a run
        self._hist_pos = 0
        # reducer internals for the inlined lookup
        reducer = self.reducer
        self._r_full_bits = reducer._full_bits_map
        self._r_full_mask = reducer._full_mask
        self._r_reduced_mask = reducer._reduced_mask
        self._r_index_mask = reducer._index_mask
        self._r_index_bits = reducer._index_bits
        self._r_tag_mask = reducer._tag_mask
        self._r_entries = reducer._entries
        self._r_alloc_active = (
            reducer._full_set if not cfg.adaptive_reduction else reducer._initial
        )
        # policy internals for the inlined ε-greedy select; a subclass
        # (softmax) overrides select, so only the exact base class is
        # inlined — anything else falls back to the bound method
        self._select_inline = type(self.policy) is EpsilonGreedyPolicy
        self._bind_policy_aliases()

    def _bind_policy_aliases(self) -> None:
        """(Re)bind the RNG methods — ``policy.reset()`` replaces the RNG
        object, so the aliases must be refreshed whenever it runs."""
        policy = self.policy
        self._rng_random = policy._rng_random
        self._rng_choice = policy._rng_choice
        self._pol_score_threshold = policy._score_threshold
        self._pol_degree_thresholds = policy._degree_thresholds
        self._pol_max_degree = policy._max_degree
        self._pol_adaptive_eps = policy._adaptive_eps
        self._pol_eps_min = policy._eps_min
        self._pol_eps_range = policy._eps_range
        self._pol_fixed_eps = policy._fixed_eps
        self._pol_shadow_on = policy._shadow_on
        self._pol_shadow_p = policy._shadow_p

    # ------------------------------------------------------------------

    def _line_of(self, addr: int) -> int:
        return addr // self.config.delta_granularity

    def _make_reward(self, lo: int, hi: int, center: int) -> RewardFunction:
        cfg = self.config
        reward_cls = (
            FlatRewardFunction if cfg.reward_shape == "flat" else RewardFunction
        )
        return reward_cls(
            lo=lo,
            hi=hi,
            center=center,
            peak=cfg.reward_peak,
            late_penalty=cfg.late_penalty,
            early_penalty=cfg.early_penalty,
        )

    def _apply_feedback(self, events: list[FeedbackEvent]) -> None:
        reward_fn = self.reward
        # RewardFunction.__call__ is inlined below only for the exact base
        # class (a subclass shape such as the flat ablation keeps the
        # call); arithmetic and clamping are copied verbatim, including
        # the degenerate peak == 1 division-by-zero at evaluation time
        bell = type(reward_fn) is RewardFunction
        lo = reward_fn.lo
        hi = reward_fn.hi
        center = reward_fn.center
        peak = reward_fn.peak
        late = reward_fn.late_penalty
        early = reward_fn.early_penalty
        denom = reward_fn._bell_denom
        exp = math.exp
        policy = self.policy
        observe_inline = self._observe_inline
        alpha = policy._alpha
        # cst.apply_reward inlined: a reward probe is not a prediction
        # lookup, so only the tag check and the candidate scan happen
        cst_entries = self._cst_entries
        index_mask = self._cst_index_mask
        index_bits = self._cst_index_bits
        tag_mask = self._cst_tag_mask
        score_min = self._cst_score_min
        score_max = self._cst_score_max
        histogram = self.hit_depth_histogram
        depth_ema = self._depth_ema
        for event in events:
            depth = event.depth
            if event.expired or depth < 0:
                # negative depths can only come from an index epoch change
                # (e.g. a caller restarting the stream); treat as expiry
                reward = early if bell else reward_fn.expiry_reward()
                hit = False
            else:
                if not bell:
                    reward = reward_fn(depth)
                elif depth < lo:
                    reward = late
                elif depth > hi:
                    reward = early
                else:
                    reward = round(peak * exp(-((depth - center) ** 2) / denom))
                    if reward < 1:
                        reward = 1
                histogram[depth] += 1
                hit = reward > 0
                depth_ema += 0.005 * (depth - depth_ema)
            if observe_inline:
                policy._accuracy_ema += alpha * (float(hit) - policy._accuracy_ema)
            else:
                policy.observe_outcome(hit)
            entry = event.entry
            rh = entry.reduced_hash
            delta = entry.delta
            cst_entry = cst_entries.get(rh & index_mask)
            if cst_entry is not None and cst_entry.tag == (
                (rh >> index_bits) & tag_mask
            ):
                for cand in cst_entry.candidates:
                    if cand.delta == delta:
                        # clamp as apply_reward does; identical since
                        # score_min <= score_max
                        score = cand.score + reward
                        if score > score_max:
                            score = score_max
                        elif score < score_min:
                            score = score_min
                        cand.score = score
                        self.rewards_applied += 1
                        break
        self._depth_ema = depth_ema
        self._feedback_events += len(events)
        if (
            self._adaptive_window
            and self._feedback_events >= self._window_update_period
        ):
            self._feedback_events = 0
            self._recenter_window()

    def _recenter_window(self) -> None:
        """Adaptive-window extension: slide the reward bell to the
        observed hit-depth average, preserving its proportions.

        Section 4.3 notes the target distance spans ~10–90 accesses across
        workloads while a single bell must serve all of them; this closes
        that gap per-workload at run time.
        """
        cfg = self.config
        lo_bound, hi_bound = cfg.window_center_bounds
        center = round(min(hi_bound, max(lo_bound, self._depth_ema)))
        if center == self.reward.center:
            return
        half_lo = cfg.window_center - cfg.window_lo
        half_hi = cfg.window_hi - cfg.window_center
        # the queue must out-span the window (Section 5); clamp hi to it
        hi = min(center + half_hi, cfg.prefetch_queue_entries)
        self.reward = self._make_reward(
            lo=max(1, center - half_lo), hi=hi, center=min(center, hi)
        )
        self.window_updates += 1

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        # --- context capture (ContextTracker.capture inlined) ---------
        # identical buffer writes in identical order; the capture object,
        # values vector and hash memo are the tracker's own, so a later
        # ``tracker.capture`` or ``capture.hash`` call sees the same state
        # drift: begin tracker-capture
        recent = self._recent_blocks
        memo = self._addr_hist_memo
        rkey = tuple(recent)
        addr_hist = memo.get(rkey)
        if addr_hist is None:
            addr_hist = 0
            for blk in recent:
                state = (addr_hist + (blk & _MASK64) + 0x9E3779B97F4A7C15) & _MASK64
                state ^= state >> 30
                state = (state * 0xBF58476D1CE4E5B9) & _MASK64
                state ^= state >> 27
                state = (state * 0x94D049BB133111EB) & _MASK64
                addr_hist = state ^ (state >> 31)
            if len(memo) >= 65536:
                memo.clear()
            memo[rkey] = addr_hist
        addr = access.addr
        block = addr // self._block_bytes
        hints = access.hints
        values = self._ctx_values
        values[_IP] = access.pc
        values[_TYPE_ID] = hints.type_id
        values[_LINK_OFFSET] = hints.link_offset
        values[_REF_FORM] = int(hints.ref_form)
        values[_LAST_VALUE] = access.last_value
        values[_BRANCH_HISTORY] = access.branch_history
        values[_REG_VALUE] = access.reg_value
        values[_ADDR_HISTORY] = addr_hist
        recent.append(block)
        if len(recent) > self._addr_history_depth:
            recent.pop(0)
        keys = self._ctx_keys
        keys.clear()
        capture = self._ctx_capture
        capture.block = block
        # drift: end tracker-capture

        granularity = self._granularity
        line = addr // granularity
        index = access.index
        queue = self.queue
        cst = self.cst

        # --- feedback unit -------------------------------------------
        # match() returns events iff a bucket exists for the line (buckets
        # never persist empty), so the membership probe skips both calls on
        # the common no-feedback access
        if line in self._by_block:
            self._apply_feedback(queue.match(line, index))

        # --- collection unit -----------------------------------------
        # the history ring is read in place (HistoryQueue.sample() inlined:
        # this loop runs per access, and the sampled depths are sorted so
        # the occupancy check is a break, not a filter)
        history = self.history
        count = history._count
        pos = self._hist_pos  # == count % capacity; sampled depths never
        # exceed the capacity, so one conditional add folds the index back
        ring = history._ring
        capacity = history.capacity
        if count:
            dmin = self._dmin
            dmax = self._dmax
            cst_entries = self._cst_entries
            index_mask = self._cst_index_mask
            index_bits = self._cst_index_bits
            tag_mask = self._cst_tag_mask
            for depth in self._sample_depths:
                if depth > count:
                    break
                ridx = pos - depth
                if ridx < 0:
                    ridx += capacity
                record = ring[ridx]
                delta = line - record.line
                if delta and dmin <= delta <= dmax:
                    # cst.add_association inlined (its return value is
                    # unused here); the delta-window test above subsumes
                    # its range check — same configured bounds — so the
                    # range-reject counter cannot fire from this path
                    rh = record.reduced_hash
                    eidx = rh & index_mask
                    etag = (rh >> index_bits) & tag_mask
                    entry = cst_entries.get(eidx)
                    if entry is None or entry.tag != etag:
                        if entry is not None:
                            cst.conflict_evictions += 1
                        entry = CSTEntry(tag=etag)
                        cst_entries[eidx] = entry
                    candidates = entry.candidates
                    for cand in candidates:
                        if cand.delta == delta:
                            break
                    else:
                        if len(candidates) < self._cst_links:
                            candidates.append(
                                Candidate(delta, self._cst_initial_score)
                            )
                            cst.associations_added += 1
                        else:
                            # first-minimum scan over the (short, bounded)
                            # candidate list == min(candidates, key=score)
                            victim = candidates[0]
                            vscore = victim.score
                            for cand in candidates:
                                if cand.score < vscore:
                                    victim = cand
                                    vscore = cand.score
                            if vscore <= self._cst_replace_threshold:
                                victim.delta = delta
                                victim.score = self._cst_initial_score
                                entry.replacements += 1
                                cst.associations_added += 1
                            else:
                                cst.associations_rejected_full += 1

        # --- context reduction (Reducer.lookup inlined) ---------------
        # The memo was cleared by the capture above, so the full-set probe
        # always misses; the hash is computed and memoised exactly as the
        # method would, leaving the memo in the identical state for any
        # later ``capture.hash`` call (e.g. from Reducer.adapt).
        # drift: begin reducer-lookup
        full_bits = self._r_full_bits
        key = hash((full_bits, *values))
        key = (key * 0x9E3779B97F4A7C15) & _MASK64
        key ^= key >> 29
        keys[full_bits] = key
        full_hash = key & self._r_full_mask
        r_index = full_hash & self._r_index_mask
        r_tag = (full_hash >> self._r_index_bits) & self._r_tag_mask
        r_entries = self._r_entries
        rentry = r_entries.get(r_index)
        reducer = self.reducer
        if rentry is None or rentry.tag != r_tag:
            if rentry is not None:
                reducer.conflict_evictions += 1
                if rentry.cst_key is not None:
                    cst.remove_pointer(rentry.cst_key)
            rentry = ReducerEntry(tag=r_tag, active=self._r_alloc_active)
            r_entries[r_index] = rentry
            reducer.allocations += 1
        rentry.lookups += 1
        active = rentry.active
        active_bits = active.bits
        if active_bits == full_bits:
            # the method's memo probe would hit the entry written above
            reduced_key = key
        else:
            indices = active.indices
            if len(indices) == len(values):
                reduced_key = hash((active_bits, *values))
            else:
                reduced_key = hash((active_bits, *[values[i] for i in indices]))
            reduced_key = (reduced_key * 0x9E3779B97F4A7C15) & _MASK64
            reduced_key ^= reduced_key >> 29
            keys[active_bits] = reduced_key
        reduced = reduced_key & self._r_reduced_mask
        if rentry.cst_key != reduced:
            if rentry.cst_key is not None:
                cst.remove_pointer(rentry.cst_key)
            cst.add_pointer(reduced)
            rentry.cst_key = reduced
        # Reducer.adapt's early-outs (disabled / between check periods)
        # are evaluated here so the common case skips the call entirely
        if (
            self._adapt_enabled
            and rentry.lookups - rentry.lookups_at_last_adapt
            >= self._overload_period
        ):
            reduced = reducer.adapt(rentry, capture, cst, reduced)
        # drift: end reducer-lookup

        # --- prediction unit ------------------------------------------
        # (cst.lookup inlined: direct-mapped probe with tag check; only a
        # match counts as a prediction lookup, exactly as the method does)
        requests: list[PrefetchRequest] = []
        cst_entry = self._cst_entries.get(reduced & self._cst_index_mask)
        if cst_entry is not None and cst_entry.tag == (
            (reduced >> self._cst_index_bits) & self._cst_tag_mask
        ):
            cst_entry.lookups += 1
            # EpsilonGreedyPolicy.select inlined (identical RNG draw order
            # and counter updates); a subclass policy keeps the call
            # drift: begin policy-select
            candidates = cst_entry.candidates
            real_sel: list[Candidate] = []
            shadow_sel: list[Candidate] = []
            if not candidates:
                pass  # select returns empty before any RNG draw
            elif self._select_inline:
                policy = self.policy
                ema = policy._accuracy_ema
                if len(candidates) == 1:
                    # one-element sort is the identity; degree >= 1 means
                    # the top-slice is the lone candidate at any level
                    cand = candidates[0]
                    ranked = [cand]
                    if cand.score >= self._pol_score_threshold:
                        real_sel.append(cand)
                else:
                    ranked = sorted(candidates, key=_SCORE_KEY, reverse=True)
                    level = 1
                    for threshold in self._pol_degree_thresholds:
                        if ema >= threshold:
                            level += 1
                    if level > self._pol_max_degree:
                        level = self._pol_max_degree
                    threshold = self._pol_score_threshold
                    real_sel = [
                        cand for cand in ranked[:level] if cand.score >= threshold
                    ]
                if self._pol_adaptive_eps:
                    eps = self._pol_eps_min + self._pol_eps_range * (1.0 - ema)
                else:
                    eps = self._pol_fixed_eps
                if self._rng_random() < eps:
                    choice = self._rng_choice(ranked)
                    policy.explorations += 1
                    if all(choice is not c for c in real_sel):
                        real_sel.append(choice)
                else:
                    policy.exploitations += 1
                if self._pol_shadow_on and self._rng_random() < self._pol_shadow_p:
                    choice = self._rng_choice(ranked)
                    if all(choice is not c for c in real_sel):
                        shadow_sel.append(choice)
            else:
                selection = self._policy_select(cst_entry)
                real_sel = selection.real
                shadow_sel = selection.shadow
            # drift: end policy-select
            by_block = self._by_block
            q = queue._queue
            q_capacity = queue.capacity
            for cand in real_sel:
                target_line = line + cand.delta
                if target_line < 0:
                    continue
                # A line already predicted by an outstanding entry is
                # re-added as a shadow prefetch to train another pair
                # (Section 4.2).  (outstanding_for inlined: a present
                # bucket is non-empty.)
                shadow = bool(by_block.get(target_line))
                entry = QueueEntry(reduced, cand.delta, target_line, index, shadow)
                # queue.push inlined; a single append overflows the
                # FIFO by at most one entry, so the expiry batch is a
                # zero-or-one-event list exactly as push would return
                q.append(entry)
                bucket = by_block.get(target_line)
                if bucket is None:
                    by_block[target_line] = [entry]
                else:
                    bucket.append(entry)
                if len(q) > q_capacity:
                    evicted = q.popleft()
                    bucket = by_block.get(evicted.target_block)
                    if bucket is not None:
                        try:
                            bucket.remove(evicted)
                        except ValueError:
                            pass
                        if not bucket:
                            del by_block[evicted.target_block]
                    if not evicted.hit:
                        queue.expirations += 1
                        self._apply_feedback(
                            [_tuple_new(FeedbackEvent, (evicted, q_capacity, True))]
                        )
                if shadow:
                    self.predictions_shadow += 1
                else:
                    self.predictions_real += 1
                requests.append(
                    _tuple_new(
                        PrefetchRequest, (target_line * granularity, shadow, entry)
                    )
                )
            for cand in shadow_sel:
                # same push path with shadow pinned True (the outstanding
                # re-add check is a no-op for an already-shadow prediction)
                target_line = line + cand.delta
                if target_line < 0:
                    continue
                entry = QueueEntry(reduced, cand.delta, target_line, index, True)
                q.append(entry)
                bucket = by_block.get(target_line)
                if bucket is None:
                    by_block[target_line] = [entry]
                else:
                    bucket.append(entry)
                if len(q) > q_capacity:
                    evicted = q.popleft()
                    bucket = by_block.get(evicted.target_block)
                    if bucket is not None:
                        try:
                            bucket.remove(evicted)
                        except ValueError:
                            pass
                        if not bucket:
                            del by_block[evicted.target_block]
                    if not evicted.hit:
                        queue.expirations += 1
                        self._apply_feedback(
                            [_tuple_new(FeedbackEvent, (evicted, q_capacity, True))]
                        )
                self.predictions_shadow += 1
                requests.append(
                    _tuple_new(
                        PrefetchRequest, (target_line * granularity, True, entry)
                    )
                )

        # --- record this context for future collection ----------------
        # (HistoryQueue.push inlined; nothing above pushed, so ``count``
        # still names the next slot)
        ring[pos] = _tuple_new(HistoryRecord, (reduced, block, line, index))
        history._count = count + 1
        pos += 1
        self._hist_pos = 0 if pos == capacity else pos
        return requests

    # ------------------------------------------------------------------

    def on_prefetch_issue(
        self, request: PrefetchRequest, issued: bool, reason: str
    ) -> None:
        """Memory-pressure rejections convert the prediction to a shadow op."""
        if issued or request.shadow:
            return
        entry = request.meta
        if isinstance(entry, QueueEntry):
            entry.shadow = True
            self.predictions_real -= 1
            self.predictions_shadow += 1

    # ------------------------------------------------------------------

    def storage_bits(self) -> int:
        return self.config.storage_bits()

    def accuracy(self) -> float:
        return self.policy.accuracy

    def is_pristine(self) -> bool:
        # every on_access ends by pushing a history record, and the RNG,
        # CST, reducer, queue and tracker only mutate inside on_access —
        # an empty history implies the whole prefetcher is untouched (the
        # counters are a belt against hand-mutated state)
        return (
            self.history._count == 0
            and not self._by_block
            and self.predictions_real == 0
            and self.predictions_shadow == 0
            and self.rewards_applied == 0
            and not self.hit_depth_histogram
        )

    def reset(self) -> None:
        cfg = self.config
        self.tracker.reset()
        self.reducer.reset()
        self.cst.reset()
        self.history.reset()
        self.queue.reset()
        self.policy.reset()
        self._addr_hist_memo.clear()
        self._hist_pos = 0
        # policy.reset() replaces its RNG; every other component clears in
        # place, so only the policy aliases need rebinding
        self._bind_policy_aliases()
        self.hit_depth_histogram.clear()
        self.predictions_real = 0
        self.predictions_shadow = 0
        self.rewards_applied = 0
        self._depth_ema = float(cfg.window_center)
        self._feedback_events = 0
        self.window_updates = 0
        self.reward = self._make_reward(
            cfg.window_lo, cfg.window_hi, cfg.window_center
        )
