"""Tests for result containers and derived metrics."""

import pytest

from repro.memory.stats import AccessClass, AccessClassifier, CacheStats
from repro.sim.metrics import HitDepthCDF, SimulationResult, geomean


class TestGeomean:
    def test_single_value(self):
        assert geomean([2.0]) == pytest.approx(2.0)

    def test_classic_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestHitDepthCDF:
    def test_cdf_monotone_and_terminal(self):
        cdf = HitDepthCDF()
        for depth in (10, 20, 20, 30):
            cdf.add(depth)
        series = cdf.cdf(max_depth=40)
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_cdf_step_positions(self):
        cdf = HitDepthCDF()
        cdf.add(5, count=3)
        cdf.add(10, count=1)
        series = dict(cdf.cdf(max_depth=12))
        assert series[4] == 0.0
        assert series[5] == pytest.approx(0.75)
        assert series[10] == pytest.approx(1.0)

    def test_window_fractions_partition(self):
        cdf = HitDepthCDF()
        for depth in (5, 20, 30, 60):
            cdf.add(depth)
        late = cdf.fraction_late(18)
        inside = cdf.fraction_in_window(18, 50)
        early = cdf.fraction_early(50)
        assert late + inside + early == pytest.approx(1.0)
        assert inside == pytest.approx(0.5)

    def test_empty_cdf(self):
        cdf = HitDepthCDF()
        assert cdf.total == 0
        assert cdf.fraction_in_window(18, 50) == 0.0
        assert all(v == 0.0 for _, v in cdf.cdf(10))

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            HitDepthCDF().add(-1)


def result(ipc_cycles, instructions=1000, **kwargs) -> SimulationResult:
    defaults = dict(
        workload="w",
        prefetcher="p",
        instructions=instructions,
        cycles=ipc_cycles,
        l1=CacheStats(name="L1D"),
        l2=CacheStats(name="L2"),
        classifier=AccessClassifier(),
        hit_depths=HitDepthCDF(),
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_ipc_cpi(self):
        r = result(ipc_cycles=500)
        assert r.ipc == pytest.approx(2.0)
        assert r.cpi == pytest.approx(0.5)

    def test_speedup_over(self):
        fast, slow = result(500), result(1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_mpki_delegates_to_stats(self):
        r = result(500)
        for _ in range(10):
            r.l1.record(hit=False)
        assert r.l1_mpki == pytest.approx(10.0)

    def test_class_fraction(self):
        r = result(500)
        r.classifier.record_demand(AccessClass.HIT_PREFETCHED)
        assert r.class_fraction(AccessClass.HIT_PREFETCHED) == 1.0

    def test_summary_mentions_names(self):
        text = result(500).summary()
        assert "w/p" in text and "IPC" in text
