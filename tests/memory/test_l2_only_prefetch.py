"""Tests for the L2-only prefetch fill mode (ablation of Section 4.3)."""

from repro.memory.hierarchy import Hierarchy, HierarchyConfig
from repro.memory.stats import AccessClass

ADDR = 0x40000


def l2_only() -> Hierarchy:
    return Hierarchy(HierarchyConfig(prefetch_fill_l1=False))


class TestL2OnlyMode:
    def test_prefetch_fills_l2_not_l1(self):
        hier = l2_only()
        out = hier.prefetch(ADDR, now=0)
        hier.drain(out.completes_at + 1)
        assert hier.l2.contains(ADDR // 64)
        assert not hier.l1.contains(ADDR // 64)

    def test_demand_after_prefetch_is_l2_hit(self):
        hier = l2_only()
        out = hier.prefetch(ADDR, now=0)
        result = hier.demand_access(ADDR, now=out.completes_at + 1)
        assert not result.l1_hit and result.l2_hit
        assert result.latency == 22

    def test_l2_resident_prefetch_rejected(self):
        hier = l2_only()
        out = hier.prefetch(ADDR, now=0)
        hier.drain(out.completes_at + 1)
        second = hier.prefetch(ADDR, now=out.completes_at + 10)
        assert not second.issued
        assert second.reason == "resident-l2"

    def test_demand_fills_still_reach_l1(self):
        hier = l2_only()
        first = hier.demand_access(ADDR, now=0)
        result = hier.demand_access(ADDR, now=first.latency + 10)
        assert result.l1_hit

    def test_no_l1_prefetch_pollution(self):
        hier = l2_only()
        # resident demand line in L1
        first = hier.demand_access(ADDR, now=0)
        t = first.latency + 10
        # prefetch many conflicting lines; L1 contents must be untouched
        for i in range(1, 20):
            hier.prefetch(ADDR + i * 64 * 128, now=t)
        hier.drain(t + 5000)
        assert hier.l1.contains(ADDR // 64)

    def test_default_mode_still_fills_l1(self):
        hier = Hierarchy()
        out = hier.prefetch(ADDR, now=0)
        result = hier.demand_access(ADDR, now=out.completes_at + 1)
        assert result.l1_hit
        assert result.access_class is AccessClass.HIT_PREFETCHED
