"""Action selection: ε-greedy contextual bandit with adaptive exploration.

Section 4.1: the prefetcher usually exploits (prefetch the highest-scoring
candidate) but periodically explores a random candidate from the set of
previously correlated addresses.  Exploration shrinks as accuracy
converges, after Tokic's value-difference-based adaptation — here the
signal is the exponential moving average of the prefetch-queue hit rate.
"""

from __future__ import annotations

import math
import random
from operator import attrgetter
from typing import NamedTuple

from repro.core.config import ContextPrefetcherConfig
from repro.core.cst import Candidate, CSTEntry

#: same C-level score key as the CST's ranking (identical ordering to
#: ``CSTEntry.ranked()``)
_SCORE_KEY = attrgetter("score")


class Selection(NamedTuple):
    """Candidates chosen for one prediction round (immutable)."""

    real: list[Candidate]
    shadow: list[Candidate]
    explored: bool = False


class EpsilonGreedyPolicy:
    """Selects prefetch candidates from a CST entry."""

    __slots__ = (
        "config",
        "_rng",
        "_rng_random",
        "_rng_choice",
        "_accuracy_ema",
        "_alpha",
        "_adaptive_eps",
        "_eps_min",
        "_eps_range",
        "_fixed_eps",
        "_degree_thresholds",
        "_max_degree",
        "_score_threshold",
        "_shadow_on",
        "_shadow_p",
        "explorations",
        "exploitations",
    )

    def __init__(self, config: ContextPrefetcherConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        # select() runs on every CST hit; bind the RNG methods and flatten
        # the (immutable-per-run) config knobs into plain attributes
        self._rng_random = self._rng.random
        self._rng_choice = self._rng.choice
        self._accuracy_ema = 0.0
        self._alpha = config.accuracy_ema_alpha
        self._adaptive_eps = config.adaptive_epsilon
        self._eps_min = config.epsilon_min
        self._eps_range = config.epsilon_max - config.epsilon_min
        self._fixed_eps = config.fixed_epsilon
        self._degree_thresholds = config.degree_thresholds
        self._max_degree = config.max_degree
        self._score_threshold = config.prefetch_score_threshold
        self._shadow_on = config.shadow_prefetches
        self._shadow_p = config.shadow_probability
        self.explorations = 0
        self.exploitations = 0

    # ------------------------------------------------------------------
    # accuracy tracking

    @property
    def accuracy(self) -> float:
        return self._accuracy_ema

    def observe_outcome(self, hit: bool) -> None:
        """Fold one resolved prediction into the accuracy EMA."""
        self._accuracy_ema += self._alpha * (float(hit) - self._accuracy_ema)

    def epsilon(self) -> float:
        """Current exploration rate."""
        if not self._adaptive_eps:
            return self._fixed_eps
        # High accuracy -> little exploration; cold predictor -> lots.
        return self._eps_min + self._eps_range * (1.0 - self._accuracy_ema)

    # ------------------------------------------------------------------
    # degree throttling (Section 4.2)

    def degree(self) -> int:
        """Prefetch degree as a function of the accuracy EMA."""
        ema = self._accuracy_ema
        level = 1
        for threshold in self._degree_thresholds:
            if ema >= threshold:
                level += 1
        return min(level, self._max_degree)

    # ------------------------------------------------------------------

    def select(self, entry: CSTEntry) -> Selection:
        """Pick real and shadow candidates from a CST entry.

        Exploit: the top-scoring candidates above the prefetch threshold,
        up to the current degree.  Explore: with probability ε, one random
        stored candidate is prefetched *for real* even if unproven (that
        is the bandit's exploration arm).  Additional random candidates go
        out as shadow prefetches to gather off-policy feedback.
        """
        candidates = entry.candidates
        if not candidates:
            return Selection([], [])
        ema = self._accuracy_ema
        if len(candidates) == 1:
            # a one-element sort is the identity, and since the degree is
            # always >= 1 the top-slice is this lone candidate whatever
            # level the thresholds would have produced
            cand = candidates[0]
            ranked = [cand]
            real = [cand] if cand.score >= self._score_threshold else []
        else:
            ranked = sorted(candidates, key=_SCORE_KEY, reverse=True)
            level = 1
            for threshold in self._degree_thresholds:
                if ema >= threshold:
                    level += 1
            if level > self._max_degree:
                level = self._max_degree
            threshold = self._score_threshold
            real = [cand for cand in ranked[:level] if cand.score >= threshold]

        if self._adaptive_eps:
            eps = self._eps_min + self._eps_range * (1.0 - ema)
        else:
            eps = self._fixed_eps
        explored = False
        if self._rng_random() < eps:
            choice = self._rng_choice(ranked)
            explored = True
            self.explorations += 1
            if all(choice is not c for c in real):
                real.append(choice)
        else:
            self.exploitations += 1

        shadow: list[Candidate] = []
        if self._shadow_on and self._rng_random() < self._shadow_p:
            choice = self._rng_choice(ranked)
            if all(choice is not c for c in real):
                shadow.append(choice)
        return Selection(real, shadow, explored)

    def reset(self) -> None:
        self._rng = random.Random(self.config.seed)
        self._rng_random = self._rng.random
        self._rng_choice = self._rng.choice
        self._accuracy_ema = 0.0
        self.explorations = 0
        self.exploitations = 0


class SoftmaxPolicy(EpsilonGreedyPolicy):
    """Boltzmann action selection over candidate scores.

    One of the paper's future-work directions ("policy improvement
    techniques in the spirit of policy search"): instead of picking the
    max-score candidate and exploring uniformly at random, candidates are
    sampled with probability ∝ exp(score / τ).  The temperature anneals
    with the accuracy EMA, so a converged predictor becomes near-greedy
    while a cold one explores broadly.
    """

    __slots__ = ()

    def temperature(self) -> float:
        cfg = self.config
        # anneal toward 1/4 of the base temperature as accuracy -> 1
        return cfg.softmax_temperature * (1.0 - 0.75 * self._accuracy_ema)

    def _sample(self, candidates: list[Candidate]) -> Candidate:
        tau = self.temperature()
        top = max(c.score for c in candidates)
        weights = [math.exp((c.score - top) / tau) for c in candidates]
        return self._rng.choices(candidates, weights)[0]

    def select(self, entry: CSTEntry) -> Selection:
        cfg = self.config
        ranked = entry.ranked()
        if not ranked:
            return Selection(real=[], shadow=[])

        real: list[Candidate] = []
        for _ in range(self.degree()):
            pool = [
                c
                for c in ranked
                if all(c is not chosen for chosen in real)
            ]
            if not pool:
                break
            choice = self._sample(pool)
            if choice is ranked[0]:
                self.exploitations += 1
            else:
                self.explorations += 1
            # sampled low scorers below the prefetch threshold still count
            # as exploration and go out for real, like the ε-greedy arm
            real.append(choice)

        shadow: list[Candidate] = []
        if cfg.shadow_prefetches and self._rng.random() < cfg.shadow_probability:
            choice = self._rng.choice(ranked)
            if all(choice is not c for c in real):
                shadow.append(choice)
        return Selection(real=real, shadow=shadow, explored=bool(real))


def make_policy(config: ContextPrefetcherConfig) -> EpsilonGreedyPolicy:
    """Instantiate the configured action-selection policy."""
    if config.policy == "softmax":
        return SoftmaxPolicy(config)
    return EpsilonGreedyPolicy(config)
