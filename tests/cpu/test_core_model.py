"""Tests for the interval OoO timing model."""

import pytest

from repro.cpu.core_model import CoreConfig, CoreModel


def run_accesses(model: CoreModel, accesses):
    """Drive (inst_gap, latency, depends) triples through the model."""
    for gap, latency, depends in accesses:
        issue = model.issue_time(gap, depends_on_prev=depends)
        model.complete(issue, latency, gap)
    return model.finalize()


class TestFrontendBandwidth:
    def test_all_hits_run_at_issue_width(self):
        model = CoreModel(CoreConfig(issue_width=4))
        stats = run_accesses(model, [(3, 2, False)] * 100)
        # 400 instructions at 4-wide ≈ 100 cycles (+ the final hit latency)
        assert stats.instructions == 400
        assert stats.cycles == pytest.approx(100, abs=5)

    def test_ipc_capped_by_width(self):
        model = CoreModel(CoreConfig(issue_width=4))
        stats = run_accesses(model, [(7, 2, False)] * 50)
        assert stats.ipc <= 4.0


class TestDependenceSerialisation:
    def test_dependent_chain_serialises_on_latency(self):
        model = CoreModel(CoreConfig())
        stats = run_accesses(model, [(1, 300, True)] * 10)
        # each access waits for the previous completion: ≥ 9 * 300
        assert stats.cycles >= 9 * 300

    def test_independent_misses_overlap(self):
        dep = CoreModel(CoreConfig())
        dep_stats = run_accesses(dep, [(1, 300, True)] * 10)
        indep = CoreModel(CoreConfig())
        indep_stats = run_accesses(indep, [(1, 300, False)] * 10)
        # MLP: independent misses take a fraction of the serial time
        assert indep_stats.cycles < dep_stats.cycles / 3


class TestWindowLimits:
    def test_load_queue_bounds_outstanding(self):
        model = CoreModel(CoreConfig(lq_size=2, rob_size=10_000))
        stats = run_accesses(model, [(0, 100, False)] * 10)
        # only 2 outstanding: every pair of accesses costs ~100 cycles
        assert stats.cycles >= 4 * 100

    def test_rob_blocks_distant_issue(self):
        # one long miss followed by many short ops: the ROB fills and
        # stalls the frontend until the miss returns
        model = CoreModel(CoreConfig(issue_width=4, rob_size=64, lq_size=32))
        accesses = [(0, 1000, False)] + [(3, 2, False)] * 100
        stats = run_accesses(model, accesses)
        assert stats.cycles >= 1000

    def test_large_rob_hides_short_latency(self):
        model = CoreModel(CoreConfig(issue_width=4, rob_size=192, lq_size=32))
        # L2-hit latencies (22 cycles) should be fully hidden
        stats = run_accesses(model, [(7, 22, False)] * 100)
        assert stats.ipc > 3.0


class TestAccounting:
    def test_instruction_count_includes_gaps_and_access(self):
        model = CoreModel()
        stats = run_accesses(model, [(5, 2, False)] * 10)
        assert stats.instructions == 60
        assert stats.memory_accesses == 10

    def test_monotonic_issue_times(self):
        model = CoreModel()
        last = -1
        for gap, lat, dep in [(1, 300, False), (1, 2, False), (1, 300, True)] * 20:
            issue = model.issue_time(gap, depends_on_prev=dep)
            assert issue >= last
            last = issue
            model.complete(issue, lat, gap)

    def test_zero_accesses_finalize(self):
        model = CoreModel()
        stats = model.finalize()
        assert stats.cycles == 0
        assert stats.ipc == 0.0
