"""The no-prefetch baseline (the denominator of every speedup figure)."""

from __future__ import annotations

from repro.prefetchers.base import AccessInfo, Prefetcher, PrefetchRequest


class NoPrefetcher(Prefetcher):
    """Observes the stream and never prefetches."""

    name = "none"

    __slots__ = ()

    def on_access(self, access: AccessInfo) -> list[PrefetchRequest]:
        return []

    def storage_bits(self) -> int:
        return 0

    def is_pristine(self) -> bool:
        return True  # stateless: always adoptable by the native kernel
