"""Workload substrate: executable models of the paper's benchmarks.

Each workload is a :class:`~repro.workloads.trace.TraceProgram` that plays
the role of a benchmark binary running under gem5: it emits the demand
memory-access stream, the interleaved instruction counts, branch outcomes,
live register values, and the compiler-injected semantic hints the paper's
LLVM pass would have produced.

The suites mirror Table 3: SPEC CPU2006 proxies, PBBS, Graph500, HPCS
(SSCA2), and the μkernels (algorithms and data-structure traversals).
"""

from repro.workloads.trace import Heap, MemoryAccess, TraceBuilder, TraceProgram
from repro.workloads.suites import (
    SUITES,
    WorkloadSpec,
    all_workloads,
    get_workload,
    workloads_in_suite,
)

__all__ = [
    "Heap",
    "MemoryAccess",
    "SUITES",
    "TraceBuilder",
    "TraceProgram",
    "WorkloadSpec",
    "all_workloads",
    "get_workload",
    "workloads_in_suite",
]
