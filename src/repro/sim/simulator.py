"""The trace-driven simulator: one workload, one prefetcher, one run.

Replays a workload trace through the branch-history register, the core
timing model and the cache hierarchy, feeding each demand access to the
prefetcher and dispatching the prefetches it returns.  Produces the
:class:`~repro.sim.metrics.SimulationResult` every figure consumes.
"""

from __future__ import annotations

import gc
import itertools
from collections import deque
from typing import Iterable

from repro.cpu.branch import BranchHistoryRegister
from repro.cpu.core_model import CoreStats
from repro.memory.stats import AccessClass, AccessClassifier, CacheStats
from repro.cpu.core_model import CoreConfig, CoreModel
from repro.memory.hierarchy import Hierarchy, HierarchyConfig
from repro.prefetchers.base import AccessInfo, Prefetcher
from repro.sim.metrics import HitDepthCDF, SimulationResult
from repro.workloads.trace import MemoryAccess


class Simulator:
    """Drives one prefetcher through one access trace."""

    def __init__(
        self,
        prefetcher: Prefetcher,
        *,
        hierarchy_config: HierarchyConfig | None = None,
        core_config: CoreConfig | None = None,
        bhr_bits: int = 8,
        native: bool = False,
    ):
        self.prefetcher = prefetcher
        self.hierarchy = Hierarchy(hierarchy_config)
        self.core = CoreModel(core_config or CoreConfig())
        self.bhr = BranchHistoryRegister(bits=bhr_bits)
        self._line_bytes = self.hierarchy.config.line_bytes
        self._cycle_base = 0
        #: run through the compiled batch kernel where possible; runs the
        #: kernel cannot represent exactly (the RL context prefetcher,
        #: out-of-range traces) drop back to the interpreted loop below
        self.native = bool(native)
        #: did the most recent :meth:`run` go through the compiled kernel?
        #: (profiling reads this to know where the counters live)
        self.last_run_native = False
        #: why the most recent :meth:`run` fell back to the interpreted
        #: loop (``None`` when it stayed native); sweep summaries
        #: aggregate these strings into the fallback report
        self.last_native_fallback: str | None = None

    def _reset_stats(self) -> None:
        """Zero the statistics counters without disturbing warm state.

        Caches, MSHRs, in-flight fills and the prefetcher's learned state
        all survive; only the counters (and the cycle baseline) restart.
        Used by the ``warmup`` mode of :meth:`run`.
        """
        hier = self.hierarchy
        stats = self.core.finalize()
        self._cycle_base = stats.cycles
        hier.l1_stats = CacheStats(name="L1D")
        hier.l2_stats = CacheStats(name="L2")
        hier.prefetches_issued = 0
        hier.prefetches_rejected_mshr = 0
        hier.prefetches_redundant = 0
        hier.l1.unused_prefetch_evictions = 0
        hier.l1.used_prefetch_fills = 0
        self.core.stats = CoreStats()

    def run(
        self,
        trace: "Iterable[MemoryAccess]",
        *,
        workload_name: str = "trace",
        limit: int | None = None,
        start_index: int = 0,
        warmup: int = 0,
    ) -> SimulationResult:
        """Replay ``trace`` (optionally truncated to ``limit`` accesses).

        ``trace`` may be any iterable — a workload's list or a streaming
        reader such as :func:`repro.workloads.serialize.iter_trace`.
        (``warmup`` mode materialises the stream, since it replays a
        prefix separately.)

        ``start_index`` offsets the access-stream indices handed to the
        prefetcher — used by multi-phase runs that keep prefetcher state
        across phases, so hit depths remain monotone across the seam.

        ``warmup`` runs that many leading accesses through the caches and
        the prefetcher *before* statistics start counting — the standard
        simulator practice for measuring steady state (the paper simulates
        pre-characterised steady-state phases, Section 6).
        """
        if self.native:
            # the native adapter handles warmup itself; when it cannot
            # take the run it returns the (possibly materialised) trace
            # for the interpreted path below
            from repro.sim import native as native_kernel

            handled, result, trace, limit, reason = native_kernel.try_native_run(
                self,
                trace,
                workload_name=workload_name,
                limit=limit,
                start_index=start_index,
                warmup=warmup,
            )
            self.last_run_native = handled
            self.last_native_fallback = reason
            if handled:
                return result
        else:
            self.last_run_native = False
            self.last_native_fallback = "native mode disabled"
        if warmup:
            # materialise while applying the limit — a truncated long
            # trace must not be built in full just to slice a prefix
            accesses = (
                list(itertools.islice(trace, limit))
                if limit is not None
                else list(trace)
            )
            if warmup >= len(accesses):
                raise ValueError("warmup consumes the whole trace")
            self.run(
                accesses[:warmup],
                workload_name=workload_name,
                start_index=start_index,
            )
            self._reset_stats()
            return self.run(
                accesses[warmup:],
                workload_name=workload_name,
                start_index=start_index + warmup,
            )
        hier = self.hierarchy
        core = self.core
        pf = self.prefetcher
        bhr = self.bhr
        hit_depths = HitDepthCDF()
        classifier = AccessClassifier()
        #: line -> access index of the most recent (real or shadow)
        #: prediction; mirrors the paper's 128-entry prefetch queue, so
        #: hits deeper than the queue capacity count as expirations
        predicted_at: dict[int, int] = {}
        #: (index, line) insertion log: entries older than the depth cap
        #: are invisible to both read paths (a demand hit beyond the cap
        #: is not counted, and a stale timestamp is overwritten exactly
        #: like an absent one), so aging them out incrementally via the
        #: log is result-identical to the old periodic full-dict rebuild
        prediction_log: deque[tuple[int, int]] = deque()
        depth_cap = 128
        last_value = 0
        issued_real = 0
        issued_shadow = 0
        line_bytes = self._line_bytes

        # bound-method/local hoists for the per-access loop
        update_many = bhr.update_many
        demand_access = hier.demand_access
        # CoreModel.issue_time/complete inlined below — the simulator owns
        # its core (constructed in __init__, never replaced), so the model
        # state lives in locals for the loop and is written back after;
        # the arithmetic is copied verbatim from core_model.py
        cursor = core._cursor
        last_completion = core._last_completion
        max_completion = core._max_completion
        inst_pos = core._inst_pos
        rob_floor = core._rob_floor
        issue_width = core._issue_width
        rob_size = core._rob_size
        lq_ring = core._lq_ring
        lq_maxlen = lq_ring.maxlen
        rob_window = core._rob_window
        lq_append = lq_ring.append
        rob_append = rob_window.append
        rob_popleft = rob_window.popleft
        core_stats = core.stats
        stall_cycles = 0
        instructions = 0
        memory_accesses = 0
        # classifier.record_demand inlined: demand classes can never be
        # PREFETCH_NEVER_HIT (its guard is unreachable from this path) and
        # the per-access total is folded in once after the loop.  Counting
        # happens in plain-int locals matched by identity (Enum equality
        # IS identity) so the loop never pays the Python-level enum hash;
        # the counts dict is pre-seeded in ACCESS_CLASS_ORDER, so folding
        # the totals in afterwards cannot change its iteration order.
        ac_hit_older = AccessClass.HIT_OLDER_DEMAND
        ac_miss = AccessClass.MISS_NOT_PREFETCHED
        ac_hit_pref = AccessClass.HIT_PREFETCHED
        ac_shorter = AccessClass.SHORTER_WAIT
        c_hit_older = c_miss = c_hit_pref = c_shorter = c_non_timely = 0
        n_accesses = 0
        add_depth = hit_depths.add
        on_access = pf.on_access
        on_prefetch_issue = pf.on_prefetch_issue
        note_unissued = hier.note_unissued_prediction
        hier_prefetch = hier.prefetch
        log_append = prediction_log.append
        log_popleft = prediction_log.popleft
        predicted_pop = predicted_at.pop
        predicted_get = predicted_at.get
        # the generated NamedTuple __new__ is a Python frame per access
        # that does exactly tuple.__new__(cls, (args...)); call it direct
        tuple_new = tuple.__new__

        accesses = itertools.islice(trace, limit) if limit is not None else trace
        # The loop allocates only acyclic transients (records, events,
        # result tuples) that reference counting frees immediately, so the
        # cyclic collector can never reclaim anything here — but its
        # periodic scans walk the resident traces and tables and cost a
        # double-digit percentage of the run.  Pause it for the loop and
        # restore the caller's setting after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            for index, access in enumerate(accesses, start=start_index):
                branches = access.branches
                if branches:  # update_many no-ops on an empty tuple
                    update_many(branches)
                # inst_gap already includes branch instructions (TraceBuilder
                # contract); branches are carried separately only for the BHR
                gap = access.inst_gap
                addr = access.addr

                # --- CoreModel.issue_time inlined -----------------------
                # drift: begin core-issue-time
                issue_f = cursor + (gap + 1) / issue_width
                if access.depends_on_prev and last_completion > issue_f:
                    issue_f = last_completion
                if len(lq_ring) == lq_maxlen and lq_ring[0] > issue_f:
                    issue_f = lq_ring[0]
                if rob_window:
                    rob_horizon = inst_pos + gap + 1 - rob_size
                    while rob_window and rob_window[0][1] <= rob_horizon:
                        completion, _ = rob_popleft()
                        if completion > rob_floor:
                            rob_floor = completion
                if rob_floor > issue_f:
                    issue_f = rob_floor
                issue = int(issue_f)
                # drift: end core-issue-time

                result = demand_access(addr, issue)
                ac = result.access_class
                # drift: begin classifier-record-demand
                if ac is ac_hit_older:
                    c_hit_older += 1
                elif ac is ac_miss:
                    c_miss += 1
                elif ac is ac_hit_pref:
                    c_hit_pref += 1
                elif ac is ac_shorter:
                    c_shorter += 1
                else:
                    c_non_timely += 1
                n_accesses += 1
                # drift: end classifier-record-demand

                # --- CoreModel.complete inlined -------------------------
                # drift: begin core-complete
                completion = float(issue + result.latency)
                insts = gap + 1
                stall = issue - (cursor + insts / issue_width)
                if stall > 0:
                    stall_cycles += int(stall)
                cursor = float(issue)
                inst_pos += insts
                last_completion = completion
                if completion > max_completion:
                    max_completion = completion
                lq_append(completion)
                rob_append((completion, inst_pos))
                instructions += insts
                memory_accesses += 1
                # drift: end core-complete

                line = addr // line_bytes
                prev = predicted_pop(line, None)
                if prev is not None:
                    depth = index - prev
                    if depth <= depth_cap:
                        add_depth(depth)

                l1_hit = result.l1_hit
                # drift: begin access-info-fields
                info = tuple_new(
                    AccessInfo,
                    (
                        index,
                        issue,
                        addr,
                        access.pc,
                        access.is_load,
                        l1_hit,
                        not l1_hit and result.served_by != "mshr",
                        bhr._value,  # .value is a property over this attribute
                        access.reg_value,
                        last_value,
                        access.hints,
                    ),
                )
                # drift: end access-info-fields
                for request in on_access(info):
                    pf_line = request.addr // line_bytes
                    if request.shadow:
                        note_unissued(pf_line)
                        issued_shadow += 1
                    else:
                        outcome = hier_prefetch(request.addr, issue)
                        on_prefetch_issue(request, outcome.issued, outcome.reason)
                        if outcome.issued:
                            issued_real += 1
                        else:
                            note_unissued(pf_line)
                            issued_shadow += 1
                    # oldest-unexpired semantics: a line keeps its first
                    # prediction's timestamp until that entry would have
                    # expired from a 128-deep prefetch queue
                    prev = predicted_get(pf_line)
                    if prev is None or index - prev > depth_cap:
                        predicted_at[pf_line] = index
                        log_append((index, pf_line))
                cutoff = index - depth_cap
                while prediction_log and prediction_log[0][0] < cutoff:
                    i, ln = log_popleft()
                    if predicted_get(ln) == i:
                        del predicted_at[ln]

                if access.is_load:
                    last_value = access.value
        finally:
            if gc_was_enabled:
                gc.enable()
            # write the inlined core-model state back (the deques were
            # mutated in place); kept in the finally so the core stays
            # consistent even if a prefetcher raises mid-loop
            core._cursor = cursor
            core._last_completion = last_completion
            core._max_completion = max_completion
            core._inst_pos = inst_pos
            core._rob_floor = rob_floor
            core_stats.stall_cycles += stall_cycles
            core_stats.instructions += instructions
            core_stats.memory_accesses += memory_accesses
        # drift: begin classifier-record-demand
        class_counts = classifier.counts
        class_counts[ac_hit_older] += c_hit_older
        class_counts[ac_miss] += c_miss
        class_counts[ac_hit_pref] += c_hit_pref
        class_counts[ac_shorter] += c_shorter
        class_counts[AccessClass.NON_TIMELY] += c_non_timely
        classifier.demand_accesses += n_accesses
        # drift: end classifier-record-demand

        # The context prefetcher tracks per-queue-entry hit depths itself
        # (real and shadow predictions, exactly the paper's Figure 8
        # metric); prefer that over the per-line approximation.
        own_histogram = getattr(pf, "hit_depth_histogram", None)
        if own_histogram:
            hit_depths = HitDepthCDF()
            for depth, count in own_histogram.items():
                hit_depths.add(depth, count)

        stats = core.finalize()
        hier.drain(stats.cycles + 10_000)
        classifier.record_wasted_prefetch(
            hier.wasted_prefetches() + hier.l1.resident_unused_prefetches()
        )

        return SimulationResult(
            workload=workload_name,
            prefetcher=pf.name,
            instructions=stats.instructions,
            cycles=max(1, stats.cycles - self._cycle_base),
            l1=hier.l1_stats,
            l2=hier.l2_stats,
            classifier=classifier,
            hit_depths=hit_depths,
            prefetches_issued=issued_real,
            prefetches_shadow=issued_shadow,
            prefetches_rejected=hier.prefetches_rejected_mshr,
            prefetches_redundant=hier.prefetches_redundant,
            prefetcher_accuracy=pf.accuracy(),
            storage_bits=pf.storage_bits(),
        )
