"""Golden-regression gate for the paper-facing sweep metrics.

tests/golden/small_sweep.json pins IPC, L1/L2 MPKI, accuracy and
coverage for a small workloads × prefetchers sweep.  This test re-runs
exactly the sweep recorded in the fixture's ``spec`` and demands the
numbers match to float round-trip precision — the simulator is
bit-reproducible, so any drift is a real behavioural change.  A PR that
*means* to move the numbers regenerates the fixture
(``python scripts/regen_golden.py``) and ships the diff for review; a
PR that moves them accidentally fails here.
"""

import json
import math
from pathlib import Path

import pytest

from repro.sim.runner import compare

GOLDEN_PATH = Path(__file__).parent / "golden" / "small_sweep.json"

#: tolerance for values that crossed a JSON round-trip: repr-based float
#: serialization is exact, so this only guards pathological platforms
REL_TOL = 1e-9


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def sweep(golden):
    spec = golden["spec"]
    return compare(
        spec["workloads"],
        tuple(spec["prefetchers"]),
        limit=spec["limit"],
        jobs=1,
        cache=False,
    )


def current_metrics(result) -> dict[str, float]:
    return {
        "ipc": result.ipc,
        "l1_mpki": result.l1_mpki,
        "l2_mpki": result.l2_mpki,
        "accuracy": result.prefetcher_accuracy,
        "coverage": result.classifier.useful_fraction(),
    }


def test_fixture_covers_full_grid(golden):
    spec = golden["spec"]
    assert sorted(golden["metrics"]) == sorted(spec["workloads"])
    for wl in spec["workloads"]:
        assert sorted(golden["metrics"][wl]) == sorted(spec["prefetchers"])


def test_metrics_match_golden(golden, sweep):
    drifted = []
    for wl, by_pf in golden["metrics"].items():
        for pf, expected in by_pf.items():
            actual = current_metrics(sweep.get(wl, pf))
            assert sorted(actual) == sorted(expected), f"{wl}/{pf}: metric set changed"
            for metric, value in expected.items():
                if not math.isclose(
                    actual[metric], value, rel_tol=REL_TOL, abs_tol=REL_TOL
                ):
                    drifted.append(
                        f"{wl}/{pf}/{metric}: golden {value!r} != current "
                        f"{actual[metric]!r}"
                    )
    assert not drifted, (
        "paper-facing metrics drifted from tests/golden/small_sweep.json "
        "(regenerate with scripts/regen_golden.py ONLY if the change is "
        "intentional):\n" + "\n".join(drifted)
    )


def test_context_still_beats_baseline(golden):
    # a sanity anchor on the paper's headline claim, independent of the
    # exact pinned values: the context prefetcher speeds up the
    # pointer-chasing workloads the baselines cannot
    for wl in ("list", "mcf"):
        none_ipc = golden["metrics"][wl]["none"]["ipc"]
        context_ipc = golden["metrics"][wl]["context"]["ipc"]
        assert context_ipc > none_ipc
