"""Runner CLI: selectors, catalogue listing, output formats, suppressions."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import analyze, load_project
from repro.analysis.findings import Finding
from repro.analysis.runner import _select_rules, main
from repro.analysis.rules.determinism import GlobalRandomRule
from repro.analysis.sarif import format_github, format_sarif
from repro.analysis.suppress import collect_suppressions


def write_violation(root: Path) -> Path:
    core = root / "core"
    core.mkdir(parents=True, exist_ok=True)
    (core / "evil.py").write_text(
        "import random\n\ndef f():\n    return random.random()\n",
        encoding="utf-8",
    )
    return root


class TestSelectors:
    def test_unknown_prefix_exits_2_listing_known(self, capsys):
        assert main(["--rules", "BOGUS"]) == 2
        out = capsys.readouterr().out
        assert "unknown rule prefix(es) BOGUS" in out
        assert "RACE" in out and "DET001" in out

    def test_mixed_valid_and_unknown_still_errors(self, capsys):
        # the old selector silently dropped the typo when another prefix
        # matched; that disabled checks the caller asked for
        assert main(["--rules", "DET,TYPO"]) == 2
        assert "TYPO" in capsys.readouterr().out

    def test_family_prefix_selects_numbered_rules(self):
        ids = sorted(r.rule_id for r in _select_rules("DET"))
        assert ids == ["DET001", "DET002", "DET003", "DET004", "DET005"]

    def test_select_alias_still_works(self, tmp_path, capsys):
        write_violation(tmp_path)
        code = main(["--root", str(tmp_path), "--select", "DET001"])
        assert code == 1
        assert "DET001" in capsys.readouterr().out

    def test_list_rules_includes_per_code_descriptions(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for needle in ("RACE001", "FLW004", "DRIFT001", "hot per-access"):
            assert needle in out


class TestFormats:
    def test_sarif_output_is_valid_and_locates_findings(
        self, tmp_path, capsys
    ):
        write_violation(tmp_path)
        code = main(["--root", str(tmp_path), "--rules", "DET", "--format", "sarif"])
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"DET001", "RACE", "FLW", "DRIFT", "PARSE", "NOQA"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "DET001"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("core/evil.py")
        assert loc["region"]["startLine"] == 4

    def test_github_format_emits_error_commands(self, tmp_path, capsys):
        write_violation(tmp_path)
        code = main(["--root", str(tmp_path), "--rules", "DET", "--format", "github"])
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=DET001::" in out

    def test_clean_tree_sarif_has_no_results(self, tmp_path, capsys):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "ok.py").write_text("X = 1\n", encoding="utf-8")
        code = main(["--root", str(tmp_path), "--rules", "DET", "--format", "sarif"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["runs"][0]["results"] == []

    def test_format_helpers_relativize_to_cwd(self):
        findings = [Finding("core/x.py", 3, "DET001", "msg")]
        root = Path("src/repro")
        sarif = json.loads(format_sarif(findings, root))
        uri = sarif["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert uri == "src/repro/core/x.py"
        assert "file=src/repro/core/x.py" in format_github(findings, root)


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


class TestSuppressions:
    def test_matching_noqa_silences_the_finding(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                import random

                def f():
                    return random.random()  # repro: noqa[DET001]
                """
            },
        )
        project = load_project(tmp_path, manifest={})
        assert analyze(project=project, rules=[GlobalRandomRule()]) == []

    def test_family_code_covers_numbered_rules(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                import random

                def f():
                    return random.random()  # repro: noqa[DET]
                """
            },
        )
        project = load_project(tmp_path, manifest={})
        assert analyze(project=project, rules=[GlobalRandomRule()]) == []

    def test_stale_noqa_raises_noqa_finding(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                def f():
                    return 1  # repro: noqa[DET001]
                """
            },
        )
        project = load_project(tmp_path, manifest={})
        findings = analyze(project=project, rules=[GlobalRandomRule()])
        assert [f.rule for f in findings] == ["NOQA"]
        assert "stale suppression" in findings[0].message

    def test_unselected_family_noqa_is_not_judged_stale(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                def f():
                    return 1  # repro: noqa[RACE001]
                """
            },
        )
        project = load_project(tmp_path, manifest={})
        # DET-only run has no way to know whether RACE001 would fire
        assert analyze(project=project, rules=[GlobalRandomRule()]) == []

    def test_suppress_false_returns_raw_findings(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                import random

                def f():
                    return random.random()  # repro: noqa[DET001]
                """
            },
        )
        project = load_project(tmp_path, manifest={})
        findings = analyze(
            project=project, rules=[GlobalRandomRule()], suppress=False
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_collect_parses_multiple_codes(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": "X = 1  # repro: noqa[DET001, FLW002]\n",
            },
        )
        project = load_project(tmp_path, manifest={})
        sup = collect_suppressions(project)
        assert sup == {("core/x.py", 1): {"DET001", "FLW002"}}

    def test_apply_is_line_precise(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                import random

                def f():
                    a = random.random()  # repro: noqa[DET001]
                    return random.random()
                """
            },
        )
        project = load_project(tmp_path, manifest={})
        findings = analyze(project=project, rules=[GlobalRandomRule()])
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].line == 6


class TestWallTime:
    def test_full_pass_is_fast(self):
        # CI budgets the lint pass at ~10s; catch an accidental
        # quadratic blowup in graph construction long before that
        import time

        from repro.analysis import all_rules

        start = time.monotonic()
        findings = analyze(rules=all_rules())
        elapsed = time.monotonic() - start
        assert findings == []
        assert elapsed < 8.0, f"lint pass took {elapsed:.1f}s"
