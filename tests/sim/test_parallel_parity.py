"""Determinism-parity suite for the parallel sweep engine.

PR 1 made bit-reproducibility a machine-enforced invariant; this suite
extends it across process boundaries: fanning the sweep grid out over
worker processes, or replaying cells from the on-disk cache, must change
nothing but wall-clock time.  Every comparison here is field-for-field
over the full :class:`SimulationResult` — counters, classifier
breakdown, hit-depth histogram, accuracy EMA — not just headline IPC.
"""

import dataclasses

import pytest

from repro.sim.cache import SweepCache
from repro.sim.metrics import SimulationResult
from repro.sim.runner import compare, storage_sweep
from repro.workloads.linked_list import ListTraversalProgram
from repro.workloads.store import TraceStore

#: a representative subset: regular (array), pointer-chasing (list),
#: and the RL context prefetcher whose ε-greedy loop is the hardest
#: determinism test — kept small enough for CI
WORKLOADS = ("list", "array")
PREFETCHERS = ("none", "ghb-pcdc", "context")
LIMIT = 2500


@pytest.fixture(scope="module")
def serial_sweep():
    return compare(WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=1, cache=False)


def assert_identical(a: SimulationResult, b: SimulationResult, where: str) -> None:
    """Field-for-field equality with a per-field failure message."""
    for field in dataclasses.fields(SimulationResult):
        assert getattr(a, field.name) == getattr(b, field.name), (
            f"{where}: field {field.name!r} differs"
        )
    assert a == b, where  # belt and braces: dataclass equality too


def assert_sweeps_identical(a, b) -> None:
    assert a.workloads() == b.workloads()
    assert a.prefetchers() == b.prefetchers()
    for wl in a.workloads():
        for pf in a.prefetchers():
            assert_identical(a.get(wl, pf), b.get(wl, pf), f"{wl}/{pf}")


class TestParallelParity:
    def test_jobs4_identical_to_serial(self, serial_sweep):
        parallel = compare(WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=4, cache=False)
        assert_sweeps_identical(serial_sweep, parallel)

    def test_grid_order_preserved(self, serial_sweep):
        parallel = compare(WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=4, cache=False)
        # dict insertion order is the figures' plotting order; the merge
        # must restore grid order no matter which worker finished first
        assert list(parallel.results) == list(serial_sweep.results)
        for wl in parallel.workloads():
            assert list(parallel.results[wl]) == list(serial_sweep.results[wl])

    def test_adhoc_trace_program(self):
        # ad-hoc programs can't be rebuilt by name in workers; their
        # traces ship by value and must produce the same results
        make = lambda: ListTraversalProgram(num_nodes=256, iterations=4)
        serial = compare([make()], ("none", "context"), jobs=1, cache=False)
        parallel = compare([make()], ("none", "context"), jobs=3, cache=False)
        assert_sweeps_identical(serial, parallel)

    def test_progress_reports_every_cell(self, serial_sweep):
        lines = []
        compare(
            WORKLOADS,
            PREFETCHERS,
            limit=LIMIT,
            jobs=2,
            cache=False,
            progress=lines.append,
        )
        assert len(lines) == len(WORKLOADS) * len(PREFETCHERS)
        assert lines[0].startswith("[1/6] ")
        assert lines[-1].startswith("[6/6] ")


class TestCacheParity:
    def test_warm_run_identical_to_cold(self, serial_sweep, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cold = compare(WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=1, cache=cache)
        assert cache.counters.hits == 0
        assert cache.counters.stores == len(WORKLOADS) * len(PREFETCHERS)

        warm = compare(WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=1, cache=cache)
        assert cache.counters.hits == len(WORKLOADS) * len(PREFETCHERS)

        assert_sweeps_identical(cold, warm)
        assert_sweeps_identical(serial_sweep, cold)

    def test_parallel_with_cache_matches_serial(self, serial_sweep, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cold = compare(WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=4, cache=cache)
        warm = compare(WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=4, cache=cache)
        assert_sweeps_identical(serial_sweep, cold)
        assert_sweeps_identical(serial_sweep, warm)

    def test_storage_sweep_parity(self, tmp_path):
        sizes = (512, 1024)
        serial = storage_sweep(["list"], sizes, limit=1500)
        parallel = storage_sweep(
            ["list"], sizes, limit=1500, jobs=2, cache=tmp_path / "cache"
        )
        warm = storage_sweep(
            ["list"], sizes, limit=1500, jobs=1, cache=tmp_path / "cache"
        )
        for size in sizes:
            assert_identical(
                serial[size]["list"], parallel[size]["list"], f"cst={size}"
            )
            assert_identical(serial[size]["list"], warm[size]["list"], f"cst={size}")


class TestTraceStoreParity:
    """The mmap trace store must change wall-clock time, nothing else.

    Cells fed from store files — compiled cold this run, or mapped warm
    from a previous one — must be bit-identical to cells fed from
    freshly built traces, inline and across worker processes.
    """

    def test_store_cold_then_warm_identical_to_serial(
        self, serial_sweep, tmp_path
    ):
        store = TraceStore(tmp_path / "traces")
        cold = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=1, cache=False, store=store
        )
        warm = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=1, cache=False, store=store
        )
        assert_sweeps_identical(serial_sweep, cold)
        assert_sweeps_identical(serial_sweep, warm)

    def test_jobs4_store_identical_to_serial(self, serial_sweep, tmp_path):
        store = TraceStore(tmp_path / "traces")
        dispatched = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=4, cache=False, store=store
        )
        assert_sweeps_identical(serial_sweep, dispatched)
        # and again with every trace served from the warm store files
        warm = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=4, cache=False, store=store
        )
        assert_sweeps_identical(serial_sweep, warm)

    def test_corrupt_store_degrades_to_rebuild(self, serial_sweep, tmp_path):
        store = TraceStore(tmp_path / "traces")
        clean = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=1, cache=False, store=store
        )
        assert clean.resilience_summary() is None
        for path in store.root.glob("*.rpt"):
            path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        healed = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=2, cache=False, store=store
        )
        assert_sweeps_identical(serial_sweep, healed)
        # the recoveries surface in the sweep summary, not only the log
        assert healed.store_degrades > 0
        summary = healed.resilience_summary()
        assert summary is not None and "store degrade" in summary

    def test_adhoc_programs_bypass_the_store(self, tmp_path):
        # ad-hoc programs aren't registry-addressable; with a store set
        # they still ship by value and stay bit-identical
        store = TraceStore(tmp_path / "traces")
        make = lambda: ListTraversalProgram(num_nodes=256, iterations=4)
        serial = compare([make()], ("none", "context"), jobs=1, cache=False)
        stored = compare(
            [make()], ("none", "context"), jobs=3, cache=False, store=store
        )
        assert_sweeps_identical(serial, stored)

    def test_store_with_cache_matches_serial(self, serial_sweep, tmp_path):
        store = TraceStore(tmp_path / "traces")
        cache = SweepCache(tmp_path / "cache")
        cold = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=2, cache=cache, store=store
        )
        warm = compare(
            WORKLOADS, PREFETCHERS, limit=LIMIT, jobs=2, cache=cache, store=store
        )
        assert cache.counters.hits == len(WORKLOADS) * len(PREFETCHERS)
        assert_sweeps_identical(serial_sweep, cold)
        assert_sweeps_identical(serial_sweep, warm)

    def test_storage_sweep_store_parity(self, tmp_path):
        sizes = (512, 1024)
        store = TraceStore(tmp_path / "traces")
        serial = storage_sweep(["list"], sizes, limit=1500)
        stored = storage_sweep(
            ["list"], sizes, limit=1500, jobs=2, cache=False, store=store
        )
        for size in sizes:
            assert_identical(
                serial[size]["list"], stored[size]["list"], f"cst={size}"
            )
