"""Tests for the convexHull workload and its quickhull substrate."""

import random

from hypothesis import given, settings, strategies as st

from repro.workloads.convexhull import ConvexHullProgram, convex_hull, cross


class TestCrossProduct:
    def test_counterclockwise_positive(self):
        assert cross((0, 0), (1, 0), (0, 1)) > 0

    def test_clockwise_negative(self):
        assert cross((0, 0), (0, 1), (1, 0)) < 0

    def test_collinear_zero(self):
        assert cross((0, 0), (1, 1), (2, 2)) == 0


class TestReferenceHull:
    def test_square(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        assert sorted(convex_hull(square)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_degenerate_line(self):
        line = [(0, 0), (1, 1), (2, 2)]
        hull = convex_hull(line)
        assert (0, 0) in hull and (2, 2) in hull

    def test_tiny_inputs(self):
        assert convex_hull([(0, 0)]) == [(0, 0)]
        assert convex_hull([(0, 0), (1, 1)]) == [(0, 0), (1, 1)]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=3,
            max_size=60,
        )
    )
    def test_all_points_inside_hull(self, points):
        pts = [(float(x), float(y)) for x, y in points]
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        # every input point is inside or on the hull polygon boundary
        for p in pts:
            for a, b in zip(hull, hull[1:] + hull[:1]):
                assert cross(a, b, p) >= -1e-9


class TestWorkload:
    def test_quickhull_matches_reference(self):
        program = ConvexHullProgram(num_points=256)
        program.trace()
        rng = random.Random(program.seed)
        points = [(rng.random(), rng.random()) for _ in range(256)]
        expected = sorted(set(convex_hull(points)))
        assert program.result_hull == expected

    def test_trace_nonempty_and_deterministic(self):
        a = ConvexHullProgram(num_points=128).trace()
        b = ConvexHullProgram(num_points=128).trace()
        assert a and [x.addr for x in a] == [x.addr for x in b]

    def test_registered_in_pbbs_suite(self):
        from repro.workloads.suites import SUITES

        assert "convexhull" in SUITES["pbbs"]

    def test_branchy_partition_sweeps(self):
        program = ConvexHullProgram(num_points=128)
        trace = program.trace()
        branchful = sum(len(a.branches) for a in trace)
        assert branchful > len(trace) * 0.1
