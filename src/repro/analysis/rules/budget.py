"""Hardware-budget rules (``BUD*``).

The feature/storage budget is part of the paper's claim, not an
implementation detail (Section 4.4 / Table 2; Pythia, MICRO 2021, makes
the same point for RL prefetchers).  This family statically extracts
the geometry declared in ``core/config.py`` plus the structures in the
four hardware modules and verifies them against the checked-in
``budget_manifest.json``:

* ``BUD001`` — a config default differs from the manifest value;
* ``BUD002`` — an expected declaration is missing or not statically
  extractable (the budget can no longer be audited);
* ``BUD003`` — derived geometry (index widths, per-entry bits, total
  storage) no longer matches the manifest;
* ``BUD004`` — a hardware structure lost one of its declared fields.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.visitor import Project, class_fields, top_level_classes

CONFIG_FILE = "core/config.py"
CONFIG_CLASS = "ContextPrefetcherConfig"


def extract_int_defaults(cls: ast.ClassDef) -> dict[str, int]:
    """Dataclass field defaults that are plain integer literals."""
    defaults: dict[str, int] = {}
    for stmt in cls.body:
        if not (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and type(stmt.value.value) is int
        ):
            continue
        defaults[stmt.target.id] = stmt.value.value
    return defaults


@register_rule
class HardwareBudgetRule(Rule):
    """BUD*: the declared geometry must match the paper manifest."""

    rule_id = "BUD"
    title = "hardware budget matches the Section 4.4 manifest"

    def check(self, project: Project) -> Iterator[Finding]:
        manifest = project.manifest
        if not manifest:
            yield Finding(
                "", 0, "BUD002", "no budget manifest loaded; cannot audit"
            )
            return
        yield from self._check_config(project, manifest)
        yield from self._check_structure(project, manifest)

    # ------------------------------------------------------------------

    def _check_config(self, project: Project, manifest: dict) -> Iterator[Finding]:
        source = project.get(CONFIG_FILE)
        if source is None:
            yield Finding(CONFIG_FILE, 0, "BUD002", "config module not found")
            return
        cls = top_level_classes(source.tree).get(CONFIG_CLASS)
        if cls is None:
            yield Finding(
                CONFIG_FILE, 0, "BUD002", f"class {CONFIG_CLASS} not found"
            )
            return
        declared = extract_int_defaults(cls)
        expected: dict[str, int] = manifest.get("config_defaults", {})
        for name, want in sorted(expected.items()):
            if name not in declared:
                yield Finding(
                    source.rel,
                    cls.lineno,
                    "BUD002",
                    f"{CONFIG_CLASS}.{name} has no statically extractable "
                    "integer default; the budget can no longer be audited",
                )
            elif declared[name] != want:
                yield Finding(
                    source.rel,
                    cls.lineno,
                    "BUD001",
                    f"{CONFIG_CLASS}.{name} = {declared[name]} but the paper "
                    f"manifest (Section 4.4 / Table 2) requires {want}",
                )
        if any(name not in declared for name in expected):
            return  # derived math would only produce noise
        yield from self._check_derived(source.rel, cls.lineno, declared, manifest)

    def _check_derived(
        self, rel: str, line: int, cfg: dict[str, int], manifest: dict
    ) -> Iterator[Finding]:
        derived: dict[str, int] = manifest.get("derived", {})
        if not derived:
            return
        score_bits = derived.get("score_bits", 8)
        reducer_payload = derived.get("reducer_payload_bits", 8)
        queue_extra = derived.get("queue_extra_bits", 56)

        checks: list[tuple[str, int]] = []
        reducer_index_bits = (cfg["reducer_entries"] - 1).bit_length()
        checks.append(("reducer_index_bits", reducer_index_bits))
        cst_index_bits = (cfg["cst_entries"] - 1).bit_length()
        checks.append(("cst_index_bits", cst_index_bits))
        cst_entry_bits = cfg["cst_tag_bits"] + cfg["cst_links"] * (
            cfg["delta_bits"] + score_bits
        )
        checks.append(("cst_entry_bits", cst_entry_bits))
        total_bits = (
            cfg["cst_entries"] * cst_entry_bits
            + cfg["reducer_entries"] * (cfg["reducer_tag_bits"] + reducer_payload)
            + cfg["history_entries"] * cfg["reduced_hash_bits"]
            + cfg["prefetch_queue_entries"]
            * (cfg["reduced_hash_bits"] + queue_extra)
        )
        checks.append(("expected_total_bits", total_bits))

        for key, actual in checks:
            want = derived.get(key)
            if want is not None and actual != want:
                yield Finding(
                    rel,
                    line,
                    "BUD003",
                    f"derived {key} = {actual} but the manifest requires "
                    f"{want}; the hardware budget drifted from the paper",
                )
        cap = derived.get("max_total_bits")
        if cap is not None and total_bits > cap:
            yield Finding(
                rel,
                line,
                "BUD003",
                f"total storage {total_bits} bits exceeds the manifest cap "
                f"of {cap} bits ({cap / 8 / 1024:.1f} KiB)",
            )

    # ------------------------------------------------------------------

    def _check_structure(self, project: Project, manifest: dict) -> Iterator[Finding]:
        structure: dict[str, dict[str, list[str]]] = manifest.get("structure", {})
        for rel, classes in sorted(structure.items()):
            source = project.get(rel)
            if source is None:
                yield Finding(rel, 0, "BUD002", "hardware module not found")
                continue
            defined = top_level_classes(source.tree)
            for cls_name, required_fields in sorted(classes.items()):
                cls = defined.get(cls_name)
                if cls is None:
                    yield Finding(
                        rel, 0, "BUD002", f"expected class {cls_name} not found"
                    )
                    continue
                have = set(class_fields(cls))
                for field_name in required_fields:
                    if field_name not in have:
                        yield Finding(
                            rel,
                            cls.lineno,
                            "BUD004",
                            f"{cls_name} lost declared field {field_name!r}; "
                            "update budget_manifest.json in the same commit "
                            "if this is an intentional geometry change",
                        )
