"""System configuration (Table 2) and the prefetcher factory registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.ghb import GHBConfig, GHBPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.nopf import NoPrefetcher
from repro.prefetchers.sms import SMSPrefetcher
from repro.prefetchers.stride import StridePrefetcher


@dataclass
class SystemConfig:
    """Everything Table 2 specifies, bundled."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    context: ContextPrefetcherConfig = field(default_factory=ContextPrefetcherConfig)


#: the prefetcher line-up of Section 7 (plus the related-work Markov
#: prefetcher of Joseph & Grunwald), by report name
PREFETCHER_FACTORIES: dict[str, Callable[[], Prefetcher]] = {
    "none": NoPrefetcher,
    "stride": StridePrefetcher,
    "ghb-gdc": lambda: GHBPrefetcher(GHBConfig(localization="global")),
    "ghb-pcdc": lambda: GHBPrefetcher(GHBConfig(localization="pc")),
    "sms": SMSPrefetcher,
    "markov": MarkovPrefetcher,
    "context": ContextPrefetcher,
}

#: the order the paper's figures list prefetchers in (Markov is extra and
#: only appears in sweeps that ask for it)
PREFETCHER_ORDER = ("none", "stride", "ghb-gdc", "ghb-pcdc", "sms", "context")


def make_prefetcher(name: str) -> Prefetcher:
    """Instantiate a prefetcher by its report name."""
    if name not in PREFETCHER_FACTORIES:
        known = ", ".join(PREFETCHER_FACTORIES)
        raise KeyError(f"unknown prefetcher {name!r}; known: {known}")
    return PREFETCHER_FACTORIES[name]()
