"""Substrate-correctness tests for the PBBS kernel workloads."""

import random

from repro.workloads.pbbs import KNNProgram, SetCoverProgram, SuffixArrayProgram


class TestSuffixArraySubstrate:
    def test_sorted_by_prefix_after_doubling(self):
        program = SuffixArrayProgram(text_len=256, rounds=4)
        program.trace()
        sa = program.result_sa
        # after 4 doubling rounds, suffixes are sorted by their first
        # 2^4 = 16 characters
        rng = random.Random(program.seed)
        text = [rng.randrange(4) for _ in range(256)]
        k = 16
        keys = [tuple(text[i : i + k]) for i in sa]
        assert keys == sorted(keys)

    def test_is_a_permutation(self):
        program = SuffixArrayProgram(text_len=128, rounds=3)
        program.trace()
        assert sorted(program.result_sa) == list(range(128))

    def test_trace_has_indirect_dependent_loads(self):
        program = SuffixArrayProgram(text_len=128, rounds=2)
        trace = program.trace()
        assert any(a.depends_on_prev for a in trace)


class TestSetCoverSubstrate:
    def test_chosen_sets_cover_everything_coverable(self):
        program = SetCoverProgram(num_elements=256, num_sets=40, mean_set_size=24)
        program.trace()
        rng = random.Random(program.seed)
        sets = [
            sorted(
                rng.sample(
                    range(256), rng.randrange(24 // 2, 24 * 2)
                )
            )
            for _ in range(40)
        ]
        coverable = set().union(*map(set, sets))
        covered = set().union(*(set(sets[i]) for i in program.result_sets))
        assert covered == coverable

    def test_greedy_picks_largest_first(self):
        program = SetCoverProgram(num_elements=256, num_sets=30, mean_set_size=20)
        program.trace()
        rng = random.Random(program.seed)
        sets = [
            sorted(rng.sample(range(256), rng.randrange(10, 40)))
            for _ in range(30)
        ]
        first = program.result_sets[0]
        assert len(sets[first]) == max(len(s) for s in sets)

    def test_no_set_chosen_twice(self):
        program = SetCoverProgram(num_elements=200, num_sets=25)
        program.trace()
        assert len(program.result_sets) == len(set(program.result_sets))


class TestKNN:
    def test_trace_deterministic(self):
        a = KNNProgram(num_points=256, num_queries=40).trace()
        b = KNNProgram(num_points=256, num_queries=40).trace()
        assert [x.addr for x in a] == [x.addr for x in b]

    def test_grid_cells_bounded(self):
        program = KNNProgram(num_points=256, grid_side=8, num_queries=20)
        trace = program.trace()
        assert trace
        # a query touches at most 9 cells' heads
        heads = [a for a in trace if a.pc == trace[0].pc]
        assert heads
