"""Tests for the learning-convergence experiment."""

import pytest

from repro.experiments import convergence


class TestTrajectory:
    @pytest.fixture(scope="class")
    def result(self):
        return convergence.run(workloads=("list",), samples=6, limit=24000)

    def test_sample_count(self, result):
        assert len(result.trajectories["list"]) == 6

    def test_accesses_monotone(self, result):
        counts = [p.accesses for p in result.trajectories["list"]]
        assert counts == sorted(counts)
        assert counts[-1] == 24000

    def test_accuracy_improves_over_training(self, result):
        points = result.trajectories["list"]
        assert points[-1].accuracy > points[0].accuracy

    def test_epsilon_anneals(self, result):
        points = result.trajectories["list"]
        assert points[-1].epsilon < points[0].epsilon

    def test_degree_grows(self, result):
        points = result.trajectories["list"]
        assert points[-1].degree >= points[0].degree

    def test_cst_occupancy_grows(self, result):
        points = result.trajectories["list"]
        assert points[-1].cst_occupancy >= points[0].cst_occupancy

    def test_final_accuracy_accessor(self, result):
        assert result.final_accuracy("list") == result.trajectories["list"][-1].accuracy

    def test_render(self, result):
        text = convergence.render(result)
        assert "Convergence" in text and "list" in text


class TestConvergedPredicate:
    def test_flat_tail_is_converged(self):
        points = [
            convergence.ConvergencePoint(i, 0.7, 0.05, 4, 100, 5) for i in range(8)
        ]
        result = convergence.ConvergenceResult(trajectories={"w": points})
        assert result.converged("w")

    def test_moving_tail_is_not(self):
        points = [
            convergence.ConvergencePoint(i, 0.1 * i, 0.05, 4, 100, 5)
            for i in range(8)
        ]
        result = convergence.ConvergenceResult(trajectories={"w": points})
        assert not result.converged("w")
