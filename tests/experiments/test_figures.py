"""Structure tests for the experiment modules (tiny scales).

These verify the harness wiring — data shapes, filters, renders — without
asserting the paper's comparative results (the benchmarks do that at a
meaningful scale).
"""

import pytest

from repro.experiments import (
    ablations,
    fig01_semantic_locality as fig01,
    fig05_reward as fig05,
    fig08_hit_depth_cdf as fig08,
    fig09_accuracy as fig09,
    fig10_l1_mpki as fig10,
    fig11_l2_mpki as fig11,
    fig12_speedup as fig12,
    fig13_storage_sweep as fig13,
    fig14_layout_agnostic as fig14,
    tables,
)
from repro.experiments.sweep import sweep_workloads
from repro.memory.stats import ACCESS_CLASS_ORDER
from repro.sim.runner import compare
from repro.workloads.suites import get_workload


@pytest.fixture(scope="module")
def tiny_sweep():
    """A 3-workload × 3-prefetcher sweep shared by the figure tests."""
    workloads = [get_workload(name) for name in ("list", "array", "lbm")]
    return compare(workloads, prefetchers=("none", "sms", "context"), limit=4000)


class TestSweepHelpers:
    def test_scales_known(self):
        with pytest.raises(KeyError):
            sweep_workloads("gigantic")

    def test_small_scale_subset(self):
        names = [w.name for w in sweep_workloads("small")]
        assert "list" in names and "lbm" in names

    def test_full_scale_covers_registry(self):
        assert len(sweep_workloads("full")) >= 30


class TestFig01:
    def test_series_aligned(self):
        result = fig01.run(num_elements=40)
        assert len(result.physical_series) == len(result.logical_series)
        assert result.num_elements == 40

    def test_logical_linearity(self):
        result = fig01.run(num_elements=40)
        assert result.logical_step_unit_fraction > 0.95

    def test_render_contains_metrics(self):
        text = fig01.render(fig01.run(num_elements=40))
        assert "Figure 1" in text and "physical span" in text


class TestFig05:
    def test_curve_covers_depths(self):
        result = fig05.run(max_depth=60)
        assert [d for d, _ in result.curve] == list(range(61))

    def test_render(self):
        assert "Figure 5" in fig05.render(fig05.run())


class TestFig08:
    def test_cdf_per_workload(self):
        result = fig08.run(workloads=("list",))
        assert set(result.cdfs) == {"list"}
        assert result.window == (18, 50)

    def test_render(self):
        text = fig08.render(fig08.run(workloads=("list",)))
        assert "Figure 8" in text and "list" in text


class TestFig09:
    def test_breakdown_structure(self, tiny_sweep):
        result = fig09.run(comparison=tiny_sweep)
        assert set(result.breakdown) == {"list", "array", "lbm"}
        classes = result.breakdown["list"]["context"]
        assert set(classes) == set(ACCESS_CLASS_ORDER)

    def test_useful_fraction_bounds(self, tiny_sweep):
        result = fig09.run(comparison=tiny_sweep)
        for wl in result.breakdown:
            for pf in result.breakdown[wl]:
                assert 0.0 <= result.useful_fraction(wl, pf) <= 1.0

    def test_render(self, tiny_sweep):
        assert "Figure 9" in fig09.render(fig09.run(comparison=tiny_sweep))


class TestFig10And11:
    def test_threshold_filter(self, tiny_sweep):
        result = fig10.run(comparison=tiny_sweep)
        assert all(row["none"] > 5.0 for row in result.table.values())

    def test_average_covers_all_workloads(self, tiny_sweep):
        result = fig10.run(comparison=tiny_sweep)
        assert set(result.average) == {"none", "sms", "context"}

    def test_fig11_ratios_positive(self, tiny_sweep):
        result = fig11.run(comparison=tiny_sweep)
        assert result.ratio_vs_none > 0
        assert result.ratio_vs_sms > 0

    def test_renders(self, tiny_sweep):
        assert "Figure 10" in fig10.render(fig10.run(comparison=tiny_sweep))
        assert "Figure 11" in fig11.render(fig11.run(comparison=tiny_sweep))


class TestFig12:
    def test_speedup_table_structure(self, tiny_sweep):
        result = fig12.run(comparison=tiny_sweep)
        assert set(result.speedups) == {"list", "array", "lbm"}
        assert "none" not in result.mean_all
        assert result.context_peak >= max(
            row["context"] for row in result.speedups.values()
        ) - 1e-9

    def test_spec_geomean_uses_spec_subset(self, tiny_sweep):
        result = fig12.run(comparison=tiny_sweep)
        # only lbm is a SPEC workload in the tiny sweep
        assert result.mean_spec["context"] == pytest.approx(
            result.speedups["lbm"]["context"]
        )

    def test_render(self, tiny_sweep):
        assert "GEOMEAN" in fig12.render(fig12.run(comparison=tiny_sweep))


class TestFig13:
    def test_grid_structure(self):
        result = fig13.run(scale="small", sizes=(256, 1024), workloads=("list",))
        assert set(result.mean_all) == {256, 1024}
        assert result.storage_kib[1024] > result.storage_kib[256]
        assert result.best_size_all() in (256, 1024)

    def test_render(self):
        result = fig13.run(scale="small", sizes=(256,), workloads=("list",))
        assert "Figure 13" in fig13.render(result)


class TestFig14:
    def test_structure(self):
        result = fig14.run(scale="small", prefetchers=("none", "context"))
        assert set(result.cpi) == {"ssca2", "graph500"}
        assert set(result.cpi["ssca2"]) == {"linked", "array"}
        gap = result.layout_gap("ssca2", "none")
        assert gap > 0

    def test_render(self):
        result = fig14.run(scale="small", prefetchers=("none", "context"))
        assert "Figure 14" in fig14.render(result)


class TestTables:
    def test_table1_lists_all_attributes(self):
        text = tables.table1()
        for name in ("IP", "TYPE_ID", "ADDR_HISTORY"):
            assert name in text

    def test_table2_reports_storage(self):
        text = tables.table2()
        assert "KiB" in text and "MSHRs" in text

    def test_table3_matches_registry(self):
        text = tables.table3()
        assert "spec2006" in text and "listsort" in text


class TestAblations:
    def test_variant_grid(self):
        configs = ablations.variant_configs()
        assert "full" in configs and "no-reducer" in configs
        assert not configs["no-reducer"].adaptive_reduction
        assert configs["flat-reward"].reward_shape == "flat"

    def test_run_structure(self):
        result = ablations.run(workloads=("array",))
        expected = set(ablations.variant_configs()) | set(
            ablations.hierarchy_variants()
        )
        assert set(result.means) == expected
        assert all(m > 0 for m in result.means.values())

    def test_render(self):
        result = ablations.run(workloads=("array",))
        assert "Ablations" in ablations.render(result)
