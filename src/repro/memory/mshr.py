"""Miss-status holding registers (MSHRs).

An MSHR file bounds the number of outstanding misses a cache level can
sustain.  The context prefetcher consults MSHR occupancy to decide whether
to convert real prefetches into shadow operations (Section 4.2: "prefetch
operations may be skipped if the memory system is stressed").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


_NEVER = float("inf")


@dataclass(slots=True)
class _Entry:
    line: int
    completes_at: int
    is_prefetch: bool


class MSHRFile:
    """Tracks in-flight misses keyed by cache-line number.

    Time is supplied by the caller on every operation; entries whose
    completion time has passed are retired lazily.
    """

    __slots__ = (
        "num_entries",
        "_entries",
        "_expiry_heap",
        "_next_expiry",
        "allocations",
        "merges",
        "rejections",
    )

    def __init__(self, num_entries: int):
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self._entries: dict[int, _Entry] = {}
        #: (completes_at, line) heap mirroring ``_entries`` one-to-one —
        #: an entry is pushed on allocation and popped on retirement, and
        #: merges never change a completion time, so the heap top is
        #: always the earliest in-flight completion
        self._expiry_heap: list[tuple[int, int]] = []
        #: earliest completion among in-flight entries — lets _expire
        #: short-circuit without touching the heap
        self._next_expiry = _NEVER
        self.allocations = 0
        self.merges = 0
        self.rejections = 0

    def _expire(self, now: int) -> None:
        if now < self._next_expiry:
            return
        heap = self._expiry_heap
        entries = self._entries
        while heap and heap[0][0] <= now:
            _, line = heapq.heappop(heap)
            del entries[line]
        self._next_expiry = heap[0][0] if heap else _NEVER

    def outstanding(self, now: int) -> int:
        """Number of misses still in flight at ``now``."""
        if now >= self._next_expiry:
            self._expire(now)
        return len(self._entries)

    def available(self, now: int) -> int:
        """Number of free MSHR entries at ``now``."""
        if now >= self._next_expiry:
            self._expire(now)
        return self.num_entries - len(self._entries)

    def lookup(self, line: int, now: int) -> int | None:
        """Completion time of an in-flight miss for ``line``, or None."""
        if now >= self._next_expiry:
            self._expire(now)
        entry = self._entries.get(line)
        return entry.completes_at if entry is not None else None

    def is_prefetch(self, line: int, now: int) -> bool:
        """True when the in-flight miss for ``line`` was a prefetch."""
        if now >= self._next_expiry:
            self._expire(now)
        entry = self._entries.get(line)
        return entry is not None and entry.is_prefetch

    def earliest_completion(self, now: int) -> int | None:
        """Earliest in-flight completion time at ``now``, or None when empty.

        ``_next_expiry`` is an exact invariant (the minimum completion time
        over in-flight entries): allocations fold new times in, retirement
        recomputes it, and merges never change a completion time — so no
        scan is needed.
        """
        if now >= self._next_expiry:
            self._expire(now)
        if not self._entries:
            return None
        return int(self._next_expiry)

    def allocate(
        self, line: int, now: int, completes_at: int, *, is_prefetch: bool = False
    ) -> bool:
        """Reserve an MSHR for ``line``; returns False when the file is full.

        A second request for an in-flight line merges into the existing
        entry (secondary miss) and always succeeds.  A demand merge clears
        the entry's prefetch flag so the completion is attributed to demand.
        """
        if now >= self._next_expiry:
            self._expire(now)
        existing = self._entries.get(line)
        if existing is not None:
            self.merges += 1
            if not is_prefetch:
                existing.is_prefetch = False
            return True
        if len(self._entries) >= self.num_entries:
            self.rejections += 1
            return False
        self._entries[line] = _Entry(line, completes_at, is_prefetch)
        heapq.heappush(self._expiry_heap, (completes_at, line))
        if completes_at < self._next_expiry:
            self._next_expiry = completes_at
        self.allocations += 1
        return True

    def in_flight_lines(self, now: int) -> list[int]:
        """Line numbers currently in flight (test/debug helper)."""
        self._expire(now)
        return sorted(self._entries)
