"""A look inside the learning loop of the context-based prefetcher.

Drives the prefetcher directly (no cache model) with a recurring linked
traversal and prints how the internals evolve: exploration rate ε,
accuracy EMA, prefetch degree, CST occupancy, reducer adaptations, and
finally the hit-depth histogram that Figure 8 is built from.

Run:  python examples/prefetcher_internals.py
"""

import random

from repro import ContextPrefetcher
from repro.hints import RefForm, SemanticHints
from repro.prefetchers.base import AccessInfo


def make_ring(num_nodes: int, seed: int = 11) -> list[int]:
    """Node addresses of a list whose layout is shuffled within windows."""
    rng = random.Random(seed)
    base = 0x2000_0000
    slots = list(range(num_nodes))
    rng.shuffle(slots)
    return [base + slot * 64 for slot in slots]


def main() -> None:
    prefetcher = ContextPrefetcher()
    nodes = make_ring(128)
    hints = SemanticHints(type_id=1, link_offset=16, ref_form=RefForm.ARROW)

    print(f"{'iter':>5s} {'epsilon':>8s} {'accuracy':>9s} {'degree':>7s} "
          f"{'CST':>6s} {'adapt+':>7s} {'hits':>7s}")
    index = 0
    for iteration in range(200):
        for i, addr in enumerate(nodes):
            info = AccessInfo(
                index=index,
                cycle=0,
                addr=addr,
                pc=0x400010,
                last_value=nodes[(i - 1) % len(nodes)],
                hints=hints,
            )
            prefetcher.on_access(info)
            index += 1
        if iteration % 25 == 0 or iteration == 199:
            policy = prefetcher.policy
            print(
                f"{iteration:5d} {policy.epsilon():8.3f} {policy.accuracy:9.3f} "
                f"{policy.degree():7d} {prefetcher.cst.occupancy():6d} "
                f"{prefetcher.reducer.activations:7d} {prefetcher.queue.hits:7d}"
            )

    print()
    window = (prefetcher.config.window_lo, prefetcher.config.window_hi)
    total = sum(prefetcher.hit_depth_histogram.values())
    inside = sum(
        count
        for depth, count in prefetcher.hit_depth_histogram.items()
        if window[0] <= depth <= window[1]
    )
    print(f"hit depths recorded: {total}; inside reward window {window}: "
          f"{inside / total:.1%}")
    top = prefetcher.hit_depth_histogram.most_common(5)
    print("most common hit depths:", ", ".join(f"{d} (x{c})" for d, c in top))

    print()
    from repro.core.introspect import render_state

    print(render_state(prefetcher, top=5))


if __name__ == "__main__":
    main()
