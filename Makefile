# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test bench experiments figures examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# regenerate every figure at medium scale into results/medium/
experiments:
	$(PYTHON) scripts/run_full_experiments.py medium results/medium

figures:
	$(PYTHON) -m repro figure tables
	$(PYTHON) -m repro figure 1
	$(PYTHON) -m repro figure 5
	$(PYTHON) -m repro figure 12

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/prefetcher_internals.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
