"""Experiment-hygiene rules (``EXP*``).

The runner and the CLI drive every figure module through the same two
entry points — ``run(...)`` builds the result object, ``render(result)``
formats it — and dispatch through the ``_FIGURES`` table in ``cli.py``.
A figure module that drifts from this shape disappears from ``python -m
repro figure`` without any test noticing, so the shape is enforced:

* ``EXP001`` — ``experiments/fig*.py`` has no top-level ``run``;
* ``EXP002`` — no top-level ``render``, or ``render`` cannot accept a
  single positional result;
* ``EXP003`` — ``run`` cannot be called as ``run()`` or ``run(scale)``
  (at most one positional parameter may lack a default);
* ``EXP004`` — the figure module is not wired into the CLI's
  ``_FIGURES`` dispatch table.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.visitor import Project, SourceFile, top_level_functions

FIGURE_GLOB = "experiments/fig*.py"
CLI_FILE = "cli.py"
DISPATCH_NAME = "_FIGURES"


def _required_positional(fn: ast.FunctionDef) -> int:
    args = fn.args
    positional = [*args.posonlyargs, *args.args]
    return len(positional) - len(args.defaults)


def _max_positional(fn: ast.FunctionDef) -> int:
    args = fn.args
    if args.vararg is not None:
        return 1 << 30
    return len(args.posonlyargs) + len(args.args)


def cli_dispatch_modules(source: SourceFile) -> set[str] | None:
    """Module names referenced in the CLI ``_FIGURES`` table, or None."""
    for stmt in source.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == DISPATCH_NAME:
                if not isinstance(stmt.value, ast.Dict):
                    return None
                names: set[str] = set()
                for entry in stmt.value.values:
                    for node in ast.walk(entry):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
                        elif isinstance(node, ast.Attribute):
                            names.add(node.attr)
                return names
    return None


@register_rule
class ExperimentHygieneRule(Rule):
    """EXP*: every figure module exposes the common entry points."""

    rule_id = "EXP"
    title = "figure modules expose run()/render() and are CLI-dispatchable"

    def check(self, project: Project) -> Iterator[Finding]:
        cli = project.get(CLI_FILE)
        dispatch = cli_dispatch_modules(cli) if cli is not None else None
        if dispatch is None:
            yield Finding(
                CLI_FILE,
                0,
                "EXP004",
                f"{DISPATCH_NAME} dict not found or not statically readable",
            )

        for source in project.in_dir("experiments/"):
            if not fnmatch.fnmatch(source.rel, FIGURE_GLOB):
                continue
            functions = top_level_functions(source.tree)

            run = functions.get("run")
            if run is None:
                yield Finding(
                    source.rel,
                    0,
                    "EXP001",
                    "no top-level run(); the runner/CLI cannot build this "
                    "figure",
                )
            elif _required_positional(run) > 1:
                yield Finding(
                    source.rel,
                    run.lineno,
                    "EXP003",
                    "run() requires more than one positional argument; the "
                    "CLI calls it as run() or run(scale)",
                )

            render = functions.get("render")
            if render is None:
                yield Finding(
                    source.rel,
                    0,
                    "EXP002",
                    "no top-level render(); the runner/CLI cannot format "
                    "this figure",
                )
            elif _max_positional(render) < 1 or _required_positional(render) > 1:
                yield Finding(
                    source.rel,
                    render.lineno,
                    "EXP002",
                    "render() must accept exactly one positional result "
                    "object",
                )

            module = source.rel.rsplit("/", 1)[-1].removesuffix(".py")
            if dispatch is not None and module not in dispatch:
                yield Finding(
                    source.rel,
                    0,
                    "EXP004",
                    f"figure module {module} is not wired into the CLI "
                    f"{DISPATCH_NAME} table",
                )
