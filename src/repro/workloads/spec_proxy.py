"""SPEC CPU2006 proxy workloads.

The paper runs 16 SPEC2006 benchmarks through gem5, choosing simulation
phases from Jaleel's instrumentation-driven characterisation.  SPEC
binaries and their inputs are not redistributable, so each benchmark is
modelled as a *proxy*: a composite access-stream generator whose pattern
mix, working-set size and memory intensity follow the published
characterisation of that benchmark.  The proxy exercises exactly the same
predictor code paths (streams for lbm/libquantum, pointer chasing for
mcf/omnetpp, region reuse for h264ref, near-cache-resident behaviour for
sjeng/povray, ...), which is what the comparative figures need.

Each proxy mixes five archetypal substreams:

* ``stream``  — sequential walk over a large buffer (stride prefetcher food)
* ``stride``  — constant non-unit stride walk
* ``region``  — clustered touches around repeating bases (SMS food)
* ``pointer`` — pointer chase over shuffled rings, with compiler hints
* ``random``  — uniform noise over the working set (nobody's food)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hints import RefForm, SemanticHints
from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

NODE_BYTES = 32
NEXT_OFFSET = 16


@dataclass(frozen=True)
class SpecProfile:
    """Published-characterisation knobs for one SPEC benchmark."""

    name: str
    #: fraction of instructions that are memory operations
    mem_ratio: float
    #: relative weights of the five substreams
    stream: float = 0.0
    stride: float = 0.0
    region: float = 0.0
    pointer: float = 0.0
    random: float = 0.0
    #: working-set bytes for the stream/random substreams
    working_set: int = 1 << 20
    #: nodes per pointer ring (×32 B each); rings repeat, so they are learnable
    pointer_ring: int = 1024
    #: non-unit stride, in bytes, for the stride substream
    stride_bytes: int = 256
    #: fraction of branches that are taken (control-flow entropy proxy)
    branchiness: float = 0.5

    def mix(self) -> dict[str, float]:
        weights = {
            "stream": self.stream,
            "stride": self.stride,
            "region": self.region,
            "pointer": self.pointer,
            "random": self.random,
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError(f"profile {self.name} has an empty pattern mix")
        return {k: v / total for k, v in weights.items()}


#: The 16 SPEC2006 benchmarks of Table 3.  Mixes follow the memory
#: characterisation literature: lbm/libquantum/milc stream; mcf/omnetpp/
#: astar pointer-chase; h264ref/namd region-reuse; sjeng/povray/gobmk
#: nearly cache-resident; soplex/sphinx3/dealII/hmmer/bzip2 mixed.
SPEC_PROFILES: dict[str, SpecProfile] = {
    p.name: p
    for p in [
        SpecProfile("sjeng", 0.25, region=0.5, random=0.5, working_set=1 << 16, branchiness=0.45),
        SpecProfile("povray", 0.3, region=0.6, stride=0.2, random=0.2, working_set=1 << 16),
        SpecProfile("soplex", 0.35, stride=0.4, stream=0.2, random=0.4, working_set=1 << 22, stride_bytes=512),
        SpecProfile("dealII", 0.35, stream=0.3, region=0.4, pointer=0.2, random=0.1, working_set=1 << 20),
        SpecProfile("h264ref", 0.4, region=0.6, stream=0.3, random=0.1, working_set=1 << 18),
        SpecProfile("gobmk", 0.25, region=0.4, random=0.6, working_set=1 << 17, branchiness=0.4),
        SpecProfile("hmmer", 0.45, stream=0.5, stride=0.4, random=0.1, working_set=1 << 17),
        SpecProfile("bzip2", 0.35, stream=0.3, random=0.5, region=0.2, working_set=1 << 21),
        SpecProfile("milc", 0.4, stream=0.6, stride=0.2, random=0.2, working_set=1 << 22),
        SpecProfile("namd", 0.35, region=0.3, stride=0.35, stream=0.25, random=0.1, working_set=1 << 18),
        SpecProfile("omnetpp", 0.4, pointer=0.55, random=0.25, region=0.2, working_set=1 << 21, pointer_ring=2048),
        SpecProfile("astar", 0.35, pointer=0.45, region=0.25, random=0.3, working_set=1 << 20, pointer_ring=1024),
        SpecProfile("libquantum", 0.3, stream=0.85, stride=0.15, working_set=1 << 22),
        SpecProfile("mcf", 0.45, pointer=0.6, random=0.3, stride=0.1, working_set=1 << 22, pointer_ring=3072),
        SpecProfile("sphinx3", 0.4, stream=0.5, random=0.3, region=0.2, working_set=1 << 21),
        SpecProfile("lbm", 0.45, stream=0.8, stride=0.2, working_set=1 << 22),
    ]
}


@dataclass
class _Ring:
    nodes: list[int]  # node addresses, in chase order
    pos: int = 0


class SpecProxyProgram(TraceProgram):
    """Composite generator realising one :class:`SpecProfile`."""

    suite = "spec2006"

    def __init__(
        self,
        profile: SpecProfile | str,
        *,
        num_accesses: int = 20000,
        num_rings: int = 3,
        seed: int = 7,
    ):
        if isinstance(profile, str):
            profile = SPEC_PROFILES[profile]
        super().__init__(seed=seed)
        self.profile = profile
        self.name = profile.name
        self.num_accesses = num_accesses
        self.num_rings = num_rings

    # ------------------------------------------------------------------

    def _make_rings(self, heap: Heap, rng: random.Random) -> list[_Ring]:
        rings = []
        for _ in range(self.num_rings):
            addrs = [heap.alloc(NODE_BYTES) for _ in range(self.profile.pointer_ring)]
            rings.append(_Ring(nodes=addrs, pos=rng.randrange(len(addrs))))
        return rings

    def build(self) -> TraceBuilder:
        p = self.profile
        rng = random.Random(self.seed)
        heap = Heap(placement="shuffled", seed=self.seed)
        tb = TraceBuilder()

        stream_base = heap.alloc(p.working_set)
        stride_base = heap.alloc(p.working_set)
        region_bases = [heap.alloc(4096) for _ in range(16)]
        rand_base = heap.alloc(p.working_set)
        rings = self._make_rings(heap, rng)

        mix = p.mix()
        kinds = list(mix)
        weights = [mix[k] for k in kinds]
        mean_gap = max(0.0, 1.0 / p.mem_ratio - 1.0)
        next_hints = SemanticHints(
            type_id=tb.type_id(f"{p.name}_node"),
            link_offset=NEXT_OFFSET,
            ref_form=RefForm.ARROW,
        )

        def draw_gap() -> int:
            # one gap per emitted access, so mem_ratio holds regardless of
            # how many accesses a burst emits
            if mean_gap <= 0:
                return 0
            return max(0, int(rng.expovariate(1.0 / mean_gap)))

        stream_pos = 0
        stride_pos = 0
        region_cursor = 0
        for _ in range(self.num_accesses):
            kind = rng.choices(kinds, weights)[0]
            if rng.random() < 0.3:
                tb.branch(rng.random() < p.branchiness)

            if kind == "stream":
                addr = stream_base + stream_pos
                stream_pos = (stream_pos + 8) % p.working_set
                tb.load(addr, "proxy.stream", gap=draw_gap())
            elif kind == "stride":
                addr = stride_base + stride_pos
                stride_pos = (stride_pos + p.stride_bytes) % p.working_set
                tb.load(addr, "proxy.stride", gap=draw_gap())
            elif kind == "region":
                # burst of 3-6 touches around a recurring base
                base = region_bases[region_cursor % len(region_bases)]
                region_cursor += 1
                for i in range(rng.randrange(3, 7)):
                    tb.load(
                        base + i * 64 + rng.randrange(0, 2) * 8,
                        "proxy.region",
                        gap=draw_gap(),
                    )
            elif kind == "pointer":
                ring = rings[rng.randrange(len(rings))]
                # chase a short run along the ring (amortised traversal)
                for _ in range(rng.randrange(2, 6)):
                    cur = ring.nodes[ring.pos]
                    nxt_pos = (ring.pos + 1) % len(ring.nodes)
                    tb.load(
                        cur + NEXT_OFFSET,
                        "proxy.chase",
                        value=ring.nodes[nxt_pos],
                        depends=True,
                        hints=next_hints,
                        gap=draw_gap(),
                    )
                    ring.pos = nxt_pos
            else:  # random
                addr = rand_base + rng.randrange(p.working_set // 8) * 8
                tb.load(addr, "proxy.random", gap=draw_gap())
        return tb
