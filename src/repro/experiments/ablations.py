"""Ablation study over the context prefetcher's design choices.

DESIGN.md calls out five mechanisms worth isolating:

* the Reducer's online feature selection (vs full-context hashing)
* shadow prefetches (vs on-policy feedback only)
* the bell-shaped reward (vs a flat positive window)
* adaptive ε (vs a fixed exploration rate)
* history-queue sampling density (sparse vs dense collection)

Each variant runs the same workloads; the report shows mean speedup over
the no-prefetch baseline per variant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.experiments.report import render_table
from repro.experiments.sweep import SCALES
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.metrics import geomean
from repro.sim.runner import run_workload
from repro.sim.simulator import Simulator
from repro.workloads.suites import get_workload

#: irregular-leaning subset where the learning machinery matters most
DEFAULT_WORKLOADS = ("list", "hashtest", "graph500-list", "mcf", "array")


def variant_configs() -> dict[str, ContextPrefetcherConfig]:
    """The ablation grid, keyed by report label."""
    base = ContextPrefetcherConfig()
    return {
        "full": base,
        "no-reducer": replace(base, adaptive_reduction=False),
        "no-shadow": replace(base, shadow_prefetches=False, shadow_probability=0.0),
        "flat-reward": replace(base, reward_shape="flat"),
        "fixed-epsilon": replace(base, adaptive_epsilon=False),
        "sparse-sampling": replace(base, sample_depths=(18, 34, 50)),
        "dense-sampling": replace(
            base, sample_depths=(18, 22, 26, 30, 34, 38, 42, 46, 50)
        ),
        # future-work extensions (Section 8)
        "softmax-policy": replace(base, policy="softmax"),
        "adaptive-window": replace(base, adaptive_window=True),
        "wide-delta": replace(base, delta_bits=12),
    }


def hierarchy_variants() -> dict[str, HierarchyConfig]:
    """Ablations of memory-system choices (same prefetcher config)."""
    return {
        "l2-only-fill": HierarchyConfig(prefetch_fill_l1=False),
    }


@dataclass
class AblationResult:
    #: variant -> workload -> speedup over no prefetching
    speedups: dict[str, dict[str, float]]
    #: variant -> geometric mean speedup
    means: dict[str, float]


def run(
    scale: str = "small", workloads: tuple[str, ...] = DEFAULT_WORKLOADS
) -> AblationResult:
    limit = SCALES[scale]["limit"]
    specs = [get_workload(name) for name in workloads]
    traces = {spec.name: spec.build().trace() for spec in specs}
    baselines = {
        name: run_workload(get_workload(name), "none", limit=limit)
        for name in traces
    }

    speedups: dict[str, dict[str, float]] = {}
    for label, config in variant_configs().items():
        speedups[label] = {}
        for name, trace in traces.items():
            sim = Simulator(ContextPrefetcher(config))
            result = sim.run(trace, workload_name=name, limit=limit)
            speedups[label][name] = result.speedup_over(baselines[name])
    for label, hier_config in hierarchy_variants().items():
        speedups[label] = {}
        for name, trace in traces.items():
            sim = Simulator(ContextPrefetcher(), hierarchy_config=hier_config)
            result = sim.run(trace, workload_name=name, limit=limit)
            speedups[label][name] = result.speedup_over(baselines[name])
    means = {
        label: geomean(list(per_wl.values())) for label, per_wl in speedups.items()
    }
    return AblationResult(speedups=speedups, means=means)


def render(result: AblationResult) -> str:
    workloads = list(next(iter(result.speedups.values())))
    rows = []
    for label, per_wl in result.speedups.items():
        rows.append(
            (label,)
            + tuple(f"{per_wl[wl]:.2f}" for wl in workloads)
            + (f"{result.means[label]:.2f}",)
        )
    return render_table(
        ("variant",) + tuple(workloads) + ("geomean",),
        rows,
        title="Ablations — speedup over no prefetching per design variant",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
