"""PBBS kernels: suffixArray, setCover and KNN (Table 3).

These are simplified but structurally faithful models of the Problem
Based Benchmark Suite kernels the paper uses: each reproduces the kernel's
characteristic memory shape (indirect rank gathers for suffixArray,
set-element scatter for setCover, grid-bucket scans for KNN) while
computing the real algorithmic result over the substrate.
"""

from __future__ import annotations

import random

from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

WORD = 8


class SuffixArrayProgram(TraceProgram):
    """Prefix-doubling suffix-array construction.

    Each doubling round gathers ``rank[sa[j]]`` and ``rank[sa[j]+k]`` —
    a sequential walk producing data-dependent indirect loads, the classic
    "irregular but not pointer-linked" pattern.
    """

    name = "suffixarray"
    suite = "pbbs"

    def __init__(self, *, text_len: int = 2048, rounds: int = 4, seed: int = 7):
        super().__init__(seed=seed)
        self.text_len = text_len
        self.rounds = rounds

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        n = self.text_len
        text = [rng.randrange(4) for _ in range(n)]  # DNA-like alphabet

        sa_base = heap.alloc(n * WORD)
        rank_base = heap.alloc((2 * n) * WORD)
        tmp_base = heap.alloc(n * WORD)
        sa_hints = tb.index_hints("sa")
        rank_hints = tb.index_hints("rank")

        rank = text[:] + [0] * n
        sa = sorted(range(n), key=lambda i: text[i])
        k = 1
        for _ in range(self.rounds):
            # gather pass: the traced inner loop
            keys = []
            for j in range(n):
                i = sa[j]
                tb.load(sa_base + j * WORD, "sa.idx", value=i, hints=sa_hints, gap=1)
                tb.load(
                    rank_base + i * WORD,
                    "sa.rank1",
                    value=rank[i],
                    depends=True,
                    hints=rank_hints,
                    gap=1,
                )
                second = rank[i + k] if i + k < n else 0
                tb.load(
                    rank_base + (i + k) * WORD,
                    "sa.rank2",
                    value=second,
                    depends=True,
                    hints=rank_hints,
                    gap=1,
                )
                keys.append((rank[i], second, i))
            # (sorting itself is compute; model as a gap per element)
            tb.gap(4 * n)
            keys.sort()
            sa = [i for _, _, i in keys]
            new_rank = [0] * (2 * n)
            r = 0
            for j in range(n):
                if j > 0 and keys[j][:2] != keys[j - 1][:2]:
                    r += 1
                new_rank[sa[j]] = r
                tb.store(tmp_base + sa[j] * WORD, "sa.scatter", gap=1)
            rank = new_rank
            k *= 2
        self.result_sa = sa
        return tb


class SetCoverProgram(TraceProgram):
    """Greedy set cover: pick the largest set, mark its elements covered.

    The element-marking loop reads a set's element array sequentially but
    scatters stores into the ``covered`` array — half regular, half not.
    """

    name = "setcover"
    suite = "pbbs"

    def __init__(
        self,
        *,
        num_elements: int = 4096,
        num_sets: int = 192,
        mean_set_size: int = 48,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_elements = num_elements
        self.num_sets = num_sets
        self.mean_set_size = mean_set_size

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        sets = [
            sorted(
                rng.sample(
                    range(self.num_elements),
                    rng.randrange(self.mean_set_size // 2, self.mean_set_size * 2),
                )
            )
            for _ in range(self.num_sets)
        ]
        set_bases = [heap.alloc(len(s) * WORD) for s in sets]
        covered_base = heap.alloc(self.num_elements * WORD)
        size_base = heap.alloc(self.num_sets * WORD)
        elem_hints = tb.index_hints("set_elems")

        covered = [False] * self.num_elements
        chosen: list[int] = []
        remaining = set(range(self.num_sets))
        while remaining:
            # scan current effective sizes (sequential)
            best, best_gain = -1, 0
            for s in sorted(remaining):
                gain = sum(1 for e in sets[s] if not covered[e])
                tb.load(size_base + s * WORD, "sc.size", value=gain, gap=2)
                take = gain > best_gain
                tb.branch(take)
                if take:
                    best, best_gain = s, gain
            if best < 0 or best_gain == 0:
                break
            chosen.append(best)
            remaining.discard(best)
            # mark the winner's elements
            for i, e in enumerate(sets[best]):
                tb.load(
                    set_bases[best] + i * WORD,
                    "sc.elem",
                    value=e,
                    hints=elem_hints,
                    gap=1,
                )
                tb.load(covered_base + e * WORD, "sc.check", value=int(covered[e]), depends=True, gap=1)
                fresh = not covered[e]
                tb.branch(fresh)
                if fresh:
                    covered[e] = True
                    tb.store(covered_base + e * WORD, "sc.mark", gap=1)
        self.result_sets = chosen
        return tb


class KNNProgram(TraceProgram):
    """k-nearest-neighbours via a uniform grid.

    Queries hash a point to a grid cell and scan the 3×3 neighbourhood's
    point buckets — array bursts at data-dependent bases.
    """

    name = "knn"
    suite = "pbbs"

    def __init__(
        self,
        *,
        num_points: int = 2048,
        grid_side: int = 16,
        num_queries: int = 500,
        k: int = 3,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_points = num_points
        self.grid_side = grid_side
        self.num_queries = num_queries
        self.k = k

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        side = self.grid_side
        points = [
            (rng.random(), rng.random()) for _ in range(self.num_points)
        ]
        cells: list[list[int]] = [[] for _ in range(side * side)]
        for i, (x, y) in enumerate(points):
            cx = min(side - 1, int(x * side))
            cy = min(side - 1, int(y * side))
            cells[cy * side + cx].append(i)

        cell_bases = [heap.alloc(max(1, len(c)) * WORD) for c in cells]
        head_base = heap.alloc(side * side * WORD)
        coord_base = heap.alloc(self.num_points * 2 * WORD)
        head_hints = tb.index_hints("cell_heads")
        pt_hints = tb.index_hints("points")

        for _ in range(self.num_queries):
            qx, qy = rng.random(), rng.random()
            cx = min(side - 1, int(qx * side))
            cy = min(side - 1, int(qy * side))
            best: list[tuple[float, int]] = []
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    nx, ny = cx + dx, cy + dy
                    inside = 0 <= nx < side and 0 <= ny < side
                    tb.branch(inside)
                    if not inside:
                        continue
                    cell = ny * side + nx
                    tb.load(
                        head_base + cell * WORD,
                        "knn.head",
                        value=len(cells[cell]),
                        hints=head_hints,
                        gap=2,
                    )
                    for i, p in enumerate(cells[cell]):
                        tb.load(
                            cell_bases[cell] + i * WORD,
                            "knn.pt",
                            value=p,
                            depends=True,
                            gap=1,
                        )
                        px, py = points[p]
                        tb.load(
                            coord_base + p * 2 * WORD,
                            "knn.coord",
                            value=p,
                            depends=True,
                            hints=pt_hints,
                            gap=3,  # distance computation
                        )
                        d = (px - qx) ** 2 + (py - qy) ** 2
                        best.append((d, p))
            best.sort()
            del best[self.k :]
        return tb
