"""Global branch-history register.

One of the hardware context attributes of Table 1: "hints as to the
current control flow, which may, in some cases, indicate a specific path
along a diverging data structure."
"""

from __future__ import annotations


class BranchHistoryRegister:
    """Fixed-width shift register of recent branch outcomes."""

    __slots__ = ("bits", "_mask", "_value", "updates")

    def __init__(self, bits: int = 8):
        if bits <= 0:
            raise ValueError("history width must be positive")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._value = 0
        self.updates = 0

    @property
    def value(self) -> int:
        """Current history as an integer (most recent branch in bit 0)."""
        return self._value

    def update(self, taken: bool) -> None:
        """Shift in one branch outcome."""
        self._value = ((self._value << 1) | int(taken)) & self._mask
        self.updates += 1

    def update_many(self, outcomes: tuple[bool, ...] | list[bool]) -> None:
        """Shift in several outcomes, oldest first."""
        if not outcomes:
            return
        value = self._value
        mask = self._mask
        for taken in outcomes:
            value = ((value << 1) | taken) & mask
        self._value = value
        self.updates += len(outcomes)

    def reset(self) -> None:
        self._value = 0
