"""Parameter-sensitivity study for the context prefetcher.

Beyond the design-choice ablations, this sweeps the continuous knobs the
paper fixes by construction, showing how robust the headline result is:

* reward-window position (late / paper default / early bells)
* CST links per entry (the action-space width)
* prefetch-queue depth (how long feedback waits)
* maximum prefetch degree
* exploration ceiling ε_max

Each variant reports the geometric-mean speedup over the no-prefetch
baseline on an irregular-leaning workload subset.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.experiments.report import render_table
from repro.experiments.sweep import SCALES
from repro.sim.metrics import geomean
from repro.sim.runner import run_workload
from repro.sim.simulator import Simulator
from repro.workloads.suites import get_workload

DEFAULT_WORKLOADS = ("list", "graph500-list", "array")


def parameter_grid() -> dict[str, dict[str, ContextPrefetcherConfig]]:
    """Knob -> {setting label: config}."""
    base = ContextPrefetcherConfig()
    return {
        "window": {
            "early(10-30)": replace(
                base,
                window_lo=10,
                window_hi=30,
                window_center=18,
                sample_depths=(10, 15, 20, 25, 30),
            ),
            "paper(18-50)": base,
            "late(30-90)": replace(
                base,
                window_lo=30,
                window_hi=90,
                window_center=50,
                sample_depths=(30, 45, 60, 75, 90),
                history_entries=90,
            ),
        },
        "cst_links": {
            "2": replace(base, cst_links=2),
            "4": base,
            "8": replace(base, cst_links=8),
        },
        "queue_depth": {
            "64": replace(base, prefetch_queue_entries=64),
            "128": base,
            "256": replace(base, prefetch_queue_entries=256),
        },
        "max_degree": {
            "1": replace(base, max_degree=1),
            "4": base,
            "8": replace(base, max_degree=8),
        },
        "epsilon_max": {
            "0.05": replace(base, epsilon_max=0.05),
            "0.20": base,
            "0.50": replace(base, epsilon_max=0.5),
        },
    }


@dataclass
class SensitivityResult:
    #: knob -> setting label -> geomean speedup over no prefetching
    grid: dict[str, dict[str, float]]
    workloads: tuple[str, ...]

    def best_setting(self, knob: str) -> str:
        settings = self.grid[knob]
        return max(settings, key=settings.get)


def run(
    scale: str = "small", workloads: tuple[str, ...] = DEFAULT_WORKLOADS
) -> SensitivityResult:
    limit = SCALES[scale]["limit"]
    specs = [get_workload(name) for name in workloads]
    traces = {spec.name: spec.build().trace() for spec in specs}
    baselines = {
        name: run_workload(get_workload(name), "none", limit=limit)
        for name in traces
    }

    grid: dict[str, dict[str, float]] = {}
    for knob, settings in parameter_grid().items():
        grid[knob] = {}
        for label, config in settings.items():
            speedups = []
            for name, trace in traces.items():
                sim = Simulator(ContextPrefetcher(config))
                result = sim.run(trace, workload_name=name, limit=limit)
                speedups.append(result.speedup_over(baselines[name]))
            grid[knob][label] = geomean(speedups)
    return SensitivityResult(grid=grid, workloads=workloads)


def render(result: SensitivityResult) -> str:
    rows = []
    for knob, settings in result.grid.items():
        best = result.best_setting(knob)
        for label, speedup in settings.items():
            marker = " <-- best" if label == best else ""
            rows.append((knob, label, f"{speedup:.2f}{marker}"))
    return render_table(
        ("knob", "setting", "geomean speedup"),
        rows,
        title=(
            "Parameter sensitivity — context prefetcher over "
            + ", ".join(result.workloads)
        ),
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
