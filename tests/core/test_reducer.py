"""Tests for the Reducer's online feature selection."""

from repro.core.attributes import Attribute, AttributeSet
from repro.core.config import ContextPrefetcherConfig
from repro.core.context import ContextCapture
from repro.core.cst import ContextStatesTable
from repro.core.reducer import Reducer


def setup(**overrides):
    config = ContextPrefetcherConfig(**overrides)
    return config, Reducer(config), ContextStatesTable(config)


def capture(ip=1, type_id=0, last_value=0, addr_hist=0, block=0):
    values = [0] * 8
    values[Attribute.IP] = ip
    values[Attribute.TYPE_ID] = type_id
    values[Attribute.LAST_VALUE] = last_value
    values[Attribute.ADDR_HISTORY] = addr_hist
    return ContextCapture(values=tuple(values), block=block)


class TestLookup:
    def test_allocates_with_default_attributes(self):
        config, reducer, cst = setup()
        entry, _ = reducer.lookup(capture(), cst)
        assert entry.active == AttributeSet(config.initial_attributes)
        assert reducer.allocations == 1

    def test_same_context_reuses_entry(self):
        _, reducer, cst = setup()
        reducer.lookup(capture(ip=5), cst)
        reducer.lookup(capture(ip=5), cst)
        assert reducer.allocations == 1

    def test_reduced_hash_stable_for_same_context(self):
        _, reducer, cst = setup()
        _, r1 = reducer.lookup(capture(ip=5), cst)
        _, r2 = reducer.lookup(capture(ip=5), cst)
        assert r1 == r2

    def test_pointer_count_tracks_mapping(self):
        _, reducer, cst = setup()
        _, reduced = reducer.lookup(capture(ip=5), cst)
        assert cst.pointer_count(reduced) == 1

    def test_distinct_full_contexts_same_reduced_context(self):
        # same IP/hints but different inactive attributes: several reducer
        # entries must map onto one CST entry (the overload scenario)
        _, reducer, cst = setup()
        reduced_hashes = set()
        for lv in range(1, 6):
            _, reduced = reducer.lookup(capture(ip=5, last_value=lv), cst)
            reduced_hashes.add(reduced)
        assert len(reduced_hashes) == 1
        assert cst.pointer_count(reduced_hashes.pop()) == 5

    def test_ablation_uses_full_context(self):
        _, reducer, cst = setup(adaptive_reduction=False)
        _, r1 = reducer.lookup(capture(ip=5, last_value=1), cst)
        _, r2 = reducer.lookup(capture(ip=5, last_value=2), cst)
        assert r1 != r2  # LAST_VALUE participates when reduction is off


class TestOverloadAdaptation:
    def test_overload_activates_attribute(self):
        config, reducer, cst = setup(overload_refs=3, overload_check_period=1)
        # many full contexts differing only in LAST_VALUE collapse onto one
        # reduced context
        entries = []
        for lv in range(1, 8):
            entry, reduced = reducer.lookup(capture(ip=5, last_value=lv), cst)
            entries.append(entry)
        # drive adaptation on one entry
        entry, reduced = reducer.lookup(capture(ip=5, last_value=1), cst)
        new_reduced = reducer.adapt(entry, capture(ip=5, last_value=1), cst, reduced)
        assert reducer.activations >= 1
        assert len(entry.active) > len(AttributeSet(config.initial_attributes))

    def test_adaptation_rehomes_pointer(self):
        _, reducer, cst = setup(overload_refs=2, overload_check_period=1)
        for lv in range(1, 6):
            reducer.lookup(capture(ip=5, last_value=lv), cst)
        entry, reduced = reducer.lookup(capture(ip=5, last_value=1), cst)
        new_reduced = reducer.adapt(entry, capture(ip=5, last_value=1), cst, reduced)
        if new_reduced != reduced:
            assert entry.cst_key == new_reduced

    def test_no_adaptation_when_disabled(self):
        _, reducer, cst = setup(adaptive_reduction=False, overload_check_period=1)
        for lv in range(1, 8):
            entry, reduced = reducer.lookup(capture(ip=5, last_value=lv), cst)
            reducer.adapt(entry, capture(ip=5, last_value=lv), cst, reduced)
        assert reducer.activations == 0


class TestUnderloadAdaptation:
    def test_underload_deactivates_useless_attribute(self):
        _, reducer, cst = setup(
            overload_check_period=1, underload_lookups=4, overload_refs=100
        )
        cap = capture(ip=5, last_value=9)
        entry, reduced = reducer.lookup(cap, cst)
        # grow the active set artificially, as an earlier overload would
        entry.active = entry.active.activate_next()
        _, reduced = reducer.lookup(cap, cst)  # remap pointer to new key
        reduced = cap.hash(entry.active, 19)
        cst.add_association(reduced, 5)  # candidate that never earns reward
        before = len(entry.active)
        for _ in range(10):
            entry2, r2 = reducer.lookup(cap, cst)
            reducer.adapt(entry2, cap, cst, r2)
        assert len(entry.active) < before
        assert reducer.deactivations >= 1

    def test_underload_never_drops_initial_attributes(self):
        config, reducer, cst = setup(
            overload_check_period=1, underload_lookups=1, overload_refs=100
        )
        cap = capture(ip=5)
        for _ in range(20):
            entry, reduced = reducer.lookup(cap, cst)
            cst.add_association(reduced, 5)
            reducer.adapt(entry, cap, cst, reduced)
        assert len(entry.active) >= len(AttributeSet(config.initial_attributes))


class TestConflicts:
    def test_conflicting_tag_reallocates(self):
        _, reducer, cst = setup(reducer_entries=1, reducer_tag_bits=8)
        reducer.lookup(capture(ip=1), cst)
        reducer.lookup(capture(ip=2), cst)
        # with a single entry, different full hashes conflict constantly
        assert reducer.allocations + reducer.conflict_evictions >= 2

    def test_reset(self):
        _, reducer, cst = setup()
        reducer.lookup(capture(ip=1), cst)
        reducer.reset()
        assert reducer.occupancy() == 0
