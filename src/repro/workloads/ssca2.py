"""HPCS SSCA#2 (v2.2) kernel 4: betweenness centrality.

Brandes' algorithm — a forward BFS that counts shortest paths (sigma) and
a backward dependency accumulation (delta) — over both physical layouts
the paper measures in Figure 14(a): the reference CSR arrays and a naive
linked-structure implementation (the paper's ``SSCA_LDS`` μkernel is the
linked flavour).
"""

from __future__ import annotations

import random
from collections import deque

from repro.workloads.graphs import (
    CSRGraph,
    EDGE_NEXT_OFFSET,
    EDGE_TARGET_OFFSET,
    EDGES_OFFSET,
    LinkedGraph,
    rmat_edges,
)
from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

WORD = 8


def betweenness_reference(neighbors, n: int, sources: list[int]) -> list[float]:
    """Brandes betweenness over the substrate (validation helper)."""
    bc = [0.0] * n
    for s in sources:
        sigma = [0] * n
        dist = [-1] * n
        preds: list[list[int]] = [[] for _ in range(n)]
        sigma[s] = 1
        dist[s] = 0
        order = []
        work = deque([s])
        while work:
            u = work.popleft()
            order.append(u)
            for v in neighbors(u):
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    work.append(v)
                if dist[v] == dist[u] + 1:
                    sigma[v] += sigma[u]
                    preds[v].append(u)
        delta = [0.0] * n
        for v in reversed(order):
            for p in preds[v]:
                delta[p] += sigma[p] / sigma[v] * (1 + delta[v])
            if v != s:
                bc[v] += delta[v]
    return bc


class _SSCA2Base(TraceProgram):
    """Shared parameters for the two layouts."""

    def __init__(
        self,
        *,
        scale: int = 8,
        edge_factor: int = 8,
        num_sources: int = 4,
        placement: str = "shuffled",
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.scale = scale
        self.edge_factor = edge_factor
        self.num_sources = num_sources
        self.placement = placement

    def _sources(self, n: int) -> list[int]:
        rng = random.Random(self.seed + 1)
        return [rng.randrange(n) for _ in range(self.num_sources)]


class SSCA2CSRProgram(_SSCA2Base):
    """Betweenness centrality over CSR (the reference implementation)."""

    name = "ssca2-csr"
    suite = "hpcs"

    def build(self) -> TraceBuilder:
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        n = 1 << self.scale
        graph = CSRGraph(n, rmat_edges(self.scale, self.edge_factor, self.seed), heap)
        sigma_base = heap.alloc(n * WORD)
        dist_base = heap.alloc(n * WORD)
        delta_base = heap.alloc(n * WORD)
        row_hints = tb.index_hints("row_offsets")
        col_hints = tb.index_hints("col_indices")

        for s in self._sources(n):
            sigma = [0] * n
            dist = [-1] * n
            sigma[s] = 1
            dist[s] = 0
            order = []
            work = deque([s])
            while work:
                u = work.popleft()
                order.append(u)
                lo, hi = graph.row_offsets[u], graph.row_offsets[u + 1]
                tb.load(graph.row_addr(u), "bc.rowlo", value=lo, hints=row_hints, gap=2)
                tb.load(graph.row_addr(u + 1), "bc.rowhi", value=hi, hints=row_hints, gap=1)
                for i in range(lo, hi):
                    v = graph.col_indices[i]
                    tb.load(graph.col_addr(i), "bc.col", value=v, hints=col_hints, gap=1)
                    tb.load(dist_base + v * WORD, "bc.dist", value=dist[v], depends=True, gap=1)
                    fresh = dist[v] < 0
                    tb.branch(fresh)
                    if fresh:
                        dist[v] = dist[u] + 1
                        tb.store(dist_base + v * WORD, "bc.setdist", gap=1)
                        work.append(v)
                    if dist[v] == dist[u] + 1:
                        sigma[v] += sigma[u]
                        tb.load(sigma_base + v * WORD, "bc.sigma", value=sigma[v], gap=1)
                        tb.store(sigma_base + v * WORD, "bc.addsigma", gap=1)

            # backward accumulation
            for v in reversed(order):
                lo, hi = graph.row_offsets[v], graph.row_offsets[v + 1]
                tb.load(graph.row_addr(v), "bc.browlo", value=lo, hints=row_hints, gap=2)
                for i in range(lo, hi):
                    w = graph.col_indices[i]
                    tb.load(graph.col_addr(i), "bc.bcol", value=w, hints=col_hints, gap=1)
                    tb.load(delta_base + w * WORD, "bc.delta", value=0, depends=True, gap=2)
                    downstream = dist[w] == dist[v] + 1
                    tb.branch(downstream)
                    if downstream:
                        tb.store(delta_base + v * WORD, "bc.adddelta", gap=2)
        return tb


class SSCA2ListProgram(_SSCA2Base):
    """Betweenness centrality over the naive linked layout (SSCA_LDS)."""

    name = "ssca2-list"
    suite = "hpcs"

    def build(self) -> TraceBuilder:
        heap = Heap(placement=self.placement, seed=self.seed)
        tb = TraceBuilder()
        n = 1 << self.scale
        graph = LinkedGraph(n, rmat_edges(self.scale, self.edge_factor, self.seed), heap)
        sigma_base = heap.alloc(n * WORD)
        dist_base = heap.alloc(n * WORD)
        delta_base = heap.alloc(n * WORD)
        edge_hints = tb.pointer_hints("edge", EDGE_NEXT_OFFSET)
        head_hints = tb.pointer_hints("vertex", EDGES_OFFSET)

        def _edge_sweep(u: int, site_prefix: str, body) -> None:
            vert = graph.vertices[u]
            edge = vert.edges
            tb.load(
                vert.addr + EDGES_OFFSET,
                f"{site_prefix}.head",
                value=edge.addr if edge else 0,
                hints=head_hints,
                gap=2,
            )
            while edge is not None:
                tb.load(
                    edge.addr + EDGE_TARGET_OFFSET,
                    f"{site_prefix}.target",
                    value=edge.target.addr,
                    depends=True,
                    gap=1,
                )
                body(edge.target.vid)
                nxt = edge.next
                tb.load(
                    edge.addr + EDGE_NEXT_OFFSET,
                    f"{site_prefix}.next",
                    value=nxt.addr if nxt else 0,
                    depends=True,
                    hints=edge_hints,
                    gap=1,
                )
                edge = nxt

        for s in self._sources(n):
            sigma = [0] * n
            dist = [-1] * n
            sigma[s] = 1
            dist[s] = 0
            order: list[int] = []
            work = deque([s])
            while work:
                u = work.popleft()
                order.append(u)

                def _forward(v: int, u: int = u) -> None:
                    tb.load(dist_base + v * WORD, "lbc.dist", value=dist[v], gap=1)
                    fresh = dist[v] < 0
                    tb.branch(fresh)
                    if fresh:
                        dist[v] = dist[u] + 1
                        tb.store(dist_base + v * WORD, "lbc.setdist", gap=1)
                        work.append(v)
                    if dist[v] == dist[u] + 1:
                        sigma[v] += sigma[u]
                        tb.load(sigma_base + v * WORD, "lbc.sigma", value=sigma[v], gap=1)
                        tb.store(sigma_base + v * WORD, "lbc.addsigma", gap=1)

                _edge_sweep(u, "lbc.f", _forward)

            for v in reversed(order):

                def _backward(w: int, v: int = v) -> None:
                    tb.load(delta_base + w * WORD, "lbc.delta", value=0, gap=2)
                    downstream = dist[w] == dist[v] + 1
                    tb.branch(downstream)
                    if downstream:
                        tb.store(delta_base + v * WORD, "lbc.adddelta", gap=2)

                _edge_sweep(v, "lbc.b", _backward)
        return tb


class SSCALDSProgram(SSCA2ListProgram):
    """The μkernel alias the paper lists separately (linked version)."""

    name = "ssca-lds"
    suite = "ukernel-alg"

    def __init__(self, **kwargs):
        kwargs.setdefault("scale", 7)
        kwargs.setdefault("num_sources", 3)
        super().__init__(**kwargs)
