"""Set-associative cache with LRU replacement and prefetch-bit tracking.

This is a functional cache model: it tracks which lines are resident, which
arrived via prefetch, and whether a prefetched line has been touched by a
demand access yet.  The per-line prefetch bookkeeping feeds the Figure 9
access classification (useful prefetch vs. ``prefetch never hit``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.address import LINE_BYTES, is_power_of_two


@dataclass(slots=True)
class CacheConfig:
    """Geometry of one cache level (Table 2 of the paper)."""

    size_bytes: int
    ways: int
    line_bytes: int = LINE_BYTES
    latency: int = 1
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if not is_power_of_two(self.num_sets):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(slots=True)
class CacheLine:
    """Metadata for one resident line."""

    line: int
    prefetched: bool = False
    referenced: bool = False
    fill_time: int = 0


@dataclass(slots=True)
class _CacheSet:
    """One associativity set.

    The ``lines`` dict doubles as the LRU order: every touch deletes and
    re-inserts the key, so iteration order is recency order and the LRU
    victim is the first key.  Use ticks were unique per set, so the old
    min-tick victim scan selected exactly this line.
    """

    lines: dict[int, CacheLine] = field(default_factory=dict)


class Cache:
    """Functional set-associative cache with true-LRU replacement.

    Addresses passed to :meth:`lookup`, :meth:`fill` and friends are *line
    numbers* (byte address // line size) so that callers never mix byte and
    line arithmetic.
    """

    __slots__ = (
        "config",
        "_sets",
        "_num_sets",
        "_ways",
        "unused_prefetch_evictions",
        "used_prefetch_fills",
    )

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets = [_CacheSet() for _ in range(config.num_sets)]
        self._num_sets = config.num_sets
        self._ways = config.ways
        #: lines that were filled by a prefetch and evicted untouched
        self.unused_prefetch_evictions = 0
        #: lines that were filled by a prefetch and later referenced
        self.used_prefetch_fills = 0

    def _set_for(self, line: int) -> _CacheSet:
        return self._sets[line % self._num_sets]

    def contains(self, line: int) -> bool:
        """True when ``line`` is resident (does not update LRU state)."""
        return line in self._sets[line % self._num_sets].lines

    def peek(self, line: int) -> CacheLine | None:
        """Return resident-line metadata without touching LRU state."""
        return self._sets[line % self._num_sets].lines.get(line)

    def lookup(self, line: int) -> CacheLine | None:
        """Demand lookup: returns the line and updates LRU / reference bits."""
        lines = self._sets[line % self._num_sets].lines
        entry = lines.get(line)
        if entry is None:
            return None
        del lines[line]  # move to the most-recent end
        lines[line] = entry
        if entry.prefetched and not entry.referenced:
            self.used_prefetch_fills += 1
        entry.referenced = True
        return entry

    def demand_lookup(self, line: int) -> tuple[CacheLine | None, bool]:
        """Fused peek + lookup for the demand path.

        Returns ``(entry, fresh_prefetch)`` where ``fresh_prefetch`` is
        whether the line arrived by prefetch and this is its first demand
        touch — the value :meth:`peek` would have reported *before* the
        :meth:`lookup` side effects.  State updates are exactly those of
        ``lookup`` on a hit and none on a miss.
        """
        lines = self._sets[line % self._num_sets].lines
        entry = lines.get(line)
        if entry is None:
            return None, False
        del lines[line]  # move to the most-recent end
        lines[line] = entry
        fresh_prefetch = entry.prefetched and not entry.referenced
        if fresh_prefetch:
            self.used_prefetch_fills += 1
        entry.referenced = True
        return entry, fresh_prefetch

    def fill(self, line: int, *, prefetched: bool = False, now: int = 0) -> int | None:
        """Install ``line``; returns the evicted line number, if any.

        Filling a line that is already resident refreshes its LRU position
        but never downgrades a demand-fetched line to ``prefetched``.
        """
        lines = self._sets[line % self._num_sets].lines
        existing = lines.get(line)
        if existing is not None:
            del lines[line]  # refresh: move to the most-recent end
            lines[line] = existing
            return None
        victim = None
        if len(lines) >= self._ways:
            victim = next(iter(lines))  # least recently used
            evicted = lines.pop(victim)
            if evicted.prefetched and not evicted.referenced:
                self.unused_prefetch_evictions += 1
        lines[line] = CacheLine(line=line, prefetched=prefetched, fill_time=now)
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if resident; returns True when something was removed."""
        cset = self._set_for(line)
        if line in cset.lines:
            entry = cset.lines.pop(line)
            if entry.prefetched and not entry.referenced:
                self.unused_prefetch_evictions += 1
            return True
        return False

    def resident_lines(self) -> list[int]:
        """All resident line numbers (test/debug helper)."""
        return [line for cset in self._sets for line in cset.lines]

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(cset.lines) for cset in self._sets)

    def resident_unused_prefetches(self) -> int:
        """Prefetched lines still resident that no demand has touched."""
        return sum(
            1
            for cset in self._sets
            for entry in cset.lines.values()
            if entry.prefetched and not entry.referenced
        )
