"""Bridge between :class:`~repro.sim.simulator.Simulator` and the C kernel.

One native run is the phase pipeline the package docstring describes:
:func:`phase_decode` extracts the columns, :func:`phase_kernel` drives the
compiled state machine (including warmup orchestration), and
:func:`phase_finalize` folds the kernel's output block into the exact
:class:`~repro.sim.metrics.SimulationResult` the interpreted path builds.
The phases are module-level functions on purpose: ``repro profile``
attributes time to them by name.

State ownership: once a simulator or prefetcher has run natively, its
native handle — not the untouched Python object — is the authoritative
state.  The registries below remember that.  A run that cannot stay
native (unsupported config, a decode failure) *before* any handle exists
falls back to the interpreted path; the same failure on an object that
already carries native state raises, because silently resuming from the
stale Python state would diverge.
"""

from __future__ import annotations

import itertools
import logging
from weakref import WeakKeyDictionary

from repro.core.bandit import EpsilonGreedyPolicy, SoftmaxPolicy
from repro.core.prefetcher import ContextPrefetcher
from repro.core.reward import FlatRewardFunction, RewardFunction
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.stats import AccessClass, AccessClassifier, CacheStats
from repro.prefetchers.ghb import GHBPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.nopf import NoPrefetcher
from repro.prefetchers.sms import SMSPrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.sim.metrics import HitDepthCDF, SimulationResult
from repro.sim.native import decode
from repro.sim.native._csrc import CTX_COUNTER_SLOTS, OUT_SLOTS
from repro.sim.native.build import kernel_or_none

log = logging.getLogger(__name__)

#: the kernel's fixed per-access request buffer (MAX_REQS in the C source)
MAX_REQUESTS = 64

#: kernel prefetcher kinds (PF_* in the C source), keyed by *exact* type —
#: a subclass may override behaviour the port does not model
_PF_NONE, _PF_STRIDE, _PF_GHB, _PF_SMS, _PF_MARKOV, _PF_CONTEXT = range(6)
_PF_KINDS = {
    NoPrefetcher: _PF_NONE,
    StridePrefetcher: _PF_STRIDE,
    GHBPrefetcher: _PF_GHB,
    SMSPrefetcher: _PF_SMS,
    MarkovPrefetcher: _PF_MARKOV,
    ContextPrefetcher: _PF_CONTEXT,
}

#: Simulator -> RpSim handle and Prefetcher -> RpPf handle.  Weak keys:
#: a handle frees (``ffi.gc``) when its owner is collected — exactly the
#: lifetime of the Python-side state it replaces.  Only this module's
#: functions touch these, and every process builds its own handles, so
#: the registries never cross the spawn boundary.
_SIM_STATES: "WeakKeyDictionary" = WeakKeyDictionary()
_PF_STATES: "WeakKeyDictionary" = WeakKeyDictionary()

#: simulators whose native runs skipped the branch-history fold: the
#: kernel only replays branch outcomes for the context family (the one
#: consumer), so a simulator that ran native with any other family has a
#: stale BHR a later context run must not silently adopt
_SIM_BRANCH_BLIND: "WeakKeyDictionary" = WeakKeyDictionary()

#: TraceReader -> {(limit, line_bytes, with_context): Columns}.  Every
#: kernel input column is ``const`` in the C source, so decoded columns
#: are immutable and safe to replay across runs.  Warm sweep workers
#: keep their readers resident batch over batch, which makes this memo
#: the piece that amortises decode to once per (trace, shape) instead of
#: once per cell; weak keys free the arrays with the reader.
_READER_COLUMNS: "WeakKeyDictionary" = WeakKeyDictionary()


def reset_state_registries() -> None:
    """Drop every native handle (test isolation helper)."""
    _SIM_STATES.clear()
    _PF_STATES.clear()
    _SIM_BRANCH_BLIND.clear()
    _READER_COLUMNS.clear()


# ----------------------------------------------------------------------
# eligibility


def _pf_kind(pf) -> int | None:
    return _PF_KINDS.get(type(pf))


def _pf_config_values(pf, kind: int) -> list[int] | None:
    """The kernel's config array for ``pf``, or None when it cannot fit."""
    if kind == _PF_NONE:
        return [0]
    c = pf.config
    if kind == _PF_STRIDE:
        if c.degree > MAX_REQUESTS:
            return None
        return [
            c.table_entries,
            c.degree,
            c.line_bytes,
            1 if c.train_on_miss_only else 0,
        ]
    if kind == _PF_GHB:
        if c.degree > MAX_REQUESTS:
            return None
        return [
            c.ghb_entries,
            c.index_entries,
            c.match_length,
            c.degree,
            c.max_walk,
            1 if c.localization == "pc" else 0,
            c.line_bytes,
            1 if c.train_on_miss_only else 0,
        ]
    if kind == _PF_SMS:
        # the pattern bitmap is one u64 and a replay fans out at most
        # lines_per_region - 1 requests; both bound by MAX_REQUESTS
        if c.lines_per_region > MAX_REQUESTS:
            return None
        return [
            c.region_bytes,
            c.line_bytes,
            c.filter_entries,
            c.agt_entries,
            c.pht_entries,
            c.generation_timeout,
        ]
    if c.degree > MAX_REQUESTS:  # markov
        return None
    return [
        c.table_entries,
        c.successors_per_entry,
        c.degree,
        c.line_bytes,
        1 if c.train_on_miss_only else 0,
    ]


def _seed_key(seed: int) -> list[int]:
    """CPython ``random.Random(seed)`` key: |seed| as little-endian u32
    words (``random_seed`` feeds exactly this array to ``init_by_array``;
    zero seeds as the one-word key ``[0]``)."""
    v = abs(int(seed))
    words = []
    while v:
        words.append(v & 0xFFFFFFFF)
        v >>= 32
    return words or [0]


def _recenter_geometry_ok(cfg) -> bool:
    """True when every reachable recentered reward window is valid.

    The adaptive-window extension rebuilds the reward function around any
    integer center inside ``window_center_bounds``; the interpreted
    oracle raises from ``RewardFunction.__post_init__`` the moment a
    slide produces an empty window, and the kernel cannot reproduce an
    exception mid-run, so such configs stay interpreted.
    """
    half_lo = cfg.window_center - cfg.window_lo
    half_hi = cfg.window_hi - cfg.window_center
    lo_b, hi_b = cfg.window_center_bounds
    for center in range(min(lo_b, hi_b), max(lo_b, hi_b) + 1):
        hi = min(center + half_hi, cfg.prefetch_queue_entries)
        lo = max(1, center - half_lo)
        cen = min(center, hi)
        if lo >= hi or not lo <= cen <= hi:
            return False
    return True


def _ctx_config_values(pf):
    """``((icfg, dcfg, seed_key), None)`` for the context kernel, or
    ``(None, reason)`` when the config cannot be represented exactly.

    The knobs are marshalled from the *live* component objects (policy,
    reducer, tracker) — the same flattened attributes the interpreted
    hot path reads — so a hand-mutated component disagrees loudly in the
    parity suites instead of silently reading stale config fields.
    """
    cfg = pf.config
    policy = pf.policy
    reward = pf.reward
    if type(policy) not in (EpsilonGreedyPolicy, SoftmaxPolicy):
        return None, "the policy subclass has no native port"
    if type(reward) not in (RewardFunction, FlatRewardFunction):
        return None, "the reward subclass has no native port"
    flat = type(reward) is FlatRewardFunction
    if not flat and cfg.reward_peak == 1:
        return None, "degenerate bell reward (peak == 1) raises at call time"
    if policy._max_degree + 2 > MAX_REQUESTS:
        return None, "max_degree exceeds the kernel's request buffer"
    if cfg.cst_links > (1 << 31):
        return None, "cst_links exceeds the single-word getrandbits range"
    if cfg.adaptive_window and not _recenter_geometry_ok(cfg):
        return None, "a reachable recentered reward window is invalid"
    softmax = type(policy) is SoftmaxPolicy
    sample_depths = [int(d) for d in pf._sample_depths]
    thresholds = [float(t) for t in policy._degree_thresholds]
    lo_bound, hi_bound = cfg.window_center_bounds
    icfg = [
        cfg.cst_entries,
        cfg.cst_links,
        cfg.cst_tag_bits,
        cfg.reducer_entries,
        cfg.reducer_tag_bits,
        cfg.full_hash_bits,
        cfg.reduced_hash_bits,
        cfg.history_entries,
        cfg.prefetch_queue_entries,
        cfg.block_bytes,
        cfg.delta_granularity,
        cfg.delta_min,
        cfg.delta_max,
        cfg.window_lo,
        cfg.window_hi,
        cfg.window_center,
        cfg.reward_peak,
        cfg.late_penalty,
        cfg.early_penalty,
        cfg.score_min,
        cfg.score_max,
        cfg.initial_score,
        cfg.replace_threshold,
        policy._score_threshold,
        policy._max_degree,
        pf._r_alloc_active.bits,
        len(pf.reducer._initial),
        cfg.overload_refs,
        cfg.overload_check_period,
        cfg.underload_lookups,
        1 if pf._adapt_enabled else 0,
        1 if policy._shadow_on else 0,
        1 if policy._adaptive_eps else 0,
        1 if flat else 0,
        1 if softmax else 0,
        1 if pf._adaptive_window else 0,
        pf._window_update_period,
        lo_bound,
        hi_bound,
        pf._addr_history_depth,
        len(sample_depths),
        len(thresholds),
        *sample_depths,
    ]
    dcfg = [
        policy._eps_min,
        float(policy._eps_range),
        policy._fixed_eps,
        policy._alpha,
        policy._shadow_p,
        cfg.softmax_temperature,
        *thresholds,
    ]
    return (icfg, dcfg, _seed_key(cfg.seed)), None


def _hier_config_values(hier) -> list[int]:
    return _hier_values(hier.config)


def _hier_values(c) -> list[int]:
    return [
        c.l1_size,
        c.l1_ways,
        c.l1_latency,
        c.l1_mshrs,
        c.l2_size,
        c.l2_ways,
        c.l2_latency,
        c.l2_mshrs,
        c.dram_latency,
        c.dram_service_interval,
        c.line_bytes,
        c.prefetch_buffers,
        c.prefetch_mshr_reserve,
        c.prefetch_backlog_depth,
        1 if c.prefetch_fill_l1 else 0,
    ]


def _sim_pristine(sim) -> bool:
    return (
        sim._cycle_base == 0
        and sim.hierarchy.is_pristine()
        and sim.core.is_pristine()
        and sim.bhr._value == 0
    )


def _handles(sim, pf, kind: int, kernel, ctx_cfg=None):
    """The (RpSim, RpPf) handle pair for this run, creating as needed.

    Returns ``(None, None)`` when the pair cannot be assembled without
    mixing native and interpreted state *and* no native state exists yet
    (clean fallback); raises when one side already carries native state.
    """
    ffi, lib = kernel.ffi, kernel.lib
    sim_h = _SIM_STATES.get(sim)
    pf_h = _PF_STATES.get(pf)
    if sim_h is None and not _sim_pristine(sim):
        if pf_h is not None:
            raise RuntimeError(
                "prefetcher carries native state but the simulator already "
                "ran interpreted; mixed native/interpreted runs are "
                "unsupported"
            )
        return None, None
    if pf_h is None and not pf.is_pristine():
        if sim_h is not None:
            raise RuntimeError(
                "simulator carries native state but the prefetcher already "
                "ran interpreted; mixed native/interpreted runs are "
                "unsupported"
            )
        return None, None
    if sim_h is None:
        hier_cfg = ffi.new("int64_t[]", _hier_config_values(sim.hierarchy))
        core_cfg = ffi.new(
            "int64_t[]",
            [
                sim.core.config.issue_width,
                sim.core.config.rob_size,
                sim.core.config.lq_size,
                sim.bhr._mask,
            ],
        )
        ptr = lib.rp_sim_new(hier_cfg, core_cfg)
        if ptr == ffi.NULL:
            raise MemoryError("native simulator state allocation failed")
        sim_h = ffi.gc(ptr, lib.rp_sim_free)
        _SIM_STATES[sim] = sim_h
    if pf_h is None:
        if kind == _PF_CONTEXT:
            icfg, dcfg, key = ctx_cfg
            p_icfg = ffi.new("int64_t[]", icfg)
            p_dcfg = ffi.new("double[]", dcfg)
            p_key = ffi.new("uint32_t[]", key)
            ptr = lib.rp_pf_ctx_new(p_icfg, p_dcfg, p_key, len(key))
        else:
            pf_cfg = ffi.new("int64_t[]", _pf_config_values(pf, kind))
            ptr = lib.rp_pf_new(kind, pf_cfg)
        if ptr == ffi.NULL:
            raise MemoryError("native prefetcher state allocation failed")
        pf_h = ffi.gc(ptr, lib.rp_pf_free)
        _PF_STATES[pf] = pf_h
    return sim_h, pf_h


# ----------------------------------------------------------------------
# phases


def phase_decode(trace, limit, line_bytes, *, with_context: bool = False):
    """Columns for ``trace``, plus the (trace, limit) a fallback should use.

    A one-shot iterator is materialised (with the limit applied) so a
    decode failure hands the interpreted path a re-iterable list instead
    of a half-consumed generator.  ``with_context`` additionally decodes
    the value/branch/hint columns the context RL kernel consumes.
    """
    from repro.workloads.store import TraceReader

    if isinstance(trace, TraceReader):
        memo = _READER_COLUMNS.setdefault(trace, {})
        key = (limit, line_bytes, with_context)
        cols = memo.get(key)
        if cols is None:
            cols = decode.columns_from_reader(
                trace, limit, line_bytes, with_context=with_context
            )
            if cols is not None:  # decode failures are not memoized
                memo[key] = cols
        return cols, trace, limit
    if isinstance(trace, (list, tuple)):
        accesses = trace if limit is None else trace[:limit]
        cols = decode.columns_from_accesses(
            accesses, line_bytes, with_context=with_context
        )
        return cols, trace, limit
    accesses = (
        list(itertools.islice(trace, limit)) if limit is not None else list(trace)
    )
    cols = decode.columns_from_accesses(
        accesses, line_bytes, with_context=with_context
    )
    return cols, accesses, None


def _checked_run(lib, rc: int) -> None:
    if rc != 0:
        raise MemoryError("native kernel ran out of memory mid-run")


def phase_kernel(kernel, sim_h, pf_h, cols, start_index: int, warmup: int):
    """Drive the compiled per-access loop; returns the raw output block.

    Warmup replays the leading ``warmup`` accesses (their output block is
    discarded), resets the statistics counters without disturbing warm
    state, and replays the remainder — the native mirror of the
    interpreted :meth:`Simulator.run` warmup recursion, including its
    ``ValueError`` on a warmup that consumes the whole trace.
    """
    ffi, lib = kernel.ffi, kernel.lib
    n = cols.n
    if warmup and warmup >= n:
        raise ValueError("warmup consumes the whole trace")
    out = ffi.new("int64_t[]", OUT_SLOTS)
    p_addr = ffi.from_buffer("uint64_t[]", cols.addrs)
    p_pc = ffi.from_buffer("uint64_t[]", cols.pcs)
    p_line = ffi.from_buffer("uint64_t[]", cols.lines)
    p_gap = ffi.from_buffer("uint32_t[]", cols.inst_gaps)
    p_flag = ffi.from_buffer("uint8_t[]", cols.flags)
    if cols.values is not None:
        # context columns; every kernel read of these is gated on the
        # context family, so other families pass the NULLs below
        ctx_cols = [
            ffi.from_buffer("int64_t[]", cols.values),
            ffi.from_buffer("int64_t[]", cols.reg_values),
            ffi.from_buffer("uint64_t[]", cols.branch_bits),
            ffi.from_buffer("uint16_t[]", cols.branch_counts),
            ffi.from_buffer("uint32_t[]", cols.type_ids),
            ffi.from_buffer("uint32_t[]", cols.link_offsets),
            ffi.from_buffer("uint8_t[]", cols.ref_forms),
        ]
    else:
        ctx_cols = [ffi.NULL] * 7

    def _ctx_at(offset):
        if offset == 0 or cols.values is None:
            return ctx_cols
        return [p + offset for p in ctx_cols]

    if warmup:
        _checked_run(
            lib,
            lib.rp_run(
                sim_h, pf_h, warmup, start_index, p_addr, p_pc, p_line, p_gap,
                p_flag, *ctx_cols, out,
            ),
        )
        lib.rp_reset_stats(sim_h)
        _checked_run(
            lib,
            lib.rp_run(
                sim_h, pf_h, n - warmup, start_index + warmup, p_addr + warmup,
                p_pc + warmup, p_line + warmup, p_gap + warmup, p_flag + warmup,
                *_ctx_at(warmup), out,
            ),
        )
    else:
        _checked_run(
            lib,
            lib.rp_run(
                sim_h, pf_h, n, start_index, p_addr, p_pc, p_line, p_gap,
                p_flag, *ctx_cols, out,
            ),
        )
    return out


def phase_finalize(out, *, workload_name: str, pf, ctx=None) -> SimulationResult:
    """Fold the kernel's output block into a :class:`SimulationResult`.

    Mirrors the interpreted construction exactly: class counts fold into
    a pre-seeded :class:`AccessClassifier` (plot order preserved), the
    wasted-prefetch count lands in ``PREFETCH_NEVER_HIT``, and the depth
    histogram replays through :meth:`HitDepthCDF.add`.

    For a context run ``ctx`` is the ``(kernel, pf_h)`` pair: the hit
    depths come from the prefetcher's own per-queue-entry histogram when
    it is non-empty (the interpreted ``if own_histogram:`` truthiness, in
    Counter insertion order) and the accuracy from the kernel-side
    policy EMA — the Python policy object never observed the run.
    """
    classifier = AccessClassifier()
    counts = classifier.counts
    counts[AccessClass.HIT_PREFETCHED] += out[8]
    counts[AccessClass.SHORTER_WAIT] += out[9]
    counts[AccessClass.NON_TIMELY] += out[10]
    counts[AccessClass.MISS_NOT_PREFETCHED] += out[11]
    counts[AccessClass.HIT_OLDER_DEMAND] += out[12]
    classifier.demand_accesses += out[14]
    classifier.record_wasted_prefetch(out[13])
    hit_depths = HitDepthCDF()
    accuracy = None
    own_histogram = False
    if ctx is not None:
        kernel, pf_h = ctx
        ffi, lib = kernel.ffi, kernel.lib
        accuracy = lib.rp_pf_ctx_accuracy(pf_h)
        hlen = lib.rp_pf_ctx_hist_len(pf_h)
        if hlen:
            own_histogram = True
            depths = ffi.new("int64_t[]", hlen)
            hcounts = ffi.new("int64_t[]", hlen)
            lib.rp_pf_ctx_hist(pf_h, depths, hcounts)
            for i in range(hlen):
                hit_depths.add(depths[i], hcounts[i])
    if not own_histogram:
        for depth in range(129):
            count = out[19 + depth]
            if count:
                hit_depths.add(depth, count)
    return SimulationResult(
        workload=workload_name,
        prefetcher=pf.name,
        instructions=out[0],
        cycles=out[1],
        l1=CacheStats(name="L1D", accesses=out[2], hits=out[3], misses=out[4]),
        l2=CacheStats(name="L2", accesses=out[5], hits=out[6], misses=out[7]),
        classifier=classifier,
        hit_depths=hit_depths,
        prefetches_issued=out[15],
        prefetches_shadow=out[16],
        prefetches_rejected=out[17],
        prefetches_redundant=out[18],
        prefetcher_accuracy=accuracy if accuracy is not None else pf.accuracy(),
        storage_bits=pf.storage_bits(),
    )


# ----------------------------------------------------------------------
# entry point


def _fall_back(committed: bool, trace, limit, reason: str):
    if committed:
        raise RuntimeError(
            f"native simulation state is already active but this run cannot "
            f"stay native ({reason}); mixed native/interpreted runs on one "
            f"simulator are unsupported"
        )
    log.debug("native path unavailable (%s); using the interpreted kernel", reason)
    return False, None, trace, limit, reason


def try_native_run(sim, trace, *, workload_name, limit, start_index, warmup):
    """Attempt to run ``sim`` over ``trace`` natively.

    Returns ``(handled, result, trace, limit, reason)``.  When
    ``handled`` is False the caller must continue on the interpreted path
    using the *returned* trace and limit — a one-shot input iterator has
    been materialised (limit already applied, so it comes back ``None``)
    — and ``reason`` names why the run fell back (``None`` on success).
    """
    pf = sim.prefetcher
    committed = sim in _SIM_STATES or pf in _PF_STATES
    kind = _pf_kind(pf)
    if kind is None:
        return _fall_back(
            committed, trace, limit, f"the {pf.name} prefetcher has no native port"
        )
    is_ctx = kind == _PF_CONTEXT
    ctx_cfg = None
    if is_ctx:
        ctx_cfg, reason = _ctx_config_values(pf)
        if ctx_cfg is None:
            return _fall_back(committed, trace, limit, reason)
    elif _pf_config_values(pf, kind) is None:
        return _fall_back(
            committed,
            trace,
            limit,
            f"the {pf.name} config exceeds the kernel's fixed buffers",
        )
    kernel = kernel_or_none()
    if kernel is None:
        return _fall_back(committed, trace, limit, "compiled kernel unavailable")
    cols, trace, limit = phase_decode(
        trace, limit, sim.hierarchy.config.line_bytes, with_context=is_ctx
    )
    if cols is None:
        return _fall_back(committed, trace, limit, "column decode fell back")
    if is_ctx and _SIM_BRANCH_BLIND.get(sim):
        return _fall_back(
            sim in _SIM_STATES,
            trace,
            limit,
            "the simulator's native runs skipped the branch-history fold",
        )
    sim_h, pf_h = _handles(sim, pf, kind, kernel, ctx_cfg)
    if sim_h is None:
        return _fall_back(
            False, trace, limit, "simulator or prefetcher carries interpreted state"
        )
    out = phase_kernel(kernel, sim_h, pf_h, cols, start_index, warmup)
    if not is_ctx:
        _SIM_BRANCH_BLIND[sim] = True
    result = phase_finalize(
        out,
        workload_name=workload_name,
        pf=pf,
        ctx=(kernel, pf_h) if is_ctx else None,
    )
    return True, result, trace, limit, None


# ----------------------------------------------------------------------
# batch entry point: one GIL-released call for a whole workload-pure shard


#: deterministic telemetry for the in-kernel batch calls made by this
#: process — counts only, no clocks (DET003 holds here too).  ``repro
#: profile`` and the sched tests read it; workers each keep their own
#: copy (nothing crosses the spawn boundary).
_BATCH_COUNTERS = {
    "batches": 0,
    "cells": 0,
    "native_cells": 0,
    "fallback_cells": 0,
    "kernel_threads": 0,
    "openmp": 0,
}


def batch_counters() -> dict:
    """A snapshot of this process's in-kernel batch telemetry."""
    return dict(_BATCH_COUNTERS)


def reset_batch_counters() -> None:
    """Zero the batch telemetry (test isolation helper)."""
    for key in _BATCH_COUNTERS:
        _BATCH_COUNTERS[key] = 0


def _batch_handles(kernel, p_hier, p_core, kind: int, pf, ctx_cfg):
    """A private (RpSim, RpPf) pair for one batch cell, or ``(None, None)``.

    Batch cells are one-shot: their handles live on the returned
    ``ffi.gc`` wrappers only and are *never* entered into the state
    registries, so a cell that degrades leaves its untouched Python
    prefetcher free to run interpreted.
    """
    ffi, lib = kernel.ffi, kernel.lib
    ptr = lib.rp_sim_new(p_hier, p_core)
    if ptr == ffi.NULL:
        return None, None
    sim_h = ffi.gc(ptr, lib.rp_sim_free)
    if kind == _PF_CONTEXT:
        icfg, dcfg, key = ctx_cfg
        p_icfg = ffi.new("int64_t[]", icfg)
        p_dcfg = ffi.new("double[]", dcfg)
        p_key = ffi.new("uint32_t[]", key)
        pf_ptr = lib.rp_pf_ctx_new(p_icfg, p_dcfg, p_key, len(key))
    else:
        pf_cfg = ffi.new("int64_t[]", _pf_config_values(pf, kind))
        pf_ptr = lib.rp_pf_new(kind, pf_cfg)
    if pf_ptr == ffi.NULL:
        return None, None
    return sim_h, ffi.gc(pf_ptr, lib.rp_pf_free)


def phase_batch_kernel(
    kernel, sim_hs, pf_hs, cols, start_index: int, warmup: int, threads: int
):
    """One ``rp_run_batch`` call over every cell; ``(outs, rcs)`` back.

    ``outs`` holds one private :data:`OUT_SLOTS` block per cell (cell
    ``j`` at ``outs + j * OUT_SLOTS``); ``rcs[j]`` is that cell's kernel
    status (0 ok).  The GIL is released for the whole call (cffi API
    mode) and the kernel fans cells across its OpenMP team when the
    loaded build has one — thread count cannot affect results, because
    cells share only ``const`` columns and write disjoint blocks.
    A module-level function so ``repro profile`` attributes the whole
    in-kernel span to one name.
    """
    ffi, lib = kernel.ffi, kernel.lib
    n = cols.n
    if warmup and warmup >= n:
        raise ValueError("warmup consumes the whole trace")
    ncells = len(sim_hs)
    sims = ffi.new("RpSim *[]", list(sim_hs))
    pfs = ffi.new("RpPf *[]", list(pf_hs))
    outs = ffi.new("int64_t[]", ncells * OUT_SLOTS)
    rcs = ffi.new("int32_t[]", ncells)
    p_addr = ffi.from_buffer("uint64_t[]", cols.addrs)
    p_pc = ffi.from_buffer("uint64_t[]", cols.pcs)
    p_line = ffi.from_buffer("uint64_t[]", cols.lines)
    p_gap = ffi.from_buffer("uint32_t[]", cols.inst_gaps)
    p_flag = ffi.from_buffer("uint8_t[]", cols.flags)
    if cols.values is not None:
        ctx_cols = [
            ffi.from_buffer("int64_t[]", cols.values),
            ffi.from_buffer("int64_t[]", cols.reg_values),
            ffi.from_buffer("uint64_t[]", cols.branch_bits),
            ffi.from_buffer("uint16_t[]", cols.branch_counts),
            ffi.from_buffer("uint32_t[]", cols.type_ids),
            ffi.from_buffer("uint32_t[]", cols.link_offsets),
            ffi.from_buffer("uint8_t[]", cols.ref_forms),
        ]
    else:
        ctx_cols = [ffi.NULL] * 7
    lib.rp_run_batch(
        ncells, sims, pfs, n, start_index, warmup,
        p_addr, p_pc, p_line, p_gap, p_flag, *ctx_cols,
        outs, rcs, max(0, int(threads)),
    )
    return outs, rcs


def run_native_batch(
    prefetchers,
    trace,
    *,
    workload_name: str,
    limit,
    hierarchy_config=None,
    core_config=None,
    bhr_bits: int = 8,
    warmup: int = 0,
    start_index: int = 0,
    threads: int = 0,
):
    """Execute N independent cells over one trace in one kernel call.

    Every cell gets a *fresh* simulator/prefetcher state built from the
    shared configs plus its own prefetcher's config — the exact state a
    ``Simulator(pf, ...)`` construction would hand :func:`try_native_run`
    — so cell ``i`` here is bit-identical to the single-cell native run
    of ``prefetchers[i]``, regardless of thread count or schedule.

    Returns ``(results, reasons, trace, limit)``: ``results[i]`` is the
    cell's :class:`SimulationResult` or ``None`` when it must run
    interpreted, in which case ``reasons[i]`` names why.  Per-cell
    conditions (no native port, unrepresentable config, kernel OOM)
    degrade that one cell; the call itself only raises for whole-shard
    programming errors (warmup consuming the trace).
    """
    n_cells = len(prefetchers)
    results: list = [None] * n_cells
    reasons: list = [None] * n_cells
    kernel = kernel_or_none()
    if kernel is None:
        reason = "compiled kernel unavailable"
        _count_batch(n_cells, 0, threads, 0)
        return results, [reason] * n_cells, trace, limit
    ffi, lib = kernel.ffi, kernel.lib
    kinds: list = [None] * n_cells
    ctx_cfgs: list = [None] * n_cells
    for i, pf in enumerate(prefetchers):
        kind = _pf_kind(pf)
        if kind is None:
            reasons[i] = f"the {pf.name} prefetcher has no native port"
            continue
        if pf in _PF_STATES or not pf.is_pristine():
            reasons[i] = "prefetcher carries prior run state"
            continue
        if kind == _PF_CONTEXT:
            ctx_cfg, reason = _ctx_config_values(pf)
            if ctx_cfg is None:
                reasons[i] = reason
                continue
            ctx_cfgs[i] = ctx_cfg
        elif _pf_config_values(pf, kind) is None:
            reasons[i] = (
                f"the {pf.name} config exceeds the kernel's fixed buffers"
            )
            continue
        kinds[i] = kind
    eligible = [i for i in range(n_cells) if reasons[i] is None]
    hier_cfg = hierarchy_config if hierarchy_config is not None else HierarchyConfig()
    if eligible:
        with_context = any(kinds[i] == _PF_CONTEXT for i in eligible)
        cols, trace, limit = phase_decode(
            trace, limit, hier_cfg.line_bytes, with_context=with_context
        )
        if cols is None:
            for i in eligible:
                reasons[i] = "column decode fell back"
            eligible = []
    if not eligible:
        _count_batch(n_cells, 0, threads, int(lib.rp_batch_openmp()))
        return results, reasons, trace, limit
    core_cfg = core_config if core_config is not None else CoreConfig()
    p_hier = ffi.new("int64_t[]", _hier_values(hier_cfg))
    p_core = ffi.new(
        "int64_t[]",
        [
            core_cfg.issue_width,
            core_cfg.rob_size,
            core_cfg.lq_size,
            (1 << bhr_bits) - 1,
        ],
    )
    sim_hs: list = []
    pf_hs: list = []
    run_idx: list[int] = []
    for i in eligible:
        sim_h, pf_h = _batch_handles(
            kernel, p_hier, p_core, kinds[i], prefetchers[i], ctx_cfgs[i]
        )
        if sim_h is None or pf_h is None:
            reasons[i] = "native state allocation failed"
            continue
        sim_hs.append(sim_h)
        pf_hs.append(pf_h)
        run_idx.append(i)
    native_cells = 0
    if run_idx:
        outs, rcs = phase_batch_kernel(
            kernel, sim_hs, pf_hs, cols, start_index, warmup, threads
        )
        for j, i in enumerate(run_idx):
            if rcs[j] != 0:
                reasons[i] = "native kernel ran out of memory mid-run"
                continue
            is_ctx = kinds[i] == _PF_CONTEXT
            results[i] = phase_finalize(
                outs + j * OUT_SLOTS,
                workload_name=workload_name,
                pf=prefetchers[i],
                ctx=(kernel, pf_hs[j]) if is_ctx else None,
            )
            native_cells += 1
    if native_cells != n_cells:
        log.debug(
            "batch kernel handled %d/%d cells; %d fell back",
            native_cells, n_cells, n_cells - native_cells,
        )
    _count_batch(n_cells, native_cells, threads, int(lib.rp_batch_openmp()))
    return results, reasons, trace, limit


def _count_batch(cells: int, native_cells: int, threads: int, openmp: int) -> None:
    _BATCH_COUNTERS["batches"] += 1
    _BATCH_COUNTERS["cells"] += cells
    _BATCH_COUNTERS["native_cells"] += native_cells
    _BATCH_COUNTERS["fallback_cells"] += cells - native_cells
    _BATCH_COUNTERS["kernel_threads"] = max(0, int(threads))
    _BATCH_COUNTERS["openmp"] = openmp


#: counter names ``rp_pf_ctx_counters`` fills, in slot order — the same
#: quantities ``repro profile`` reads off the interpreted components
CTX_COUNTER_NAMES = (
    "predictions_real",
    "predictions_shadow",
    "rewards_applied",
    "window_updates",
    "explorations",
    "exploitations",
    "queue_hits",
    "queue_expirations",
    "feedback_events",
    "associations_added",
    "associations_rejected_full",
    "associations_rejected_range",
    "cst_conflicts",
    "cst_occupancy",
    "reducer_allocations",
    "reducer_conflicts",
    "reducer_activations",
    "reducer_deactivations",
    "reducer_occupancy",
    "history_records",
)


def context_unit_counters(pf) -> dict | None:
    """The kernel-side bandit/CST/reward counters for a context
    prefetcher that ran natively, or ``None`` when no native handle
    exists (``repro profile --native`` reports this block)."""
    if _pf_kind(pf) != _PF_CONTEXT:
        return None
    kernel = kernel_or_none()
    if kernel is None:
        return None
    pf_h = _PF_STATES.get(pf)
    if pf_h is None:
        return None
    ffi, lib = kernel.ffi, kernel.lib
    buf = ffi.new("int64_t[]", CTX_COUNTER_SLOTS)
    lib.rp_pf_ctx_counters(pf_h, buf)
    return {name: int(buf[i]) for i, name in enumerate(CTX_COUNTER_NAMES)}
