"""The ``hashtest`` μkernel: STL ``unordered_map``-style chained hashing.

A bucket array of head pointers plus chained nodes.  A lookup loads the
bucket head (array-indexed — the hash obliterates any pattern in bucket
selection) and then chases the usually-short chain.  Like ``maptest``,
the paper classifies this among the hardest, input-dependent μkernels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

NODE_BYTES = 32
KEY_OFFSET = 0
NEXT_OFFSET = 16
BUCKET_BYTES = 8


@dataclass
class _HNode:
    addr: int
    key: int
    next: "_HNode | None" = None


class ChainedHashTable:
    """Open-hashing (separate-chaining) table substrate."""

    def __init__(self, heap: Heap, num_buckets: int = 256):
        if num_buckets <= 0:
            raise ValueError("need at least one bucket")
        self.heap = heap
        self.num_buckets = num_buckets
        self.bucket_base = heap.alloc(num_buckets * BUCKET_BYTES)
        self.buckets: list[_HNode | None] = [None] * num_buckets
        self.size = 0

    def bucket_of(self, key: int) -> int:
        # Multiplicative hash; deterministic across runs.
        return ((key * 0x9E3779B1) >> 16) % self.num_buckets

    def bucket_addr(self, index: int) -> int:
        return self.bucket_base + index * BUCKET_BYTES

    def insert(self, key: int) -> _HNode:
        node = _HNode(addr=self.heap.alloc(NODE_BYTES), key=key)
        idx = self.bucket_of(key)
        node.next = self.buckets[idx]
        self.buckets[idx] = node
        self.size += 1
        return node

    def chain(self, key: int) -> list[_HNode]:
        """Nodes visited looking up ``key`` (including the match, if any)."""
        visited = []
        node = self.buckets[self.bucket_of(key)]
        while node is not None:
            visited.append(node)
            if node.key == key:
                break
            node = node.next
        return visited

    def load_factor(self) -> float:
        return self.size / self.num_buckets


class HashLookupProgram(TraceProgram):
    """``hashtest``: random lookups against a chained hash table."""

    name = "hashtest"
    suite = "ukernel-ds"

    def __init__(
        self,
        *,
        num_keys: int = 4096,
        num_buckets: int = 1024,
        num_lookups: int = 8000,
        placement: str = "shuffled",
        heap_utilization: float = 0.5,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_keys = num_keys
        self.num_buckets = num_buckets
        self.num_lookups = num_lookups
        self.placement = placement
        self.heap_utilization = heap_utilization

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(
            placement=self.placement,
            utilization=self.heap_utilization,
            seed=self.seed,
        )
        tb = TraceBuilder()
        table = ChainedHashTable(heap, num_buckets=self.num_buckets)
        keys = rng.sample(range(1 << 20), self.num_keys)
        for key in keys:
            table.insert(key)

        bucket_hints = tb.index_hints("hash_bucket")
        next_hints = tb.pointer_hints("hash_node", NEXT_OFFSET)
        for _ in range(self.num_lookups):
            key = rng.choice(keys)
            idx = table.bucket_of(key)
            chain = table.chain(key)
            head = chain[0] if chain else None
            tb.load(
                table.bucket_addr(idx),
                "hash.bucket",
                value=head.addr if head else 0,
                reg_value=key,
                hints=bucket_hints,
                gap=4,  # hash computation
            )
            for node in chain:
                tb.load(
                    node.addr + KEY_OFFSET,
                    "hash.key",
                    value=node.key,
                    depends=True,
                    reg_value=key,
                    gap=1,
                )
                matched = node.key == key
                tb.branch(not matched)
                if matched:
                    break
                tb.load(
                    node.addr + NEXT_OFFSET,
                    "hash.next",
                    value=node.next.addr if node.next else 0,
                    depends=True,
                    hints=next_hints,
                    reg_value=key,
                    gap=1,
                )
        return tb
