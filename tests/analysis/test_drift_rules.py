"""DRIFT family: inline-parity pins, marker parsing, and the mutation gate."""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

from repro.analysis import analyze, load_project
from repro.analysis.runner import DEFAULT_ROOT
from repro.analysis.rules.drift import (
    DRIFT_PAIRS,
    InlineDriftRule,
    compute_fingerprints,
    load_pins,
    marker_regions,
)

CANON = """
class C:
    def m(self, x):
        "doc"
        return x + 1
"""

FAST = """
def run(x):
    # drift: begin pair1
    y = x + 1
    # drift: end pair1
    return y
"""

PAIRS = (("pair1", "canon.py", "C.m", "fast.py"),)


def write_fixture(root: Path, canon: str = CANON, fast: str = FAST) -> Path:
    (root / "canon.py").write_text(textwrap.dedent(canon), encoding="utf-8")
    (root / "fast.py").write_text(textwrap.dedent(fast), encoding="utf-8")
    return root


def drift_findings(root: Path, pins=None) -> list:
    project = load_project(root, manifest={})
    if pins is None:
        pins = compute_fingerprints(project, PAIRS)
    rule = InlineDriftRule(pairs=PAIRS, pins=pins)
    return analyze(project=project, rules=[rule])


class TestMarkerParsing:
    def test_regions_and_multi_region_concatenation(self):
        text = textwrap.dedent(
            """
            a = 1
            # drift: begin k
            b = 2
            # drift: end k
            c = 3
            # drift: begin k
            d = 4
            # drift: end k
            """
        )
        assert marker_regions(text, "k") == [(3, 5), (7, 9)]
        assert marker_regions(text, "other") == []


class TestDriftRule:
    def test_pinned_pair_is_clean(self, tmp_path):
        write_fixture(tmp_path)
        assert drift_findings(tmp_path) == []

    def test_docstring_and_comment_edits_do_not_fire(self, tmp_path):
        write_fixture(tmp_path)
        pins = compute_fingerprints(load_project(tmp_path, manifest={}), PAIRS)
        write_fixture(
            tmp_path,
            canon=CANON.replace('"doc"', '"newer doc"'),
            fast=FAST.replace("# drift: begin pair1", "# a comment\n    # drift: begin pair1"),
        )
        assert drift_findings(tmp_path, pins=pins) == []

    def test_one_sided_canonical_edit_fires(self, tmp_path):
        write_fixture(tmp_path)
        pins = compute_fingerprints(load_project(tmp_path, manifest={}), PAIRS)
        write_fixture(tmp_path, canon=CANON.replace("x + 1", "x + 2"))
        findings = drift_findings(tmp_path, pins=pins)
        assert [f.rule for f in findings] == ["DRIFT001"]
        assert findings[0].path == "canon.py"
        assert "inlined copy" in findings[0].message
        assert "regen_drift_pins.py" in findings[0].message

    def test_one_sided_inlined_edit_fires(self, tmp_path):
        write_fixture(tmp_path)
        pins = compute_fingerprints(load_project(tmp_path, manifest={}), PAIRS)
        write_fixture(tmp_path, fast=FAST.replace("y = x + 1", "y = x + 2"))
        findings = drift_findings(tmp_path, pins=pins)
        assert [f.rule for f in findings] == ["DRIFT001"]
        assert findings[0].path == "fast.py"

    def test_paired_edit_without_repin_fires_once(self, tmp_path):
        write_fixture(tmp_path)
        pins = compute_fingerprints(load_project(tmp_path, manifest={}), PAIRS)
        write_fixture(
            tmp_path,
            canon=CANON.replace("x + 1", "x + 2"),
            fast=FAST.replace("y = x + 1", "y = x + 2"),
        )
        findings = drift_findings(tmp_path, pins=pins)
        assert [f.rule for f in findings] == ["DRIFT001"]
        assert "both sides" in findings[0].message

    def test_missing_marker_and_missing_pin_are_drift002(self, tmp_path):
        write_fixture(tmp_path, fast="def run(x):\n    return x + 1\n")
        findings = drift_findings(tmp_path, pins={})
        assert [f.rule for f in findings] == ["DRIFT002"]
        assert "marker" in findings[0].message

        write_fixture(tmp_path)  # markers back, but no pin entry
        findings = drift_findings(tmp_path, pins={})
        assert [f.rule for f in findings] == ["DRIFT002"]
        assert "no pinned fingerprints" in findings[0].message

    def test_missing_canonical_symbol_is_drift002(self, tmp_path):
        write_fixture(tmp_path, canon="class C:\n    pass\n")
        findings = drift_findings(tmp_path, pins={})
        assert [f.rule for f in findings] == ["DRIFT002"]
        assert "C.m" in findings[0].message


class TestLivePins:
    def test_checked_in_pins_match_the_tree(self):
        # the regen script's --check, as a test: stale pins fail CI here
        project = load_project(DEFAULT_ROOT)
        assert compute_fingerprints(project) == load_pins()

    def test_every_pair_has_markers_and_pins(self):
        project = load_project(DEFAULT_ROOT)
        pins = load_pins()
        for key, _canon_rel, _symbol, inline_rel in DRIFT_PAIRS:
            assert key in pins, key
            text = project.get(inline_rel).text
            assert marker_regions(text, key), (key, inline_rel)


class TestMutationGate:
    def test_one_sided_kernel_edit_fails_lint(self, tmp_path):
        """The acceptance-criteria mutation test: copy the live tree,
        flip one comparison inside a ``# drift:`` region of the inlined
        kernel, and the DRIFT family must fail the lint run."""
        mutant = tmp_path / "repro"
        shutil.copytree(
            DEFAULT_ROOT, mutant, ignore=shutil.ignore_patterns("__pycache__")
        )
        sim = mutant / "sim" / "simulator.py"
        text = sim.read_text(encoding="utf-8")
        assert "if stall > 0:" in text
        sim.write_text(
            text.replace("if stall > 0:", "if stall >= 0:"), encoding="utf-8"
        )
        findings = analyze(
            root=mutant, rules=[InlineDriftRule()], manifest={}
        )
        assert [f.rule for f in findings] == ["DRIFT001"]
        assert "core-complete" in findings[0].message
        assert findings[0].path == "sim/simulator.py"
