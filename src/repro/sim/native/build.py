"""Compile-and-cache machinery for the native kernel.

The kernel compiles at first use via cffi's API mode (a real C extension,
not dlopen-ffi), cached under ``results/.cache/native/`` keyed by a hash
of the C source — editing :mod:`repro.sim.native._csrc` invalidates the
artifact automatically.  Parallel sweep workers race benignly: each
compiles into a private scratch directory and installs the extension with
an atomic rename, so the winner's artifact is complete and every loser's
is byte-identical.

Every failure mode (no cffi, no numpy, no C toolchain, a compile error)
logs once and degrades to ``None``; callers fall back to the interpreted
path, which is the reference oracle anyway.
"""

from __future__ import annotations

import hashlib
import importlib.util
import logging
import os
import shutil
import tempfile
from pathlib import Path

from repro.sim.native import _csrc

log = logging.getLogger(__name__)

#: compiled-extension cache, next to the trace store's cache tree
DEFAULT_BUILD_DIR = Path("results") / ".cache" / "native"

#: memoized (module with .ffi/.lib) — per process; workers re-import and
#: re-load the cached artifact rather than sharing this handle
_kernel = None
_failed = False


def source_digest() -> str:
    """Content hash of the kernel's C source + cdef (cache key)."""
    text = _csrc.CDEF + _csrc.SOURCE
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def module_name() -> str:
    return f"_repro_native_{source_digest()}"


def _load_extension(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load native kernel from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _existing_artifact(build_dir: Path, name: str) -> Path | None:
    candidates = sorted(build_dir.glob(f"{name}*.so"))
    return candidates[0] if candidates else None


def _compile_extension(build_dir: Path, name: str) -> Path:
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(_csrc.CDEF)
    ffi.set_source(name, _csrc.SOURCE, extra_compile_args=["-O2"])
    scratch = tempfile.mkdtemp(prefix="build-", dir=build_dir)
    try:
        built = Path(ffi.compile(tmpdir=scratch))
        target = build_dir / built.name
        os.replace(built, target)  # atomic; racing builders agree on bytes
        return target
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def kernel_or_none(build_dir: Path | None = None):
    """The compiled kernel module (``.ffi``/``.lib``), or None.

    Memoizes both success and failure: a process that cannot build the
    kernel logs the reason once and answers None from then on.
    """
    global _kernel, _failed
    if _kernel is not None:
        return _kernel
    if _failed:
        return None
    try:
        import cffi  # noqa: F401  (compile-time dependency)
        import numpy  # noqa: F401  (decode-phase dependency; gate together)
    except ImportError as exc:
        _failed = True
        log.warning("native kernel unavailable (%s); using the interpreted path", exc)
        return None
    directory = Path(build_dir) if build_dir is not None else DEFAULT_BUILD_DIR
    name = module_name()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        artifact = _existing_artifact(directory, name)
        if artifact is None:
            artifact = _compile_extension(directory, name)
        _kernel = _load_extension(artifact, name)
    except Exception as exc:
        _failed = True
        log.warning(
            "native kernel build failed (%s); using the interpreted path", exc
        )
        return None
    return _kernel


def gc_build_cache(
    build_dir: Path | None = None, *, dry_run: bool = False
) -> tuple[int, list[Path]]:
    """Drop stale native-kernel artifacts; ``(kept, removed)`` back.

    Artifacts for the *current* C source (``module_name()*.so``) are
    kept; extensions built from superseded sources and abandoned
    ``build-*`` scratch directories (a builder that died mid-compile)
    are removed.  ``dry_run`` reports without deleting — the same
    contract as :meth:`repro.workloads.store.TraceStore.gc`, and the
    ``repro trace gc`` CLI runs both back to back.
    """
    directory = Path(build_dir) if build_dir is not None else DEFAULT_BUILD_DIR
    if not directory.is_dir():
        return 0, []
    keep_prefix = module_name()
    kept = 0
    removed: list[Path] = []
    for path in sorted(directory.iterdir()):
        if path.is_dir():
            if path.name.startswith("build-"):
                removed.append(path)
                if not dry_run:
                    shutil.rmtree(path, ignore_errors=True)
            else:
                kept += 1
            continue
        if path.name.startswith(keep_prefix):
            kept += 1
            continue
        removed.append(path)
        if not dry_run:
            path.unlink(missing_ok=True)
    return kept, removed


def reset_for_tests() -> None:
    """Clear the per-process memo (tests exercising failure paths)."""
    global _kernel, _failed
    _kernel = None
    _failed = False
