"""Workload characterization: the metrics behind phase/workload selection.

Section 6 of the paper selects simulation phases "based on runtime
characterization", citing Jaleel's instrumentation-driven methodology.
This module computes the standard characterization metrics over any
access trace: memory intensity, footprint, dependence (pointer-chase)
fraction, hint coverage, branchiness, the dominant stride distribution,
and a sampled reuse-distance profile.

These are also the quantities our SPEC proxies are parameterised by, so
characterizing a proxy closes the loop: the test suite checks that each
proxy actually exhibits the profile it claims.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.workloads.trace import MemoryAccess

LINE_BYTES = 64


@dataclass
class WorkloadProfile:
    """Characterization summary of one access trace."""

    accesses: int
    instructions: int
    unique_lines: int
    dependent_fraction: float
    hinted_fraction: float
    store_fraction: float
    branch_rate: float  # branches per access
    #: top (stride, fraction-of-transitions) pairs at byte granularity
    top_strides: tuple[tuple[int, float], ...]
    #: reuse distances (in distinct intervening lines) at percentiles
    reuse_p50: float
    reuse_p90: float
    #: fraction of accesses that never re-reference their line
    cold_fraction: float

    @property
    def memory_intensity(self) -> float:
        """Memory operations per instruction."""
        return self.accesses / self.instructions if self.instructions else 0.0

    @property
    def footprint_bytes(self) -> int:
        return self.unique_lines * LINE_BYTES

    def dominant_stride(self) -> int | None:
        """The most common non-zero stride, if any stands out (>20%)."""
        for stride, fraction in self.top_strides:
            if stride != 0 and fraction > 0.2:
                return stride
        return None


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return float(sorted_values[idx])


def characterize(
    trace: Iterable[MemoryAccess],
    *,
    reuse_sample_every: int = 8,
    top_k_strides: int = 5,
) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile` in one pass over ``trace``.

    Reuse distance is measured in *distinct intervening cache lines* and
    sampled (one access in ``reuse_sample_every``) to stay near-linear.
    """
    accesses = 0
    instructions = 0
    dependent = 0
    hinted = 0
    stores = 0
    branches = 0
    strides: Counter[int] = Counter()
    prev_addr: int | None = None

    #: line -> index of its most recent access (for reuse distances)
    last_seen: dict[int, int] = {}
    #: per-access line ids, kept to count distinct lines in a window
    line_log: list[int] = []
    reuse_distances: list[int] = []
    reused_lines = 0

    for access in trace:
        accesses += 1
        instructions += access.inst_gap + 1
        dependent += access.depends_on_prev
        hinted += access.hints.type_id != 0
        stores += not access.is_load
        branches += len(access.branches)

        if prev_addr is not None:
            strides[access.addr - prev_addr] += 1
        prev_addr = access.addr

        line = access.addr // LINE_BYTES
        if line in last_seen:
            reused_lines += 1
            if accesses % reuse_sample_every == 0:
                window = line_log[last_seen[line] :]
                reuse_distances.append(len(set(window)))
        last_seen[line] = len(line_log)
        line_log.append(line)

    total_transitions = max(1, accesses - 1)
    top = tuple(
        (stride, count / total_transitions)
        for stride, count in strides.most_common(top_k_strides)
    )
    reuse_distances.sort()
    return WorkloadProfile(
        accesses=accesses,
        instructions=instructions,
        unique_lines=len(last_seen),
        dependent_fraction=dependent / accesses if accesses else 0.0,
        hinted_fraction=hinted / accesses if accesses else 0.0,
        store_fraction=stores / accesses if accesses else 0.0,
        branch_rate=branches / accesses if accesses else 0.0,
        top_strides=top,
        reuse_p50=_percentile(reuse_distances, 0.50),
        reuse_p90=_percentile(reuse_distances, 0.90),
        cold_fraction=1.0 - (reused_lines / accesses) if accesses else 0.0,
    )
