"""On-disk result cache for sweep cells.

Every evaluation figure reduces to the workload × prefetcher sweep, and
every cell of that sweep is a pure function of (trace, prefetcher,
configuration, limit, simulator code).  This module memoizes cells under
``results/.cache/`` keyed by a stable hash of exactly those inputs, so
re-running a figure after an unrelated edit (docs, CLI, figure
formatting, the sweep engine itself) is a cache hit, while any change
that could alter simulated behaviour — a trace, a config field, the
truncation limit, or the simulator core's source — is a miss.

Key anatomy (see docs/parallel_runner.md):

* ``workload`` name **and** a fingerprint of its access trace — renaming
  a workload or regenerating a different trace both invalidate;
* ``prefetcher`` report name, plus the ``ContextPrefetcherConfig`` for
  ``context`` cells (other prefetchers' defaults live in source and are
  covered by the code fingerprint);
* ``HierarchyConfig`` and ``CoreConfig`` field values;
* the trace truncation ``limit``;
* a fingerprint of the simulator's *semantic* source (the packages that
  define simulated behaviour — not figures, CLI, docs or this engine);
* the result codec version.

Corrupt or version-skewed cache files are treated as misses and
overwritten; a cache directory deleted mid-run is recreated on the next
store.  The cache never changes results — only whether they are
recomputed — and the parity suite proves a warm run equals a cold run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import ContextPrefetcherConfig
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.codec import CODEC_VERSION, CodecError, decode_result, encode_result
from repro.sim.metrics import SimulationResult
from repro.workloads.serialize import trace_fingerprint

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheCounters",
    "CellKeyer",
    "SweepCache",
    "cell_key",
    "code_fingerprint",
    "plain_data",
    "resolve_cache",
    "trace_fingerprint",  # canonical impl lives in workloads.serialize
]

log = logging.getLogger(__name__)

#: default cache location, relative to the invoking directory
DEFAULT_CACHE_DIR = Path("results") / ".cache"

#: source whose edits can change simulated behaviour: the packages the
#: simulator core is built from.  experiments/, cli.py, analysis/ and the
#: sweep engine itself (parallel.py, cache.py, export.py) are excluded on
#: purpose — editing them must not invalidate cached results.
SEMANTIC_SOURCE_PREFIXES = (
    "compiler/",
    "core/",
    "cpu/",
    "memory/",
    "prefetchers/",
    "workloads/",
)
SEMANTIC_SOURCE_FILES = (
    "hints.py",
    "sim/config.py",
    "sim/metrics.py",
    "sim/phases.py",
    "sim/simulator.py",
)

_code_fingerprint_cache: str | None = None


def _canonical(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def plain_data(value: object) -> object:
    """``dataclasses.asdict`` minus the deepcopy, for canonical JSON.

    ``asdict`` deep-copies every leaf; on a config whose fields are all
    immutable (ints, strings, tuples of frozen attribute dataclasses)
    that copy is pure overhead — and it dominates key generation on
    config sweeps with thousands of table slots.  JSON output is
    identical because ``json.dumps`` renders a tuple as an array and
    never mutates its input.  :meth:`GridPlan.spec` leans on this too:
    serializing a 2500-slot grid spec through ``asdict`` costs ~0.75 s
    inside the sweep's timed region.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: plain_data(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [plain_data(item) for item in value]
    if isinstance(value, dict):
        return {key: plain_data(item) for key, item in value.items()}
    return value


def code_fingerprint() -> str:
    """Hash of the simulator's semantic source files (cached per process)."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in SEMANTIC_SOURCE_FILES or rel.startswith(
                SEMANTIC_SOURCE_PREFIXES
            ):
                digest.update(rel.encode("utf-8"))
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def cell_key(
    *,
    workload: str,
    trace_fp: str,
    prefetcher: str,
    limit: int | None,
    hierarchy_config: HierarchyConfig | None = None,
    core_config: CoreConfig | None = None,
    context_config: ContextPrefetcherConfig | None = None,
    code_version: str | None = None,
) -> str:
    """The cache key for one (workload, prefetcher) sweep cell."""
    context: dict | None = None
    if prefetcher == "context":
        context = dataclasses.asdict(context_config or ContextPrefetcherConfig())
    payload = {
        "codec": CODEC_VERSION,
        "code": code_version if code_version is not None else code_fingerprint(),
        "workload": workload,
        "trace": trace_fp,
        "prefetcher": prefetcher,
        "limit": limit,
        "hierarchy": dataclasses.asdict(hierarchy_config or HierarchyConfig()),
        "core": dataclasses.asdict(core_config or CoreConfig()),
        "context": context,
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


#: field-value types the CellKeyer fragment memo accepts as dict keys:
#: always hashable, and covering every frequently-repeated config field
#: (IntEnums pass as int subclasses).  Compound values — tuples, lists —
#: bypass the memo instead of risking an unhashable element.
_MEMO_SCALARS = (int, float, str, bool, type(None))


class CellKeyer:
    """Grid-wide key builder: :func:`cell_key` with shared fields frozen.

    :func:`cell_key` canonicalizes a flat payload with sorted keys and
    compact separators, so the hashed string is exactly a concatenation
    of independently-canonicalized ``"field":value`` fragments in sorted
    field order.  Within one sweep grid the codec, code fingerprint,
    limit, hierarchy and core fields never vary, and the context configs
    repeat once per table slot — re-serializing all of them for every
    cell dominates key generation on large grids (~0.13 ms/cell, which
    at 10k cells is a visible slice of the whole batched sweep).  The
    builder serializes the invariants once; producing a key is then two
    string joins and one hash.  ``TestCellKeyer`` proves every key
    byte-identical to :func:`cell_key`'s across all axes.
    """

    def __init__(
        self,
        *,
        limit: int | None,
        hierarchy_config: HierarchyConfig | None = None,
        core_config: CoreConfig | None = None,
        code_version: str | None = None,
    ):
        code = code_version if code_version is not None else code_fingerprint()
        # sorted payload fields: code, codec, context, core, hierarchy,
        # limit, prefetcher, trace, workload — keep in sync with cell_key
        self._head = (
            f'{{"code":{_canonical(code)}'
            f',"codec":{_canonical(CODEC_VERSION)},"context":'
        )
        self._mid = (
            f',"core":{_canonical(dataclasses.asdict(core_config or CoreConfig()))}'
            f',"hierarchy":'
            f"{_canonical(dataclasses.asdict(hierarchy_config or HierarchyConfig()))}"
            f',"limit":{_canonical(limit)},"prefetcher":'
        )
        # the workload/prefetcher/trace strings repeat across a grid's
        # cells; canonicalize each distinct value once
        self._pf_fragments: dict[str, str] = {}
        self._tails: dict[tuple[str, str], str] = {}
        # per-field fragment memo for context configs: a config sweep
        # varies one or two fields per slot, everything else repeats
        self._config_fields: dict[type, tuple[str, ...]] = {}
        self._field_fragments: dict[tuple[str, type, object], str] = {}

    def context_fragment(self, context_config: ContextPrefetcherConfig | None) -> str:
        """Canonical fragment for one context-table slot.

        Callers memoize the result per slot (a grid's configs repeat
        across every workload × prefetcher combination); non-``context``
        cells ignore the fragment entirely.  Scalar field values
        canonicalize through a per-(name, type, value) memo — a config
        sweep varies one or two fields per slot, so all the repeated
        fields cost one dict probe each (the type is part of the key
        because ``1 == 1.0 == True`` hash-equal but render as distinct
        JSON).  Compound values serialize in place every call: they are
        the rare fields, and skipping them keeps the memo free of
        hashability concerns.
        """
        cfg = context_config if context_config is not None else ContextPrefetcherConfig()
        names = self._config_fields.get(type(cfg))
        if names is None:
            # canonical JSON sorts keys; field names are plain ASCII
            # identifiers, so lexicographic name order matches
            names = tuple(sorted(f.name for f in dataclasses.fields(cfg)))
            self._config_fields[type(cfg)] = names
        memo = self._field_fragments
        parts = []
        for name in names:
            value = getattr(cfg, name)
            if isinstance(value, _MEMO_SCALARS):
                key = (name, type(value), value)
                fragment = memo.get(key)
                if fragment is None:
                    fragment = f"{_canonical(name)}:{_canonical(plain_data(value))}"
                    memo[key] = fragment
            else:
                fragment = f"{_canonical(name)}:{_canonical(plain_data(value))}"
            parts.append(fragment)
        return "{" + ",".join(parts) + "}"

    def key(
        self,
        *,
        workload: str,
        trace_fp: str,
        prefetcher: str,
        context_fragment: str = "null",
    ) -> str:
        """The cache key for one cell; equals the :func:`cell_key` key."""
        context = context_fragment if prefetcher == "context" else "null"
        pf = self._pf_fragments.get(prefetcher)
        if pf is None:
            pf = self._pf_fragments[prefetcher] = _canonical(prefetcher)
        tail = self._tails.get((trace_fp, workload))
        if tail is None:
            tail = self._tails[(trace_fp, workload)] = (
                f',"trace":{_canonical(trace_fp)}'
                f',"workload":{_canonical(workload)}}}'
            )
        payload = f"{self._head}{context}{self._mid}{pf}{tail}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheCounters:
    """Per-run observability: how the cache behaved during a sweep."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stored, {self.errors} unreadable"
        )


class SweepCache:
    """Directory of memoized sweep cells, one JSON file per cell key."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.counters = CacheCounters()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or None on any kind of miss.

        Unreadable files — truncated writes, foreign junk, older codec
        versions — count as misses so a corrupt cache degrades to a cold
        start instead of failing the sweep.
        """
        try:
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
            result = decode_result(payload["result"])
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, CodecError) as exc:
            log.warning(
                "sweep cache: unreadable entry %s (%s: %s); treating as miss",
                self._path(key),
                type(exc).__name__,
                exc,
            )
            self.counters.errors += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> None:
        """Persist one cell atomically (write-temp-then-rename).

        The directory is (re)created on every store, so deleting
        ``results/.cache`` mid-run costs the remaining hits, not the run.
        Storage failures are counted, not raised — caching is strictly
        an optimization.
        """
        payload = {"codec": CODEC_VERSION, "key": key, "result": encode_result(result)}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._path(key).with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(_canonical(payload), encoding="utf-8")
            os.replace(tmp, self._path(key))
        except OSError as exc:
            log.warning(
                "sweep cache: cannot store %s (%s: %s); result not memoized",
                self._path(key),
                type(exc).__name__,
                exc,
            )
            self.counters.errors += 1
            return
        self.counters.stores += 1


def resolve_cache(
    cache: "SweepCache | Path | str | bool | None",
    default: SweepCache | None = None,
) -> SweepCache | None:
    """Normalize the user-facing ``cache`` argument.

    ``None`` → the configured ``default`` (no caching when unset);
    ``False`` → caching explicitly off; ``True`` → the default on-disk
    location; a path → a cache rooted there; a :class:`SweepCache` →
    itself.
    """
    if cache is None:
        return default
    if cache is False:
        return None
    if cache is True:
        return SweepCache(DEFAULT_CACHE_DIR)
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(Path(cache))
