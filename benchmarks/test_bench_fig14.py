"""Figure 14 bench: naive (linked) vs spatially optimised layouts."""

from conftest import run_once

from repro.experiments import fig14_layout_agnostic as fig14


def test_fig14_layout_agnostic(benchmark):
    result = run_once(benchmark, fig14.run, "small")

    for study in ("ssca2", "graph500"):
        layouts = result.cpi[study]
        # paper shape 1: on the naive linked layout, the context prefetcher
        # delivers the best performance of all prefetchers, by a margin
        context_linked = layouts["linked"]["context"]
        best_other = min(
            cpi for pf, cpi in layouts["linked"].items() if pf != "context"
        )
        assert context_linked < 0.9 * best_other, study

        # paper shape 2: the layout penalty (CPI linked / CPI array) under
        # the context prefetcher does not exceed the no-prefetch penalty,
        # and clearly beats the delta/stride prefetchers which
        # "distinctively favor spatially-optimized implementations"
        context_gap = result.layout_gap(study, "context")
        assert context_gap <= result.layout_gap(study, "none") * 1.05, study
        for competitor in ("stride", "ghb-gdc", "ghb-pcdc"):
            assert context_gap < result.layout_gap(study, competitor), (
                study,
                competitor,
            )
    print()
    print(fig14.render(result))
