"""Figure 11: L2 misses per kilo-instruction per prefetcher.

Paper headline (Section 7.2): the context prefetcher cuts average L2 MPKI
by almost 4× versus no prefetching (from ~40 to ~10) and beats SMS, the
best competitor, by ~2×.  ``headline_ratios`` reports our equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig10_l1_mpki import MPKIResult, _run_level, render as _render
from repro.experiments.sweep import standard_sweep
from repro.sim.runner import ComparisonResult


@dataclass
class Figure11Result:
    mpki: MPKIResult
    #: average-L2-MPKI ratios: none/context and sms/context
    ratio_vs_none: float
    ratio_vs_sms: float


def run(
    scale: str = "small", comparison: ComparisonResult | None = None
) -> Figure11Result:
    comparison = comparison or standard_sweep(scale)
    # Figure 11 shows benchmarks with L2 MPKI > 1
    mpki = _run_level("l2", 1.0, scale, comparison)
    context = mpki.average.get("context", 0.0) or 1e-9
    return Figure11Result(
        mpki=mpki,
        ratio_vs_none=mpki.average.get("none", 0.0) / context,
        ratio_vs_sms=mpki.average.get("sms", 0.0) / context,
    )


def render(result: Figure11Result) -> str:
    body = _render(result.mpki, figure="Figure 11")
    summary = (
        f"\naverage L2 MPKI ratio vs context: none/context = "
        f"{result.ratio_vs_none:.2f}x, sms/context = {result.ratio_vs_sms:.2f}x"
        f"\n(paper: ~4x and ~2x)"
    )
    return body + summary


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
