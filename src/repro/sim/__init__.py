"""Simulation driver: wires traces, the hierarchy, the core model and a
prefetcher into a run, and sweeps workloads × prefetchers for the figures.
"""

from repro.sim.config import PREFETCHER_FACTORIES, SystemConfig, make_prefetcher
from repro.sim.metrics import HitDepthCDF, SimulationResult, geomean
from repro.sim.phases import PhasedResult, run_phased, split_phases
from repro.sim.runner import ComparisonResult, compare, run_workload, storage_sweep
from repro.sim.simulator import Simulator

__all__ = [
    "ComparisonResult",
    "HitDepthCDF",
    "PREFETCHER_FACTORIES",
    "PhasedResult",
    "SimulationResult",
    "Simulator",
    "SystemConfig",
    "compare",
    "geomean",
    "make_prefetcher",
    "run_phased",
    "run_workload",
    "split_phases",
    "storage_sweep",
]
