"""Result export: dictionaries, CSV, markdown and gem5-style stats text.

Downstream tooling wants machine-readable results; papers want tables.
Everything here is pure formatting over :class:`SimulationResult` and
:class:`ComparisonResult` — no simulation logic.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.memory.stats import ACCESS_CLASS_ORDER
from repro.sim.codec import CODEC_VERSION, decode_result, encode_result
from repro.sim.metrics import SimulationResult
from repro.sim.runner import ComparisonResult


def result_to_dict(result: SimulationResult) -> dict:
    """Flat dictionary of one run's headline statistics."""
    out = {
        "workload": result.workload,
        "prefetcher": result.prefetcher,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "cpi": result.cpi,
        "l1_accesses": result.l1.accesses,
        "l1_misses": result.l1.misses,
        "l1_mpki": result.l1_mpki,
        "l2_accesses": result.l2.accesses,
        "l2_misses": result.l2.misses,
        "l2_mpki": result.l2_mpki,
        "prefetches_issued": result.prefetches_issued,
        "prefetches_shadow": result.prefetches_shadow,
        "prefetches_rejected": result.prefetches_rejected,
        "prefetches_redundant": result.prefetches_redundant,
        "prefetcher_accuracy": result.prefetcher_accuracy,
        "storage_bits": result.storage_bits,
    }
    fractions = result.classifier.fractions()
    for cls in ACCESS_CLASS_ORDER:
        out[f"class_{cls.name.lower()}"] = fractions[cls]
    return out


def results_to_csv(results: Iterable[SimulationResult]) -> str:
    """CSV with one row per run (header derived from the first result)."""
    results = list(results)
    if not results:
        return ""
    rows = [result_to_dict(r) for r in results]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def result_to_json(result: SimulationResult, *, indent: int | None = None) -> str:
    """Lossless JSON form of one run (the cache/worker codec's encoding).

    Unlike :func:`result_to_dict` — flat headline stats for CSV/tables —
    this round-trips: ``result_from_json(result_to_json(r)) == r``.
    """
    return json.dumps(encode_result(result), sort_keys=True, indent=indent)


def result_from_json(text: str) -> SimulationResult:
    """Inverse of :func:`result_to_json` (validates the codec version)."""
    return decode_result(json.loads(text))


def comparison_to_json(comparison: ComparisonResult, *, indent: int | None = None) -> str:
    """Lossless JSON form of a whole sweep, cell order preserved."""
    payload = {
        "codec": CODEC_VERSION,
        "results": {
            wl: {pf: encode_result(comparison.get(wl, pf)) for pf in by_pf}
            for wl, by_pf in comparison.results.items()
        },
    }
    return json.dumps(payload, sort_keys=False, indent=indent)


def comparison_from_json(text: str) -> ComparisonResult:
    """Inverse of :func:`comparison_to_json`."""
    payload = json.loads(text)
    comparison = ComparisonResult()
    for wl, by_pf in payload["results"].items():
        comparison.results[wl] = {
            pf: decode_result(encoded) for pf, encoded in by_pf.items()
        }
    return comparison


def comparison_to_csv(comparison: ComparisonResult) -> str:
    """CSV over every (workload, prefetcher) cell of a sweep."""
    return results_to_csv(
        comparison.get(wl, pf)
        for wl in comparison.workloads()
        for pf in comparison.prefetchers()
    )


def comparison_to_markdown(
    comparison: ComparisonResult, *, metric: str = "speedup", baseline: str = "none"
) -> str:
    """A GitHub-markdown table of a sweep.

    ``metric``: ``"speedup"`` (over ``baseline``), ``"ipc"``, ``"l1_mpki"``
    or ``"l2_mpki"``.
    """
    prefetchers = comparison.prefetchers()
    if metric == "speedup":
        prefetchers = [p for p in prefetchers if p != baseline]

    def cell(workload: str, prefetcher: str) -> str:
        result = comparison.get(workload, prefetcher)
        if metric == "speedup":
            value = result.speedup_over(comparison.get(workload, baseline))
        elif metric in ("ipc", "l1_mpki", "l2_mpki"):
            value = getattr(result, metric)
        else:
            raise ValueError(f"unknown metric {metric!r}")
        return f"{value:.2f}"

    header = "| workload | " + " | ".join(prefetchers) + " |"
    rule = "|---" * (len(prefetchers) + 1) + "|"
    body = [
        "| " + " | ".join([wl] + [cell(wl, pf) for pf in prefetchers]) + " |"
        for wl in comparison.workloads()
    ]
    return "\n".join([header, rule] + body)


def stats_dump(result: SimulationResult) -> str:
    """gem5-``stats.txt``-flavoured dump: ``name  value  # comment``."""
    lines = ["---------- Begin Simulation Statistics ----------"]
    entries = [
        ("sim.instructions", result.instructions, "committed instructions"),
        ("sim.cycles", result.cycles, "total cycles"),
        ("sim.ipc", f"{result.ipc:.6f}", "instructions per cycle"),
        ("l1d.accesses", result.l1.accesses, "L1D demand accesses"),
        ("l1d.misses", result.l1.misses, "L1D demand misses"),
        ("l1d.mpki", f"{result.l1_mpki:.4f}", "L1D misses per kilo-inst"),
        ("l2.accesses", result.l2.accesses, "L2 demand accesses"),
        ("l2.misses", result.l2.misses, "L2 demand misses"),
        ("l2.mpki", f"{result.l2_mpki:.4f}", "L2 misses per kilo-inst"),
        ("pf.issued", result.prefetches_issued, "prefetches sent to memory"),
        ("pf.shadow", result.prefetches_shadow, "shadow prefetch operations"),
        ("pf.redundant", result.prefetches_redundant, "prefetches dropped (resident)"),
        ("pf.accuracy", f"{result.prefetcher_accuracy:.4f}", "queue hit-rate EMA"),
    ]
    fractions = result.classifier.fractions()
    for cls in ACCESS_CLASS_ORDER:
        entries.append(
            (f"class.{cls.name.lower()}", f"{fractions[cls]:.6f}", cls.value)
        )
    width = max(len(name) for name, _, _ in entries)
    for name, value, comment in entries:
        lines.append(f"{name.ljust(width)}  {str(value):>14}  # {comment}")
    lines.append("---------- End Simulation Statistics ----------")
    return "\n".join(lines)
