"""Cache statistics and the Figure 9 access-benefit classification.

The paper classifies every demand access by the kind of benefit the
prefetcher provided (Section 7.1): a demand hit on a prefetched line, a
shortened wait behind an in-flight prefetch, a non-timely prediction, a
plain miss, a hit that needed no prefetch, and — counted on top of demand
accesses — prefetches that were never useful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AccessClass(Enum):
    """Benefit categories for a demand access (Figure 9)."""

    HIT_PREFETCHED = "demand hits a prefetched line"
    SHORTER_WAIT = "shorter wait time"
    NON_TIMELY = "non-timely"
    MISS_NOT_PREFETCHED = "miss not prefetched"
    HIT_OLDER_DEMAND = "hit older demand"
    PREFETCH_NEVER_HIT = "prefetch never hit"


#: Plot/report order used by the paper's stacked bars.
ACCESS_CLASS_ORDER = (
    AccessClass.HIT_PREFETCHED,
    AccessClass.SHORTER_WAIT,
    AccessClass.NON_TIMELY,
    AccessClass.MISS_NOT_PREFETCHED,
    AccessClass.HIT_OLDER_DEMAND,
    AccessClass.PREFETCH_NEVER_HIT,
)


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache level."""

    name: str = "cache"
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_fills: int = 0
    demand_fills: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction (the paper's Figures 10 and 11 metric)."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def record(self, hit: bool) -> None:
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1


@dataclass(slots=True)
class AccessClassifier:
    """Accumulates the Figure 9 per-access benefit breakdown.

    ``PREFETCH_NEVER_HIT`` is incremented per wasted prefetch (evicted or
    expired untouched), independent of demand accesses, which is why the
    paper's stacked bars can exceed 100%.
    """

    counts: dict[AccessClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in ACCESS_CLASS_ORDER}
    )
    demand_accesses: int = 0

    def record_demand(self, access_class: AccessClass) -> None:
        if access_class is AccessClass.PREFETCH_NEVER_HIT:
            raise ValueError("PREFETCH_NEVER_HIT is not a demand-access class")
        self.counts[access_class] += 1
        self.demand_accesses += 1

    def record_wasted_prefetch(self, count: int = 1) -> None:
        self.counts[AccessClass.PREFETCH_NEVER_HIT] += count

    def fractions(self) -> dict[AccessClass, float]:
        """Each class as a fraction of demand accesses (may sum past 1.0)."""
        if self.demand_accesses == 0:
            return {cls: 0.0 for cls in ACCESS_CLASS_ORDER}
        return {
            cls: self.counts[cls] / self.demand_accesses
            for cls in ACCESS_CLASS_ORDER
        }

    def useful_fraction(self) -> float:
        """Fraction of demand accesses that benefited from prefetching."""
        if self.demand_accesses == 0:
            return 0.0
        useful = (
            self.counts[AccessClass.HIT_PREFETCHED]
            + self.counts[AccessClass.SHORTER_WAIT]
        )
        return useful / self.demand_accesses
