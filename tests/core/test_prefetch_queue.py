"""Tests for the prefetch/feedback queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prefetch_queue import PrefetchQueue, QueueEntry


def entry(block, issue=0, shadow=False, key=1, delta=2):
    return QueueEntry(
        reduced_hash=key,
        delta=delta,
        target_block=block,
        issue_index=issue,
        shadow=shadow,
    )


class TestMatching:
    def test_match_reports_depth(self):
        q = PrefetchQueue(capacity=8)
        q.push(entry(block=10, issue=5))
        events = q.match(block=10, access_index=35)
        assert len(events) == 1
        assert events[0].depth == 30
        assert not events[0].expired

    def test_match_marks_hit_once(self):
        q = PrefetchQueue(capacity=8)
        q.push(entry(block=10))
        assert len(q.match(10, 5)) == 1
        assert q.match(10, 6) == []
        assert q.hits == 1

    def test_multiple_predictions_of_same_block_all_match(self):
        # Section 4.2: an address already queued is re-added as a shadow
        # prefetch to train another context-address pair
        q = PrefetchQueue(capacity=8)
        q.push(entry(block=10, key=1))
        q.push(entry(block=10, key=2, shadow=True))
        events = q.match(10, 20)
        assert {e.entry.reduced_hash for e in events} == {1, 2}

    def test_non_matching_block(self):
        q = PrefetchQueue(capacity=8)
        q.push(entry(block=10))
        assert q.match(11, 5) == []


class TestExpiry:
    def test_unhit_entry_expires_with_event(self):
        q = PrefetchQueue(capacity=2)
        q.push(entry(block=1))
        q.push(entry(block=2))
        events = q.push(entry(block=3))
        assert len(events) == 1
        assert events[0].expired
        assert events[0].entry.target_block == 1
        assert q.expirations == 1

    def test_hit_entry_expires_silently(self):
        q = PrefetchQueue(capacity=2)
        q.push(entry(block=1))
        q.match(1, 5)
        q.push(entry(block=2))
        events = q.push(entry(block=3))
        assert events == []

    def test_capacity_enforced(self):
        q = PrefetchQueue(capacity=4)
        for i in range(20):
            q.push(entry(block=i))
        assert len(q) == 4


class TestBookkeeping:
    def test_outstanding_for(self):
        q = PrefetchQueue(capacity=8)
        q.push(entry(block=10))
        assert q.outstanding_for(10)
        assert not q.outstanding_for(11)
        q.match(10, 5)
        assert not q.outstanding_for(10)

    def test_hit_rate(self):
        q = PrefetchQueue(capacity=2)
        q.push(entry(block=1))
        q.match(1, 5)
        q.push(entry(block=2))
        q.push(entry(block=3))
        q.push(entry(block=4))  # expires block=2 then block=3 unhit
        assert q.hits == 1
        assert q.expirations >= 1
        assert 0.0 < q.hit_rate() < 1.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PrefetchQueue(0)

    def test_reset(self):
        q = PrefetchQueue(capacity=4)
        q.push(entry(block=1))
        q.reset()
        assert len(q) == 0
        assert q.hits == 0 and q.expirations == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=200))
    def test_index_consistency_under_churn(self, blocks):
        q = PrefetchQueue(capacity=8)
        for i, block in enumerate(blocks):
            q.push(entry(block=block, issue=i))
            if i % 3 == 0:
                q.match(block, i)
        # every unhit queued entry must be findable via outstanding_for
        unhit = {e.target_block for e in q._queue if not e.hit}
        for block in unhit:
            assert q.outstanding_for(block)
