"""On-disk result cache for sweep cells.

Every evaluation figure reduces to the workload × prefetcher sweep, and
every cell of that sweep is a pure function of (trace, prefetcher,
configuration, limit, simulator code).  This module memoizes cells under
``results/.cache/`` keyed by a stable hash of exactly those inputs, so
re-running a figure after an unrelated edit (docs, CLI, figure
formatting, the sweep engine itself) is a cache hit, while any change
that could alter simulated behaviour — a trace, a config field, the
truncation limit, or the simulator core's source — is a miss.

Key anatomy (see docs/parallel_runner.md):

* ``workload`` name **and** a fingerprint of its access trace — renaming
  a workload or regenerating a different trace both invalidate;
* ``prefetcher`` report name, plus the ``ContextPrefetcherConfig`` for
  ``context`` cells (other prefetchers' defaults live in source and are
  covered by the code fingerprint);
* ``HierarchyConfig`` and ``CoreConfig`` field values;
* the trace truncation ``limit``;
* a fingerprint of the simulator's *semantic* source (the packages that
  define simulated behaviour — not figures, CLI, docs or this engine);
* the result codec version.

Corrupt or version-skewed cache files are treated as misses and
overwritten; a cache directory deleted mid-run is recreated on the next
store.  The cache never changes results — only whether they are
recomputed — and the parity suite proves a warm run equals a cold run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import ContextPrefetcherConfig
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.codec import CODEC_VERSION, CodecError, decode_result, encode_result
from repro.sim.metrics import SimulationResult
from repro.workloads.serialize import trace_fingerprint

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheCounters",
    "SweepCache",
    "cell_key",
    "code_fingerprint",
    "resolve_cache",
    "trace_fingerprint",  # canonical impl lives in workloads.serialize
]

log = logging.getLogger(__name__)

#: default cache location, relative to the invoking directory
DEFAULT_CACHE_DIR = Path("results") / ".cache"

#: source whose edits can change simulated behaviour: the packages the
#: simulator core is built from.  experiments/, cli.py, analysis/ and the
#: sweep engine itself (parallel.py, cache.py, export.py) are excluded on
#: purpose — editing them must not invalidate cached results.
SEMANTIC_SOURCE_PREFIXES = (
    "compiler/",
    "core/",
    "cpu/",
    "memory/",
    "prefetchers/",
    "workloads/",
)
SEMANTIC_SOURCE_FILES = (
    "hints.py",
    "sim/config.py",
    "sim/metrics.py",
    "sim/phases.py",
    "sim/simulator.py",
)

_code_fingerprint_cache: str | None = None


def _canonical(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def code_fingerprint() -> str:
    """Hash of the simulator's semantic source files (cached per process)."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in SEMANTIC_SOURCE_FILES or rel.startswith(
                SEMANTIC_SOURCE_PREFIXES
            ):
                digest.update(rel.encode("utf-8"))
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def cell_key(
    *,
    workload: str,
    trace_fp: str,
    prefetcher: str,
    limit: int | None,
    hierarchy_config: HierarchyConfig | None = None,
    core_config: CoreConfig | None = None,
    context_config: ContextPrefetcherConfig | None = None,
    code_version: str | None = None,
) -> str:
    """The cache key for one (workload, prefetcher) sweep cell."""
    context: dict | None = None
    if prefetcher == "context":
        context = dataclasses.asdict(context_config or ContextPrefetcherConfig())
    payload = {
        "codec": CODEC_VERSION,
        "code": code_version if code_version is not None else code_fingerprint(),
        "workload": workload,
        "trace": trace_fp,
        "prefetcher": prefetcher,
        "limit": limit,
        "hierarchy": dataclasses.asdict(hierarchy_config or HierarchyConfig()),
        "core": dataclasses.asdict(core_config or CoreConfig()),
        "context": context,
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


@dataclass
class CacheCounters:
    """Per-run observability: how the cache behaved during a sweep."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stored, {self.errors} unreadable"
        )


class SweepCache:
    """Directory of memoized sweep cells, one JSON file per cell key."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.counters = CacheCounters()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or None on any kind of miss.

        Unreadable files — truncated writes, foreign junk, older codec
        versions — count as misses so a corrupt cache degrades to a cold
        start instead of failing the sweep.
        """
        try:
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
            result = decode_result(payload["result"])
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, CodecError) as exc:
            log.warning(
                "sweep cache: unreadable entry %s (%s: %s); treating as miss",
                self._path(key),
                type(exc).__name__,
                exc,
            )
            self.counters.errors += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> None:
        """Persist one cell atomically (write-temp-then-rename).

        The directory is (re)created on every store, so deleting
        ``results/.cache`` mid-run costs the remaining hits, not the run.
        Storage failures are counted, not raised — caching is strictly
        an optimization.
        """
        payload = {"codec": CODEC_VERSION, "key": key, "result": encode_result(result)}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._path(key).with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(_canonical(payload), encoding="utf-8")
            os.replace(tmp, self._path(key))
        except OSError as exc:
            log.warning(
                "sweep cache: cannot store %s (%s: %s); result not memoized",
                self._path(key),
                type(exc).__name__,
                exc,
            )
            self.counters.errors += 1
            return
        self.counters.stores += 1


def resolve_cache(
    cache: "SweepCache | Path | str | bool | None",
    default: SweepCache | None = None,
) -> SweepCache | None:
    """Normalize the user-facing ``cache`` argument.

    ``None`` → the configured ``default`` (no caching when unset);
    ``False`` → caching explicitly off; ``True`` → the default on-disk
    location; a path → a cache rooted there; a :class:`SweepCache` →
    itself.
    """
    if cache is None:
        return default
    if cache is False:
        return None
    if cache is True:
        return SweepCache(DEFAULT_CACHE_DIR)
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(Path(cache))
