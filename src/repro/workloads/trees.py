"""Tree μbenchmarks: binary search trees and the ``maptest`` RB-tree map.

Covers the paper's BST μkernel (Figure 2's two layouts: linked nodes vs.
an array-mapped tree) and ``maptest`` (an STL ``map``-style red-black
tree).  Lookup traversals branch on key comparisons, making these the
paper's hardest cases ("input dependent lookup operations ... very
difficult to predict, mostly due to their high degree of branching").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

NODE_BYTES = 32
KEY_OFFSET = 0
LEFT_OFFSET = 8
RIGHT_OFFSET = 16

RED = 0
BLACK = 1


# ----------------------------------------------------------------------
# plain BST substrate


@dataclass
class BSTNode:
    addr: int
    key: int
    left: "BSTNode | None" = None
    right: "BSTNode | None" = None


class BinarySearchTree:
    """Unbalanced BST over heap-allocated nodes (the substrate)."""

    def __init__(self, heap: Heap):
        self.heap = heap
        self.root: BSTNode | None = None
        self.size = 0

    def insert(self, key: int) -> BSTNode:
        node = BSTNode(addr=self.heap.alloc(NODE_BYTES), key=key)
        self.size += 1
        if self.root is None:
            self.root = node
            return node
        cur = self.root
        while True:
            if key < cur.key:
                if cur.left is None:
                    cur.left = node
                    return node
                cur = cur.left
            else:
                if cur.right is None:
                    cur.right = node
                    return node
                cur = cur.right

    def lookup_path(self, key: int) -> list[tuple[BSTNode, bool | None]]:
        """Nodes visited searching ``key``; each with the branch taken
        (True = went left, False = went right, None = stopped here)."""
        path: list[tuple[BSTNode, bool | None]] = []
        cur = self.root
        while cur is not None:
            if key == cur.key:
                path.append((cur, None))
                return path
            go_left = key < cur.key
            path.append((cur, go_left))
            cur = cur.left if go_left else cur.right
        return path

    def depth(self) -> int:
        def _d(node: BSTNode | None) -> int:
            if node is None:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        return _d(self.root)


# ----------------------------------------------------------------------
# red-black tree substrate (maptest)


@dataclass
class RBNode:
    addr: int
    key: int
    color: int = RED
    left: "RBNode | None" = None
    right: "RBNode | None" = None
    parent: "RBNode | None" = None


class RedBlackTree:
    """Left/right-rotating red-black tree (the STL ``map`` stand-in).

    Implements the classic CLRS insertion algorithm; the validation
    helpers back the property-based tests on the substrate itself.
    """

    def __init__(self, heap: Heap):
        self.heap = heap
        self.root: RBNode | None = None
        self.size = 0

    # -- rotations ------------------------------------------------------

    def _rotate_left(self, x: RBNode) -> None:
        y = x.right
        assert y is not None
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: RBNode) -> None:
        y = x.left
        assert y is not None
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # -- insertion ------------------------------------------------------

    def insert(self, key: int) -> RBNode:
        node = RBNode(addr=self.heap.alloc(NODE_BYTES), key=key)
        self.size += 1
        parent: RBNode | None = None
        cur = self.root
        while cur is not None:
            parent = cur
            cur = cur.left if key < cur.key else cur.right
        node.parent = parent
        if parent is None:
            self.root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._fix_insert(node)
        return node

    def _fix_insert(self, z: RBNode) -> None:
        while z.parent is not None and z.parent.color == RED:
            grand = z.parent.parent
            assert grand is not None  # red parent implies a grandparent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    assert z.parent is not None and z.parent.parent is not None
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    assert z.parent is not None and z.parent.parent is not None
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        assert self.root is not None
        self.root.color = BLACK

    # -- queries / validation --------------------------------------------

    def lookup_path(self, key: int) -> list[tuple[RBNode, bool | None]]:
        path: list[tuple[RBNode, bool | None]] = []
        cur = self.root
        while cur is not None:
            if key == cur.key:
                path.append((cur, None))
                return path
            go_left = key < cur.key
            path.append((cur, go_left))
            cur = cur.left if go_left else cur.right
        return path

    def keys_inorder(self) -> list[int]:
        out: list[int] = []

        def _walk(node: RBNode | None) -> None:
            if node is None:
                return
            _walk(node.left)
            out.append(node.key)
            _walk(node.right)

        _walk(self.root)
        return out

    def black_height(self) -> int:
        """Black-node count on every root→leaf path; raises when unequal."""

        def _h(node: RBNode | None) -> int:
            if node is None:
                return 1
            lh = _h(node.left)
            rh = _h(node.right)
            if lh != rh:
                raise AssertionError("unequal black heights")
            return lh + (1 if node.color == BLACK else 0)

        return _h(self.root)

    def check_invariants(self) -> None:
        """Raise AssertionError when any red-black property is violated."""
        if self.root is None:
            return
        assert self.root.color == BLACK, "root must be black"

        def _walk(node: RBNode | None) -> None:
            if node is None:
                return
            if node.color == RED:
                for child in (node.left, node.right):
                    assert child is None or child.color == BLACK, (
                        "red node with red child"
                    )
            if node.left is not None:
                assert node.left.parent is node, "broken parent link"
                assert node.left.key < node.key or node.left.key == node.key
            if node.right is not None:
                assert node.right.parent is node, "broken parent link"
                assert node.right.key >= node.key
            _walk(node.left)
            _walk(node.right)

        _walk(self.root)
        self.black_height()
        keys = self.keys_inorder()
        assert keys == sorted(keys), "in-order traversal not sorted"


# ----------------------------------------------------------------------
# workload programs


class _TreeLookupProgram(TraceProgram):
    """Shared driver: build a tree, then run random lookups through it."""

    tree_type_name = "tree_node"

    def __init__(
        self,
        *,
        num_keys: int = 2048,
        num_lookups: int = 2500,
        placement: str = "shuffled",
        heap_utilization: float = 0.5,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_keys = num_keys
        self.num_lookups = num_lookups
        self.placement = placement
        self.heap_utilization = heap_utilization

    def _make_tree(self, heap: Heap):
        raise NotImplementedError

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(
            placement=self.placement,
            utilization=self.heap_utilization,
            seed=self.seed,
        )
        tb = TraceBuilder()
        tree = self._make_tree(heap)
        keys = rng.sample(range(1 << 20), self.num_keys)
        for key in keys:
            tree.insert(key)

        left_hints = tb.pointer_hints(self.tree_type_name, LEFT_OFFSET)
        right_hints = tb.pointer_hints(self.tree_type_name, RIGHT_OFFSET)
        for _ in range(self.num_lookups):
            key = rng.choice(keys)
            first = True
            for node, went_left in tree.lookup_path(key):
                tb.load(
                    node.addr + KEY_OFFSET,
                    "tree.key",
                    value=node.key,
                    depends=not first,
                    reg_value=key,
                    gap=2,
                )
                if went_left is None:
                    tb.branch(False)
                    break
                tb.branch(went_left)
                child = node.left if went_left else node.right
                offset = LEFT_OFFSET if went_left else RIGHT_OFFSET
                tb.load(
                    node.addr + offset,
                    "tree.left" if went_left else "tree.right",
                    value=child.addr if child else 0,
                    depends=not first,
                    hints=left_hints if went_left else right_hints,
                    reg_value=key,
                    gap=1,
                )
                first = False
        return tb


class BSTLookupProgram(_TreeLookupProgram):
    """The ``BST`` μkernel: unbalanced linked binary search tree."""

    name = "bst"
    suite = "ukernel-ds"
    tree_type_name = "bst_node"

    def _make_tree(self, heap: Heap) -> BinarySearchTree:
        return BinarySearchTree(heap)


class RBTreeMapProgram(_TreeLookupProgram):
    """The ``maptest`` μkernel: STL ``map``-style red-black tree lookups."""

    name = "maptest"
    suite = "ukernel-ds"
    tree_type_name = "rb_node"

    def _make_tree(self, heap: Heap) -> RedBlackTree:
        return RedBlackTree(heap)


class ArrayBSTProgram(TraceProgram):
    """Figure 2's alternative layout: a BST mapped onto an array.

    Children of index ``i`` live at ``2i+1`` / ``2i+2``; the traversal is
    index arithmetic over one dense allocation, recovering spatial
    locality at the cost of obfuscated code — the trade-off the paper's
    Section 2.2 describes.
    """

    name = "bst-array"
    suite = "ukernel-ds"

    def __init__(
        self,
        *,
        num_keys: int = 8191,  # perfect tree of depth 13
        num_lookups: int = 3000,
        element_bytes: int = 16,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_keys = num_keys
        self.num_lookups = num_lookups
        self.element_bytes = element_bytes

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(seed=self.seed)
        tb = TraceBuilder()
        keys = sorted(rng.sample(range(1 << 20), self.num_keys))

        # Store the sorted keys as an implicit balanced tree (array heap
        # order): the median at index 0, recursively.
        table: list[int | None] = [None] * (2 * self.num_keys + 2)

        def _place(lo: int, hi: int, idx: int) -> None:
            if lo > hi or idx >= len(table):
                return
            mid = (lo + hi) // 2
            table[idx] = keys[mid]
            _place(lo, mid - 1, 2 * idx + 1)
            _place(mid + 1, hi, 2 * idx + 2)

        _place(0, self.num_keys - 1, 0)
        base = heap.alloc(len(table) * self.element_bytes)
        hints = tb.index_hints("array_bst")

        for _ in range(self.num_lookups):
            key = rng.choice(keys)
            idx = 0
            while idx < len(table) and table[idx] is not None:
                node_key = table[idx]
                tb.load(
                    base + idx * self.element_bytes,
                    "abst.probe",
                    value=node_key,
                    reg_value=key,
                    hints=hints,
                    gap=3,  # index arithmetic replaces the pointer load
                )
                if node_key == key:
                    tb.branch(False)
                    break
                go_left = key < node_key
                tb.branch(go_left)
                idx = 2 * idx + 1 if go_left else 2 * idx + 2
        return tb
