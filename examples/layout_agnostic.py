"""Data-layout-agnostic programming (the paper's Figure 14 story).

Graph500's kernel is a BFS.  The natural implementation links vertex and
edge objects with pointers; the tuned implementation packs the graph into
CSR arrays for spatial locality.  This example runs both layouts under a
spatio-temporal prefetcher (SMS) and the context-based prefetcher and
shows that only the latter closes the gap — letting "naive, pointer-based
implementations of irregular algorithms achieve performance comparable to
that of spatially optimized code".

Run:  python examples/layout_agnostic.py
"""

from repro import compare
from repro.workloads.bfs import BFSCSRProgram, BFSLinkedProgram


def main() -> None:
    linked = BFSLinkedProgram(scale=9)
    csr = BFSCSRProgram(scale=9)
    prefetchers = ("none", "sms", "context")

    print("simulating BFS in both layouts under none / sms / context ...")
    results = compare([linked, csr], prefetchers)

    print()
    print(f"{'prefetcher':12s} {'CPI linked':>11s} {'CPI csr':>9s} {'penalty':>9s}")
    for pf in prefetchers:
        cpi_linked = results.get("bfs-list", pf).cpi
        cpi_csr = results.get("bfs-csr", pf).cpi
        print(
            f"{pf:12s} {cpi_linked:11.2f} {cpi_csr:9.2f} "
            f"{cpi_linked / cpi_csr:8.2f}x"
        )

    print()
    print("'penalty' is CPI(linked)/CPI(csr): how much the naive layout")
    print("costs under each prefetcher. The context prefetcher gives the")
    print("naive linked code by far its best absolute CPI — its linked CPI")
    print("approaches what the *optimised* code achieves under the other")
    print("prefetchers (see EXPERIMENTS.md, Figure 14, for why the ratio")
    print("itself cannot reach 1x with one-byte deltas).")


if __name__ == "__main__":
    main()
