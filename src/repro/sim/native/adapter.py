"""Bridge between :class:`~repro.sim.simulator.Simulator` and the C kernel.

One native run is the phase pipeline the package docstring describes:
:func:`phase_decode` extracts the columns, :func:`phase_kernel` drives the
compiled state machine (including warmup orchestration), and
:func:`phase_finalize` folds the kernel's output block into the exact
:class:`~repro.sim.metrics.SimulationResult` the interpreted path builds.
The phases are module-level functions on purpose: ``repro profile``
attributes time to them by name.

State ownership: once a simulator or prefetcher has run natively, its
native handle — not the untouched Python object — is the authoritative
state.  The registries below remember that.  A run that cannot stay
native (unsupported config, a decode failure) *before* any handle exists
falls back to the interpreted path; the same failure on an object that
already carries native state raises, because silently resuming from the
stale Python state would diverge.
"""

from __future__ import annotations

import itertools
import logging
from weakref import WeakKeyDictionary

from repro.memory.stats import AccessClass, AccessClassifier, CacheStats
from repro.prefetchers.ghb import GHBPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.nopf import NoPrefetcher
from repro.prefetchers.sms import SMSPrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.sim.metrics import HitDepthCDF, SimulationResult
from repro.sim.native import decode
from repro.sim.native._csrc import OUT_SLOTS
from repro.sim.native.build import kernel_or_none

log = logging.getLogger(__name__)

#: the kernel's fixed per-access request buffer (MAX_REQS in the C source)
MAX_REQUESTS = 64

#: kernel prefetcher kinds (PF_* in the C source), keyed by *exact* type —
#: a subclass may override behaviour the port does not model
_PF_NONE, _PF_STRIDE, _PF_GHB, _PF_SMS, _PF_MARKOV = range(5)
_PF_KINDS = {
    NoPrefetcher: _PF_NONE,
    StridePrefetcher: _PF_STRIDE,
    GHBPrefetcher: _PF_GHB,
    SMSPrefetcher: _PF_SMS,
    MarkovPrefetcher: _PF_MARKOV,
}

#: Simulator -> RpSim handle and Prefetcher -> RpPf handle.  Weak keys:
#: a handle frees (``ffi.gc``) when its owner is collected — exactly the
#: lifetime of the Python-side state it replaces.  Only this module's
#: functions touch these, and every process builds its own handles, so
#: the registries never cross the spawn boundary.
_SIM_STATES: "WeakKeyDictionary" = WeakKeyDictionary()
_PF_STATES: "WeakKeyDictionary" = WeakKeyDictionary()


def reset_state_registries() -> None:
    """Drop every native handle (test isolation helper)."""
    _SIM_STATES.clear()
    _PF_STATES.clear()


# ----------------------------------------------------------------------
# eligibility


def _pf_kind(pf) -> int | None:
    return _PF_KINDS.get(type(pf))


def _pf_config_values(pf, kind: int) -> list[int] | None:
    """The kernel's config array for ``pf``, or None when it cannot fit."""
    if kind == _PF_NONE:
        return [0]
    c = pf.config
    if kind == _PF_STRIDE:
        if c.degree > MAX_REQUESTS:
            return None
        return [
            c.table_entries,
            c.degree,
            c.line_bytes,
            1 if c.train_on_miss_only else 0,
        ]
    if kind == _PF_GHB:
        if c.degree > MAX_REQUESTS:
            return None
        return [
            c.ghb_entries,
            c.index_entries,
            c.match_length,
            c.degree,
            c.max_walk,
            1 if c.localization == "pc" else 0,
            c.line_bytes,
            1 if c.train_on_miss_only else 0,
        ]
    if kind == _PF_SMS:
        # the pattern bitmap is one u64 and a replay fans out at most
        # lines_per_region - 1 requests; both bound by MAX_REQUESTS
        if c.lines_per_region > MAX_REQUESTS:
            return None
        return [
            c.region_bytes,
            c.line_bytes,
            c.filter_entries,
            c.agt_entries,
            c.pht_entries,
            c.generation_timeout,
        ]
    if c.degree > MAX_REQUESTS:  # markov
        return None
    return [
        c.table_entries,
        c.successors_per_entry,
        c.degree,
        c.line_bytes,
        1 if c.train_on_miss_only else 0,
    ]


def _hier_config_values(hier) -> list[int]:
    c = hier.config
    return [
        c.l1_size,
        c.l1_ways,
        c.l1_latency,
        c.l1_mshrs,
        c.l2_size,
        c.l2_ways,
        c.l2_latency,
        c.l2_mshrs,
        c.dram_latency,
        c.dram_service_interval,
        c.line_bytes,
        c.prefetch_buffers,
        c.prefetch_mshr_reserve,
        c.prefetch_backlog_depth,
        1 if c.prefetch_fill_l1 else 0,
    ]


def _sim_pristine(sim) -> bool:
    return (
        sim._cycle_base == 0
        and sim.hierarchy.is_pristine()
        and sim.core.is_pristine()
    )


def _handles(sim, pf, kind: int, kernel):
    """The (RpSim, RpPf) handle pair for this run, creating as needed.

    Returns ``(None, None)`` when the pair cannot be assembled without
    mixing native and interpreted state *and* no native state exists yet
    (clean fallback); raises when one side already carries native state.
    """
    ffi, lib = kernel.ffi, kernel.lib
    sim_h = _SIM_STATES.get(sim)
    pf_h = _PF_STATES.get(pf)
    if sim_h is None and not _sim_pristine(sim):
        if pf_h is not None:
            raise RuntimeError(
                "prefetcher carries native state but the simulator already "
                "ran interpreted; mixed native/interpreted runs are "
                "unsupported"
            )
        return None, None
    if pf_h is None and not pf.is_pristine():
        if sim_h is not None:
            raise RuntimeError(
                "simulator carries native state but the prefetcher already "
                "ran interpreted; mixed native/interpreted runs are "
                "unsupported"
            )
        return None, None
    if sim_h is None:
        hier_cfg = ffi.new("int64_t[]", _hier_config_values(sim.hierarchy))
        core_cfg = ffi.new(
            "int64_t[]",
            [
                sim.core.config.issue_width,
                sim.core.config.rob_size,
                sim.core.config.lq_size,
            ],
        )
        ptr = lib.rp_sim_new(hier_cfg, core_cfg)
        if ptr == ffi.NULL:
            raise MemoryError("native simulator state allocation failed")
        sim_h = ffi.gc(ptr, lib.rp_sim_free)
        _SIM_STATES[sim] = sim_h
    if pf_h is None:
        pf_cfg = ffi.new("int64_t[]", _pf_config_values(pf, kind))
        ptr = lib.rp_pf_new(kind, pf_cfg)
        if ptr == ffi.NULL:
            raise MemoryError("native prefetcher state allocation failed")
        pf_h = ffi.gc(ptr, lib.rp_pf_free)
        _PF_STATES[pf] = pf_h
    return sim_h, pf_h


# ----------------------------------------------------------------------
# phases


def phase_decode(trace, limit, line_bytes):
    """Columns for ``trace``, plus the (trace, limit) a fallback should use.

    A one-shot iterator is materialised (with the limit applied) so a
    decode failure hands the interpreted path a re-iterable list instead
    of a half-consumed generator.
    """
    from repro.workloads.store import TraceReader

    if isinstance(trace, TraceReader):
        return decode.columns_from_reader(trace, limit, line_bytes), trace, limit
    if isinstance(trace, (list, tuple)):
        accesses = trace if limit is None else trace[:limit]
        return decode.columns_from_accesses(accesses, line_bytes), trace, limit
    accesses = (
        list(itertools.islice(trace, limit)) if limit is not None else list(trace)
    )
    return decode.columns_from_accesses(accesses, line_bytes), accesses, None


def _checked_run(lib, rc: int) -> None:
    if rc != 0:
        raise MemoryError("native kernel ran out of memory mid-run")


def phase_kernel(kernel, sim_h, pf_h, cols, start_index: int, warmup: int):
    """Drive the compiled per-access loop; returns the raw output block.

    Warmup replays the leading ``warmup`` accesses (their output block is
    discarded), resets the statistics counters without disturbing warm
    state, and replays the remainder — the native mirror of the
    interpreted :meth:`Simulator.run` warmup recursion, including its
    ``ValueError`` on a warmup that consumes the whole trace.
    """
    ffi, lib = kernel.ffi, kernel.lib
    n = cols.n
    if warmup and warmup >= n:
        raise ValueError("warmup consumes the whole trace")
    out = ffi.new("int64_t[]", OUT_SLOTS)
    p_addr = ffi.from_buffer("uint64_t[]", cols.addrs)
    p_pc = ffi.from_buffer("uint64_t[]", cols.pcs)
    p_line = ffi.from_buffer("uint64_t[]", cols.lines)
    p_gap = ffi.from_buffer("uint32_t[]", cols.inst_gaps)
    p_flag = ffi.from_buffer("uint8_t[]", cols.flags)
    if warmup:
        _checked_run(
            lib,
            lib.rp_run(
                sim_h, pf_h, warmup, start_index, p_addr, p_pc, p_line, p_gap,
                p_flag, out,
            ),
        )
        lib.rp_reset_stats(sim_h)
        _checked_run(
            lib,
            lib.rp_run(
                sim_h, pf_h, n - warmup, start_index + warmup, p_addr + warmup,
                p_pc + warmup, p_line + warmup, p_gap + warmup, p_flag + warmup,
                out,
            ),
        )
    else:
        _checked_run(
            lib,
            lib.rp_run(
                sim_h, pf_h, n, start_index, p_addr, p_pc, p_line, p_gap,
                p_flag, out,
            ),
        )
    return out


def phase_finalize(out, *, workload_name: str, pf) -> SimulationResult:
    """Fold the kernel's output block into a :class:`SimulationResult`.

    Mirrors the interpreted construction exactly: class counts fold into
    a pre-seeded :class:`AccessClassifier` (plot order preserved), the
    wasted-prefetch count lands in ``PREFETCH_NEVER_HIT``, and the depth
    histogram replays through :meth:`HitDepthCDF.add`.
    """
    classifier = AccessClassifier()
    counts = classifier.counts
    counts[AccessClass.HIT_PREFETCHED] += out[8]
    counts[AccessClass.SHORTER_WAIT] += out[9]
    counts[AccessClass.NON_TIMELY] += out[10]
    counts[AccessClass.MISS_NOT_PREFETCHED] += out[11]
    counts[AccessClass.HIT_OLDER_DEMAND] += out[12]
    classifier.demand_accesses += out[14]
    classifier.record_wasted_prefetch(out[13])
    hit_depths = HitDepthCDF()
    for depth in range(129):
        count = out[19 + depth]
        if count:
            hit_depths.add(depth, count)
    return SimulationResult(
        workload=workload_name,
        prefetcher=pf.name,
        instructions=out[0],
        cycles=out[1],
        l1=CacheStats(name="L1D", accesses=out[2], hits=out[3], misses=out[4]),
        l2=CacheStats(name="L2", accesses=out[5], hits=out[6], misses=out[7]),
        classifier=classifier,
        hit_depths=hit_depths,
        prefetches_issued=out[15],
        prefetches_shadow=out[16],
        prefetches_rejected=out[17],
        prefetches_redundant=out[18],
        prefetcher_accuracy=pf.accuracy(),
        storage_bits=pf.storage_bits(),
    )


# ----------------------------------------------------------------------
# entry point


def _fall_back(committed: bool, trace, limit, reason: str):
    if committed:
        raise RuntimeError(
            f"native simulation state is already active but this run cannot "
            f"stay native ({reason}); mixed native/interpreted runs on one "
            f"simulator are unsupported"
        )
    log.debug("native path unavailable (%s); using the interpreted kernel", reason)
    return False, None, trace, limit


def try_native_run(sim, trace, *, workload_name, limit, start_index, warmup):
    """Attempt to run ``sim`` over ``trace`` natively.

    Returns ``(handled, result, trace, limit)``.  When ``handled`` is
    False the caller must continue on the interpreted path using the
    *returned* trace and limit — a one-shot input iterator has been
    materialised (limit already applied, so it comes back ``None``).
    """
    pf = sim.prefetcher
    committed = sim in _SIM_STATES or pf in _PF_STATES
    kind = _pf_kind(pf)
    if kind is None:
        return _fall_back(
            committed, trace, limit, f"the {pf.name} prefetcher has no native port"
        )
    if _pf_config_values(pf, kind) is None:
        return _fall_back(
            committed,
            trace,
            limit,
            f"the {pf.name} config exceeds the kernel's fixed buffers",
        )
    kernel = kernel_or_none()
    if kernel is None:
        return _fall_back(committed, trace, limit, "compiled kernel unavailable")
    cols, trace, limit = phase_decode(trace, limit, sim.hierarchy.config.line_bytes)
    if cols is None:
        return _fall_back(committed, trace, limit, "column decode fell back")
    sim_h, pf_h = _handles(sim, pf, kind, kernel)
    if sim_h is None:
        return _fall_back(
            False, trace, limit, "simulator or prefetcher carries interpreted state"
        )
    out = phase_kernel(kernel, sim_h, pf_h, cols, start_index, warmup)
    return True, phase_finalize(out, workload_name=workload_name, pf=pf), trace, limit
