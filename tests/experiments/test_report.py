"""Tests for the text rendering helpers."""

from repro.experiments.report import render_series, render_table


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        text = render_table(("name", "value"), [("alpha", 1.5), ("b", 20)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        # column positions line up
        assert lines[0].index("value") == lines[2].index("1.50")

    def test_title_underlined(self):
        text = render_table(("x",), [(1,)], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_floats_formatted_to_two_places(self):
        text = render_table(("v",), [(3.14159,)])
        assert "3.14" in text and "3.142" not in text

    def test_wide_cells_stretch_columns(self):
        text = render_table(("h",), [("a-very-long-cell-value",)])
        assert "a-very-long-cell-value" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert "a" in text


class TestRenderSeries:
    def test_bars_scale_with_magnitude(self):
        text = render_series([(0, 1.0), (1, 2.0)], width=10)
        lines = text.splitlines()
        assert lines[-1].count("█") == 10
        assert lines[-2].count("█") == 5

    def test_negative_values_use_alternate_glyph(self):
        text = render_series([(0, -1.0), (1, 1.0)])
        assert "▒" in text and "█" in text

    def test_title_and_labels(self):
        text = render_series([(0, 1.0)], title="T", label_x="depth", label_y="reward")
        assert text.startswith("T")
        assert "depth" in text and "reward" in text

    def test_empty_series(self):
        assert "empty" in render_series([], title="T")

    def test_all_zero_series_does_not_divide_by_zero(self):
        text = render_series([(0, 0.0), (1, 0.0)])
        assert "0" in text
