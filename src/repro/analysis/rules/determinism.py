"""Determinism rules (``DET*``).

The contextual-bandit loop must be bit-reproducible run to run (the
seed-robustness experiment and every regression test depend on it), so
the simulator core may not consult process-global randomness or the
wall clock, and may not iterate hash-randomized containers.

* ``DET001`` — call to a ``random``-module function using the *global*
  RNG (``random.random()``, ``random.choice()``, ...).  Use a seeded
  ``random.Random`` instance instead.
* ``DET002`` — ``random.Random()`` constructed without a seed (falls
  back to OS entropy); in the strict core the seed must additionally be
  threaded through config, not hard-coded at the call site.
* ``DET003`` — wall-clock reads (``time.time()``, ``perf_counter``,
  ``datetime.now()``, ...).  Simulated time is the only clock.
* ``DET004`` — iteration over a ``set``/``frozenset`` expression.
  String hashing is randomized per process (PYTHONHASHSEED), so set
  order is not reproducible; sort first (``sorted(...)`` is fine).
* ``DET005`` — ``==``/``!=`` against a float literal; accumulated EMAs
  and rewards must be compared with tolerances or integer math.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule
from repro.analysis.visitor import NodeRule, SourceFile

#: the simulator core that must be strictly deterministic
STRICT_DIRS = ("core/", "sim/", "memory/", "prefetchers/")

#: random-module functions that touch the hidden global Random instance
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: wall-clock reads; simulated cycles are the only legitimate time base
CLOCK_FUNCS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)
CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: reviewed wall-clock exceptions (same idiom as the PERF004 dispatch
#: allowlists): operational *serving* telemetry that never feeds
#: simulated behaviour.  ``serve/progress.py`` timestamps the
#: scheduler's deterministic cell-count stream into a JSON sidecar so
#: ``repro serve status`` can show cells/s and an ETA; the result DB —
#: whose canonical dump the parity suites compare — never sees a
#: timestamp.  Growing this set is a reviewed decision: anything under
#: ``sim/`` stays categorically banned.
WALL_CLOCK_ALLOWLIST = frozenset({"serve/progress.py"})


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expression(node: ast.AST) -> bool:
    """True for expressions that are statically known to be sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a - b, ...) on at least one known set
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


@register_rule
class GlobalRandomRule(NodeRule):
    """DET001: ban the module-level (global-state) random functions."""

    rule_id = "DET001"
    title = "module-level random.* call (unseeded global RNG)"
    node_types = (ast.Call,)

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr in GLOBAL_RANDOM_FUNCS
        ):
            yield Finding(
                source.rel,
                node.lineno,
                self.rule_id,
                f"random.{func.attr}() uses the process-global RNG; "
                "use a seeded random.Random instance",
            )


@register_rule
class UnseededRandomRule(NodeRule):
    """DET002: every random.Random must be seeded (from config, in core)."""

    rule_id = "DET002"
    title = "random.Random() without a reproducible seed"
    node_types = (ast.Call,)

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        name = _dotted(node.func)
        if name not in ("random.Random", "random.SystemRandom", "Random"):
            return
        if name == "random.SystemRandom":
            yield Finding(
                source.rel,
                node.lineno,
                self.rule_id,
                "SystemRandom is OS entropy and can never be reproduced",
            )
            return
        if not node.args and not node.keywords:
            yield Finding(
                source.rel,
                node.lineno,
                self.rule_id,
                "random.Random() without a seed falls back to OS entropy; "
                "pass a seed from config",
            )
            return
        in_strict = any(source.rel.startswith(p) for p in STRICT_DIRS)
        if (
            in_strict
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
        ):
            yield Finding(
                source.rel,
                node.lineno,
                self.rule_id,
                "hard-coded seed literal in the simulator core; thread the "
                "seed through the config object",
            )


@register_rule
class WallClockRule(NodeRule):
    """DET003: the wall clock must never leak into simulated behaviour."""

    rule_id = "DET003"
    title = "wall-clock read (time.time / datetime.now / ...)"
    node_types = (ast.Call,)

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        if source.rel in WALL_CLOCK_ALLOWLIST:
            return
        name = _dotted(node.func)
        if name is None:
            return
        if name in CLOCK_FUNCS:
            yield Finding(
                source.rel,
                node.lineno,
                self.rule_id,
                f"{name}() reads the wall clock; simulated cycles are the "
                "only time base",
            )
        elif (
            name.split(".")[-1] in CLOCK_DATETIME_ATTRS
            and "datetime" in name.split(".")[:-1]
        ):
            yield Finding(
                source.rel,
                node.lineno,
                self.rule_id,
                f"{name}() reads the wall clock; simulated cycles are the "
                "only time base",
            )


@register_rule
class SetIterationRule(NodeRule):
    """DET004: no iteration over sets in the strict simulator core."""

    rule_id = "DET004"
    title = "iteration over an unordered set expression"
    node_types = (ast.For, ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp, ast.Call)
    scope = STRICT_DIRS

    _ORDER_SENSITIVE_CALLS = ("list", "tuple", "enumerate", "iter")

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        if isinstance(node, ast.For):
            if _is_set_expression(node.iter):
                yield self._finding(source, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_expression(gen.iter):
                    yield self._finding(source, gen.iter)
        elif isinstance(node, ast.Call):
            # list(set(...)) / tuple(set(...)) materialize hash order
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SENSITIVE_CALLS
                and node.args
                and _is_set_expression(node.args[0])
            ):
                yield self._finding(source, node)

    def _finding(self, source: SourceFile, node: ast.AST) -> Finding:
        return Finding(
            source.rel,
            getattr(node, "lineno", 0),
            self.rule_id,
            "iterating a set is hash-order dependent and not reproducible "
            "across processes; sort first (sorted(...) is deterministic)",
        )


@register_rule
class FloatEqualityRule(NodeRule):
    """DET005: no ``==``/``!=`` against float literals in the core."""

    rule_id = "DET005"
    title = "equality comparison against a float literal"
    node_types = (ast.Compare,)
    scope = STRICT_DIRS

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._is_float_literal(left) or self._is_float_literal(right):
                yield Finding(
                    source.rel,
                    node.lineno,
                    self.rule_id,
                    "exact equality against a float literal is fragile for "
                    "accumulated values; compare with a tolerance or use "
                    "integer math",
                )
                return
