"""Tests for the spatial memory streaming prefetcher."""

from repro.prefetchers.base import AccessInfo
from repro.prefetchers.sms import SMSConfig, SMSPrefetcher


def access(index, addr, pc=0x400000):
    return AccessInfo(index=index, cycle=0, addr=addr, pc=pc)


def touch_region(pf, base, offsets, start_index=0, pc=0x400000):
    reqs = []
    for i, off in enumerate(offsets):
        reqs = pf.on_access(access(start_index + i, base + off, pc=pc))
    return start_index + len(offsets), reqs


class TestGenerationLifecycle:
    def test_single_touch_stays_in_filter(self):
        pf = SMSPrefetcher()
        pf.on_access(access(0, 0x10000))
        assert len(pf._filter) == 1
        assert len(pf._agt) == 0

    def test_second_line_promotes_to_agt(self):
        pf = SMSPrefetcher()
        pf.on_access(access(0, 0x10000))
        pf.on_access(access(1, 0x10000 + 64))
        assert len(pf._agt) == 1
        assert len(pf._filter) == 0

    def test_same_line_retouch_does_not_promote(self):
        pf = SMSPrefetcher()
        pf.on_access(access(0, 0x10000))
        pf.on_access(access(1, 0x10008))  # same line
        assert len(pf._agt) == 0

    def test_generation_commits_on_timeout(self):
        pf = SMSPrefetcher(SMSConfig(generation_timeout=10))
        idx, _ = touch_region(pf, 0x10000, [0, 64, 128])
        # touch an unrelated region far in the future to trigger expiry
        pf.on_access(access(idx + 100, 0x90000))
        assert pf.generations_trained == 1

    def test_generation_commits_on_agt_eviction(self):
        pf = SMSPrefetcher(SMSConfig(agt_entries=1, generation_timeout=10**9))
        idx, _ = touch_region(pf, 0x10000, [0, 64])
        touch_region(pf, 0x20000, [0, 64], start_index=idx)
        assert pf.generations_trained == 1

    def test_single_line_generation_not_committed(self):
        pf = SMSPrefetcher(SMSConfig(generation_timeout=10))
        pf.on_access(access(0, 0x10000))
        pf.on_access(access(100, 0x90000))
        assert pf.generations_trained == 0


class TestPatternReplay:
    def test_learned_footprint_replayed_on_new_region(self):
        pf = SMSPrefetcher(SMSConfig(generation_timeout=10))
        # learn: trigger at offset 0, then touch lines 1, 2, 5
        idx, _ = touch_region(pf, 0x10000, [0, 64, 128, 320])
        pf.on_access(access(idx + 100, 0x70000))  # expire the generation
        # trigger a fresh region with the same PC and offset
        _, reqs = touch_region(pf, 0x40000, [0], start_index=idx + 200)
        targets = sorted(r.addr for r in reqs)
        assert targets == [0x40000 + 64, 0x40000 + 128, 0x40000 + 320]

    def test_trigger_offset_is_part_of_index(self):
        pf = SMSPrefetcher(SMSConfig(generation_timeout=10))
        idx, _ = touch_region(pf, 0x10000, [0, 64, 128])
        pf.on_access(access(idx + 100, 0x70000))
        # same PC but trigger at a different offset: no pattern learned
        _, reqs = touch_region(pf, 0x40000, [192], start_index=idx + 200)
        assert reqs == []

    def test_trigger_line_itself_not_prefetched(self):
        pf = SMSPrefetcher(SMSConfig(generation_timeout=10))
        idx, _ = touch_region(pf, 0x10000, [0, 64])
        pf.on_access(access(idx + 100, 0x70000))
        _, reqs = touch_region(pf, 0x40000, [0], start_index=idx + 200)
        assert 0x40000 not in [r.addr for r in reqs]

    def test_different_pc_learns_separate_patterns(self):
        pf = SMSPrefetcher(SMSConfig(generation_timeout=10))
        idx, _ = touch_region(pf, 0x10000, [0, 64], pc=0x100)
        pf.on_access(access(idx + 100, 0x70000, pc=0x999))
        _, reqs = touch_region(pf, 0x40000, [0], start_index=idx + 200, pc=0x200)
        assert reqs == []


class TestHousekeeping:
    def test_region_geometry(self):
        cfg = SMSConfig(region_bytes=2048, line_bytes=64)
        assert cfg.lines_per_region == 32

    def test_storage_bits_positive(self):
        assert SMSPrefetcher().storage_bits() > 0

    def test_reset(self):
        pf = SMSPrefetcher(SMSConfig(generation_timeout=10))
        idx, _ = touch_region(pf, 0x10000, [0, 64])
        pf.on_access(access(idx + 100, 0x70000))
        pf.reset()
        assert pf.generations_trained == 0
        _, reqs = touch_region(pf, 0x40000, [0], start_index=500)
        assert reqs == []

    def test_filter_capacity_bounded(self):
        pf = SMSPrefetcher(SMSConfig(filter_entries=4, generation_timeout=10**9))
        for i in range(20):
            pf.on_access(access(i, 0x10000 + i * 4096))
        assert len(pf._filter) <= 4
