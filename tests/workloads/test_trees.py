"""Tests for the tree substrates (BST, red-black tree) and workloads."""

import random

from hypothesis import given, settings, strategies as st

from repro.workloads.trace import Heap
from repro.workloads.trees import (
    ArrayBSTProgram,
    BinarySearchTree,
    BSTLookupProgram,
    RBTreeMapProgram,
    RedBlackTree,
)


class TestBinarySearchTree:
    def test_lookup_finds_inserted_keys(self):
        tree = BinarySearchTree(Heap())
        for key in [50, 30, 70, 20, 40]:
            tree.insert(key)
        path = tree.lookup_path(40)
        assert path[-1][0].key == 40
        assert path[-1][1] is None

    def test_lookup_path_follows_comparisons(self):
        tree = BinarySearchTree(Heap())
        for key in [50, 30, 70]:
            tree.insert(key)
        path = tree.lookup_path(30)
        assert [went_left for _, went_left in path] == [True, None]

    def test_missing_key_path_ends_without_match(self):
        tree = BinarySearchTree(Heap())
        tree.insert(50)
        path = tree.lookup_path(10)
        assert path[-1][1] is not None

    def test_sorted_inserts_degenerate_depth(self):
        tree = BinarySearchTree(Heap())
        for key in range(20):
            tree.insert(key)
        assert tree.depth() == 20


class TestRedBlackTree:
    def test_invariants_after_sequential_inserts(self):
        tree = RedBlackTree(Heap())
        for key in range(100):
            tree.insert(key)
        tree.check_invariants()

    def test_balanced_despite_sorted_input(self):
        tree = RedBlackTree(Heap())
        for key in range(128):
            tree.insert(key)
        # RB trees bound depth to 2*log2(n+1)
        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(tree.root) <= 2 * 8

    def test_inorder_is_sorted(self):
        tree = RedBlackTree(Heap())
        rng = random.Random(1)
        keys = rng.sample(range(1000), 200)
        for key in keys:
            tree.insert(key)
        assert tree.keys_inorder() == sorted(keys)

    def test_lookup_path_terminates_at_key(self):
        tree = RedBlackTree(Heap())
        for key in [5, 3, 8, 1, 4]:
            tree.insert(key)
        assert tree.lookup_path(4)[-1][0].key == 4

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=300, unique=True))
    def test_invariants_hold_for_any_insert_order(self, keys):
        tree = RedBlackTree(Heap())
        for key in keys:
            tree.insert(key)
        tree.check_invariants()
        assert tree.keys_inorder() == sorted(keys)
        assert tree.size == len(keys)


class TestTreeWorkloads:
    def test_bst_trace_is_deterministic(self):
        a = BSTLookupProgram(num_keys=64, num_lookups=50).trace()
        b = BSTLookupProgram(num_keys=64, num_lookups=50).trace()
        assert [x.addr for x in a] == [x.addr for x in b]

    def test_bst_lookups_carry_search_key_in_register(self):
        prog = BSTLookupProgram(num_keys=32, num_lookups=20)
        assert any(a.reg_value != 0 for a in prog.trace())

    def test_bst_traversal_is_dependent(self):
        prog = BSTLookupProgram(num_keys=64, num_lookups=30)
        assert any(a.depends_on_prev for a in prog.trace())

    def test_maptest_pointer_hints_present(self):
        prog = RBTreeMapProgram(num_keys=64, num_lookups=20)
        hinted = [a for a in prog.trace() if a.hints.type_id != 0]
        assert hinted
        assert {a.hints.link_offset for a in hinted} <= {8, 16}

    def test_array_bst_addresses_stay_in_one_allocation(self):
        prog = ArrayBSTProgram(num_keys=255, num_lookups=50)
        trace = prog.trace()
        lo, hi = min(a.addr for a in trace), max(a.addr for a in trace)
        assert hi - lo <= (2 * 255 + 2) * prog.element_bytes

    def test_array_bst_has_no_dependent_loads(self):
        # index arithmetic, not pointer chasing (Figure 2's array variant)
        prog = ArrayBSTProgram(num_keys=255, num_lookups=20)
        assert not any(a.depends_on_prev for a in prog.trace())

    def test_branch_outcomes_reflect_comparisons(self):
        prog = BSTLookupProgram(num_keys=64, num_lookups=30)
        assert any(True in a.branches or False in a.branches for a in prog.trace())
