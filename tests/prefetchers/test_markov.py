"""Tests for the Markov prefetcher (Joseph & Grunwald)."""

from repro.prefetchers.base import AccessInfo
from repro.prefetchers.markov import MarkovConfig, MarkovPrefetcher


def miss(index, addr, pc=0x400000):
    return AccessInfo(index=index, cycle=0, addr=addr, pc=pc, primary_miss=True)


def feed(pf, addrs):
    reqs = []
    for i, addr in enumerate(addrs):
        reqs = pf.on_access(miss(i, addr))
    return reqs


class TestTransitionLearning:
    def test_learns_recurring_chain(self):
        pf = MarkovPrefetcher()
        chain = [0x1000, 0x5000, 0x9000, 0x3000]
        feed(pf, chain * 3)
        reqs = pf.on_access(miss(100, 0x1000))
        assert 0x5000 in [r.addr for r in reqs]

    def test_no_prediction_for_unseen_state(self):
        pf = MarkovPrefetcher()
        feed(pf, [0x1000, 0x5000])
        assert pf.on_access(miss(10, 0xBEEF00)) == []

    def test_most_frequent_successor_ranked_first(self):
        pf = MarkovPrefetcher(MarkovConfig(degree=1))
        # A -> B twice, A -> C once
        feed(pf, [0x1000, 0x2000, 0x1000, 0x3000, 0x1000, 0x2000])
        reqs = pf.on_access(miss(50, 0x1000))
        assert [r.addr for r in reqs] == [0x2000]

    def test_degree_limits_predictions(self):
        pf = MarkovPrefetcher(MarkovConfig(degree=2, successors_per_entry=4))
        stream = []
        for successor in (0x2000, 0x3000, 0x4000):
            stream += [0x1000, successor]
        feed(pf, stream)
        reqs = pf.on_access(miss(50, 0x1000))
        assert len(reqs) == 2

    def test_diverging_paths_not_disambiguated(self):
        # the paper's critique: address-only state cannot separate two
        # traversals passing through the same node
        pf = MarkovPrefetcher(MarkovConfig(degree=1))
        feed(pf, [0x1000, 0x2000] * 3 + [0x1000, 0x3000] * 3)
        reqs = pf.on_access(miss(50, 0x1000))
        # it predicts one successor for both paths, whichever is counted
        # higher, rather than the path-dependent correct one
        assert len(reqs) == 1


class TestBounds:
    def test_successor_list_bounded(self):
        pf = MarkovPrefetcher(MarkovConfig(successors_per_entry=2))
        stream = []
        for successor in range(8):
            stream += [0x1000, 0x100000 + successor * 64]
        feed(pf, stream)
        state = pf._table[0x1000 // 64]
        assert len(state.successors) <= 2

    def test_table_bounded_with_lru(self):
        pf = MarkovPrefetcher(MarkovConfig(table_entries=4))
        feed(pf, [0x1000 + i * 4096 for i in range(50)])
        assert len(pf._table) <= 4

    def test_same_line_repeats_not_recorded(self):
        pf = MarkovPrefetcher()
        feed(pf, [0x1000, 0x1008, 0x1010])  # same cache line
        assert len(pf._table) == 0

    def test_miss_only_filter(self):
        pf = MarkovPrefetcher()
        for i in range(6):
            info = AccessInfo(
                index=i, cycle=0, addr=0x1000 + (i % 2) * 4096, pc=0, l1_hit=True
            )
            assert pf.on_access(info) == []

    def test_reset(self):
        pf = MarkovPrefetcher()
        feed(pf, [0x1000, 0x2000] * 3)
        pf.reset()
        assert pf.on_access(miss(50, 0x1000)) == []

    def test_storage_positive(self):
        assert MarkovPrefetcher().storage_bits() > 0
