"""Tests for the SystemConfig bundle and streaming trace input."""

from repro.core.config import ContextPrefetcherConfig
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.nopf import NoPrefetcher
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulator
from repro.workloads.trace import TraceBuilder


class TestSystemConfig:
    def test_table2_defaults(self):
        config = SystemConfig()
        assert config.hierarchy.l1_size == 64 * 1024
        assert config.hierarchy.l2_size == 2 * 1024 * 1024
        assert config.hierarchy.dram_latency == 300
        assert config.core.issue_width == 4
        assert config.core.rob_size == 192
        assert config.context.cst_entries == 2048

    def test_components_are_independent_instances(self):
        a, b = SystemConfig(), SystemConfig()
        assert a.hierarchy is not b.hierarchy
        assert a.context is not b.context

    def test_custom_components(self):
        config = SystemConfig(
            hierarchy=HierarchyConfig(dram_latency=100),
            core=CoreConfig(issue_width=2),
            context=ContextPrefetcherConfig(cst_entries=512),
        )
        assert config.hierarchy.dram_latency == 100
        assert config.core.issue_width == 2
        assert config.context.cst_entries == 512


class TestStreamingTraces:
    def _trace_list(self, n=50):
        tb = TraceBuilder()
        for i in range(n):
            tb.load(0x10000 + i * 64, "s", gap=2)
        return tb.accesses

    def test_generator_input_equivalent_to_list(self):
        trace = self._trace_list()
        from_list = Simulator(NoPrefetcher()).run(trace)
        from_gen = Simulator(NoPrefetcher()).run(a for a in trace)
        assert from_list.cycles == from_gen.cycles
        assert from_list.l1.misses == from_gen.l1.misses

    def test_limit_applies_to_generators(self):
        trace = self._trace_list(50)
        result = Simulator(NoPrefetcher()).run((a for a in trace), limit=10)
        assert result.l1.accesses == 10

    def test_streaming_jsonl_replay(self, tmp_path):
        from repro.workloads.serialize import iter_trace, save_trace

        trace = self._trace_list()
        path = tmp_path / "stream.jsonl"
        save_trace(trace, path)
        with open(path) as fp:
            result = Simulator(NoPrefetcher()).run(iter_trace(fp))
        assert result.l1.accesses == len(trace)
