"""The full toolchain: IR program → hint pass → interpreter → simulator.

The paper's hints come from a modified LLVM pass (Section 6).  This
example shows the whole pipeline at model scale: a linked-list search
written in the mini-IR, the hint-injection pass deciding which loads get
semantic hints (only the pointer-producing ones), the interpreter
executing it into a trace, and the simulator measuring how much those
hints are worth to the context prefetcher.

Run:  python examples/compiled_workload.py
"""

import random

from repro.compiler import Interpreter
from repro.compiler.interp import Memory
from repro.compiler.programs import build_list_search, setup_linked_list
from repro.sim import Simulator, make_prefetcher
from repro.workloads.trace import Heap, TraceBuilder


def main() -> None:
    rng = random.Random(11)
    memory = Memory()
    heap = Heap(placement="shuffled", seed=11)
    # 5000 16-byte nodes ≈ 80 kB of structure: larger than the 64 kB L1,
    # so the searches actually miss and the prefetcher has work to do
    values = rng.sample(range(100_000), 5000)
    layout = setup_linked_list(memory, heap, values)

    function = build_list_search()
    interp = Interpreter(function, memory=memory)

    table = interp.hint_table
    print(f"IR function: {function.name}")
    print(
        f"hint pass: {table.hinted_instructions}/{table.memory_instructions} "
        f"memory instructions hinted "
        f"({table.hint_overhead:.0%} — only pointer-producing loads)"
    )

    num_searches = 60
    print(f"interpreting {num_searches} searches ...")
    tb = TraceBuilder()
    hits = 0
    for _ in range(num_searches):
        key = rng.choice(values)
        result = interp.run(layout.head, key, trace_builder=tb)
        hits += result.return_value != 0
    trace = tb.accesses
    print(
        f"trace: {len(trace)} accesses, all {hits}/{num_searches} searches "
        "found their key"
    )

    print("simulating under none / context ...")
    base = Simulator(make_prefetcher("none")).run(trace, workload_name="ir-search")
    ctx = Simulator(make_prefetcher("context")).run(trace, workload_name="ir-search")
    print()
    print(f"baseline IPC {base.ipc:.3f} -> context IPC {ctx.ipc:.3f} "
          f"({ctx.speedup_over(base):.2f}x)")
    print(f"L1 MPKI {base.l1_mpki:.1f} -> {ctx.l1_mpki:.1f}")


if __name__ == "__main__":
    main()
