"""Tests for the PC-indexed stride prefetcher."""

from repro.prefetchers.base import AccessInfo
from repro.prefetchers.stride import StrideConfig, StridePrefetcher


def miss(index, addr, pc=0x400000):
    return AccessInfo(index=index, cycle=0, addr=addr, pc=pc, primary_miss=True)


def hit(index, addr, pc=0x400000):
    return AccessInfo(index=index, cycle=0, addr=addr, pc=pc, l1_hit=True)


class TestSteadyStateDetection:
    def test_first_two_accesses_never_prefetch(self):
        pf = StridePrefetcher()
        assert pf.on_access(miss(0, 0x1000)) == []
        assert pf.on_access(miss(1, 0x1200)) == []

    def test_third_consistent_stride_prefetches(self):
        pf = StridePrefetcher()
        pf.on_access(miss(0, 0x1000))
        pf.on_access(miss(1, 0x1200))
        reqs = pf.on_access(miss(2, 0x1400))
        assert [r.addr for r in reqs] == [0x1600, 0x1800, 0x1A00]

    def test_degree_configurable(self):
        pf = StridePrefetcher(StrideConfig(degree=1))
        for i in range(3):
            reqs = pf.on_access(miss(i, 0x1000 + i * 0x200))
        assert len(reqs) == 1

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher()
        for i in range(5):
            reqs = pf.on_access(miss(i, 0x1000))
        assert reqs == []

    def test_sub_line_strides_collapse_to_lines(self):
        # misses within one line are rounded to the same line address,
        # so a "stride" of 8 bytes cannot poison the detector
        pf = StridePrefetcher()
        for i in range(6):
            reqs = pf.on_access(miss(i, 0x1000 + i * 8))
        assert reqs == []


class TestHysteresis:
    def test_changed_stride_degrades_then_recovers(self):
        pf = StridePrefetcher()
        pf.on_access(miss(0, 0x1000))
        pf.on_access(miss(1, 0x1200))
        pf.on_access(miss(2, 0x1400))  # steady
        assert pf.on_access(miss(3, 0x5000)) == []  # break: transient
        pf.on_access(miss(4, 0x5200))
        pf.on_access(miss(5, 0x5400))
        assert pf.on_access(miss(6, 0x5600)) != []

    def test_negative_stride_supported(self):
        pf = StridePrefetcher()
        for i in range(3):
            reqs = pf.on_access(miss(i, 0x10000 - i * 0x200))
        assert reqs[0].addr == 0x10000 - 3 * 0x200


class TestFiltering:
    def test_hits_ignored_when_miss_only(self):
        pf = StridePrefetcher()
        for i in range(10):
            assert pf.on_access(hit(i, 0x1000 + i * 0x200)) == []

    def test_trains_on_hits_when_configured(self):
        pf = StridePrefetcher(StrideConfig(train_on_miss_only=False))
        for i in range(3):
            reqs = pf.on_access(hit(i, 0x1000 + i * 0x200))
        assert reqs != []

    def test_distinct_pcs_tracked_separately(self):
        pf = StridePrefetcher()
        for i in range(3):
            pf.on_access(miss(2 * i, 0x1000 + i * 0x200, pc=0x400000))
            reqs_b = pf.on_access(miss(2 * i + 1, 0x9000 + i * 0x400, pc=0x400008))
        assert [r.addr for r in reqs_b][0] == 0x9000 + 3 * 0x400

    def test_tag_conflict_resets_entry(self):
        cfg = StrideConfig(table_entries=16)
        pf = StridePrefetcher(cfg)
        pf.on_access(miss(0, 0x1000, pc=0))
        pf.on_access(miss(1, 0x1200, pc=0))
        # pc=16 maps to the same index with a different tag
        assert pf.on_access(miss(2, 0x1400, pc=16)) == []


class TestHousekeeping:
    def test_storage_scales_with_entries(self):
        small = StridePrefetcher(StrideConfig(table_entries=64))
        large = StridePrefetcher(StrideConfig(table_entries=512))
        assert large.storage_bits() == 8 * small.storage_bits()

    def test_reset_clears_state(self):
        pf = StridePrefetcher()
        for i in range(3):
            pf.on_access(miss(i, 0x1000 + i * 0x200))
        pf.reset()
        assert pf.on_access(miss(10, 0x1600)) == []

    def test_name(self):
        assert StridePrefetcher().name == "stride"
