"""Context capture and hashing (Section 4.4, Figure 7).

A *context* is the vector of attribute values present when a memory access
issues.  The attribute values are concatenated and hashed: the full hash
(over every attribute) indexes the Reducer, and a second hash over only the
*active* attributes indexes the Context-States Table.
"""

from __future__ import annotations

from repro.core.attributes import ALL_ATTRIBUTES, Attribute, AttributeSet
from repro.prefetchers.base import AccessInfo

_MASK64 = (1 << 64) - 1


def _mix(state: int, value: int) -> int:
    """One splitmix64-style mixing step; deterministic across runs."""
    state = (state + (value & _MASK64) + 0x9E3779B97F4A7C15) & _MASK64
    state ^= state >> 30
    state = (state * 0xBF58476D1CE4E5B9) & _MASK64
    state ^= state >> 27
    state = (state * 0x94D049BB133111EB) & _MASK64
    state ^= state >> 31
    return state


def context_hash(
    values: tuple[int, ...], active: AttributeSet, bits: int
) -> int:
    """Hash the active attribute values down to ``bits`` bits.

    Because the active set's bitmap is part of the key, the same values
    under a different attribute selection hash differently.  Built on
    Python's (deterministic for ints) tuple hash with one extra mixing
    step so the low bits used for table indexing are well distributed.
    """
    key = hash((active.bits,) + tuple(values[i] for i in active.indices))
    key = (key * 0x9E3779B97F4A7C15) & _MASK64
    key ^= key >> 29
    return key & ((1 << bits) - 1)


class ContextCapture:
    """A captured context: the raw attribute vector plus the access block."""

    __slots__ = ("values", "block")

    def __init__(self, values: tuple[int, ...], block: int):
        self.values = values
        self.block = block

    def hash(self, active: AttributeSet, bits: int) -> int:
        return context_hash(self.values, active, bits)


class ContextTracker:
    """Builds :class:`ContextCapture` records from the access stream.

    Maintains the prefetcher-internal pieces of Table 1 that are functions
    of the stream itself: the recent-address history.  Everything else is
    carried on the :class:`~repro.prefetchers.base.AccessInfo`.
    """

    def __init__(self, *, block_bytes: int, addr_history_depth: int = 2):
        if addr_history_depth < 1:
            raise ValueError("address history needs at least one entry")
        self.block_bytes = block_bytes
        self.addr_history_depth = addr_history_depth
        self._recent_blocks: list[int] = []

    def capture(self, access: AccessInfo) -> ContextCapture:
        """Capture the context of ``access`` *before* recording its address.

        The address-history attribute must reflect the accesses preceding
        this one; the current address becomes history only afterwards.
        """
        addr_hist = 0
        for block in self._recent_blocks:
            addr_hist = _mix(addr_hist, block)

        block = access.addr // self.block_bytes
        values = [0] * len(ALL_ATTRIBUTES)
        values[Attribute.IP] = access.pc
        values[Attribute.TYPE_ID] = access.hints.type_id
        values[Attribute.LINK_OFFSET] = access.hints.link_offset
        values[Attribute.REF_FORM] = int(access.hints.ref_form)
        values[Attribute.LAST_VALUE] = access.last_value
        values[Attribute.BRANCH_HISTORY] = access.branch_history
        values[Attribute.REG_VALUE] = access.reg_value
        values[Attribute.ADDR_HISTORY] = addr_hist

        self._recent_blocks.append(block)
        if len(self._recent_blocks) > self.addr_history_depth:
            self._recent_blocks.pop(0)

        return ContextCapture(values=tuple(values), block=block)

    def reset(self) -> None:
        self._recent_blocks.clear()
