"""CPU substrate: branch-history tracking and an out-of-order timing model.

Replaces the gem5 out-of-order x86 core of Table 2 with an interval-style
approximation that preserves the behaviours the prefetcher interacts with:
miss latency exposure bounded by the reorder-buffer window, memory-level
parallelism bounded by the load queue and MSHRs, and serialisation of
dependent (pointer-chasing) accesses.
"""

from repro.cpu.branch import BranchHistoryRegister
from repro.cpu.core_model import CoreConfig, CoreModel, CoreStats

__all__ = ["BranchHistoryRegister", "CoreConfig", "CoreModel", "CoreStats"]
