"""Parallel sweep engine: the grid → jobs → ordered merge pipeline.

Every cell of a workload × prefetcher sweep is independent — the
simulator is a pure function of (trace, prefetcher, configs, limit) —
so the sweep is embarrassingly parallel.  This module fans the grid out
over a ``ProcessPoolExecutor`` and merges results back **in grid
order**, so the output is field-for-field identical to the serial path
(``tests/sim/test_parallel_parity.py`` proves it):

* jobs are enumerated and submitted in deterministic grid order
  (workloads outer, prefetchers inner — the serial loop's order);
* workers never inherit parent state: the pool uses the ``spawn`` start
  method, and each worker rebuilds its workload and prefetcher from
  config, re-seeding every RNG from the config's seed field;
* results cross the process boundary through the versioned codec
  (:mod:`repro.sim.codec`) — the same encoding the on-disk cache
  persists, so both paths are exercised by the same parity tests;
* the merge iterates the original grid, never completion order.

Trace supply (PR 5): with a :class:`~repro.workloads.store.TraceStore`
configured, registry workloads stop travelling as pickled
``tuple[MemoryAccess, ...]`` or being rebuilt per cell.  The parent
resolves each workload to a compiled binary store file (compiling it at
most once, then reusing it for every later sweep), jobs ship the store
path plus content fingerprint, and pending cells are grouped into
**workload-affinity batches** so a worker materialises a given trace at
most once and runs all of its assigned cells against it.  A store file
that is corrupt, truncated, or from an older codec version degrades to
an in-process rebuild — never a crash (``TraceStoreError`` is caught at
every boundary).  With ``store=None`` the engine behaves exactly as it
did before the trace store existed; ``scripts/bench_report.py`` measures
the two dispatch paths against each other.

Observability: ``progress`` receives one line per finished cell
(``[done/total] workload/prefetcher: …``), flagged ``cached`` for cache
hits.  Wall-clock timing is deliberately absent here — the simulator
package is wall-clock-free by lint rule DET003 — so callers that want
per-job timing inject a clock via ``progress`` closures (see
``scripts/run_full_experiments.py``).
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

if TYPE_CHECKING:  # runner imports this module lazily; avoid the cycle
    from repro.sim.runner import ComparisonResult
    from repro.sim.sched.db import ResultDB

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.cpu.core_model import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.cache import SweepCache, cell_key
from repro.sim.codec import decode_result, encode_result
from repro.sim.config import PREFETCHER_FACTORIES
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulator
from repro.workloads.serialize import trace_fingerprint
from repro.workloads.store import (
    StoredTrace,
    TraceReader,
    TraceStore,
    TraceStoreError,
    read_trace,
)
from repro.workloads.suites import WorkloadSpec, get_workload
from repro.workloads.trace import MemoryAccess, TraceProgram

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class SweepJob:
    """One executable sweep cell, fully described by value.

    Trace supply, in order of preference:

    * ``store_path``/``store_fingerprint`` — a compiled binary trace in
      the store; the worker maps and decodes it (memoized per worker),
      falling back to a registry rebuild if the file went bad;
    * ``trace`` — the access stream shipped by value (ad-hoc
      :class:`TraceProgram` instances that workers cannot rebuild);
    * neither — a registry workload rebuilt by name inside the worker,
      re-seeded from its own config; workers never receive parent RNG
      state.
    """

    index: int
    workload: str
    prefetcher: str
    limit: int | None
    hierarchy_config: HierarchyConfig | None = None
    core_config: CoreConfig | None = None
    context_config: ContextPrefetcherConfig | None = None
    trace: tuple[MemoryAccess, ...] | None = None
    store_path: str | None = None
    store_fingerprint: str = ""
    #: run the cell through the native batch kernel (bit-neutral: cells
    #: the kernel cannot take fall back to the interpreted loop, and the
    #: cache key deliberately excludes this flag)
    native: bool = False


@dataclass
class ExecutionDefaults:
    """Process-wide defaults the CLI/scripts set once per invocation."""

    jobs: int = 1
    cache: SweepCache | None = None
    store: TraceStore | None = None
    native: bool = False
    #: dispatch store-backed grids through the persistent warm worker
    #: pool (:mod:`repro.sim.sched`); ``False`` restores the PR 5
    #: pool-per-call executor path (the bench baseline)
    warm: bool = True
    #: stream executed cells into a queryable result DB and reuse any
    #: cell the DB already holds (content-addressed, like the cache)
    db: "ResultDB | None" = None
    #: OpenMP team size for the kernel's in-shard batch driver
    #: (0 = the OpenMP default; serial builds ignore it, bit-identically)
    kernel_threads: int = 0


_DEFAULTS = ExecutionDefaults()


def default_execution() -> ExecutionDefaults:
    """The currently configured process-wide execution defaults."""
    return _DEFAULTS


def set_default_execution(
    *,
    jobs: int | None = None,
    cache: SweepCache | None | bool = False,
    store: TraceStore | None | bool = False,
    native: bool | None = None,
    warm: bool | None = None,
    db: "ResultDB | None | bool" = False,
    kernel_threads: int | None = None,
) -> ExecutionDefaults:
    """Set process-wide defaults; returns the previous values.

    ``cache=False`` / ``store=False`` / ``db=False`` (the sentinels)
    leave that default untouched; pass an explicit instance or ``None``
    to change it.  ``native=None`` / ``warm=None`` /
    ``kernel_threads=None`` similarly leave the kernel and dispatch
    selections untouched.
    """
    global _DEFAULTS
    previous = _DEFAULTS
    _DEFAULTS = ExecutionDefaults(
        jobs=previous.jobs if jobs is None else max(1, jobs),
        cache=previous.cache if cache is False else cache,
        store=previous.store if store is False else store,
        native=previous.native if native is None else bool(native),
        warm=previous.warm if warm is None else bool(warm),
        db=previous.db if db is False else db,
        kernel_threads=(
            previous.kernel_threads
            if kernel_threads is None
            else max(0, kernel_threads)
        ),
    )
    return previous


def _make_prefetcher(job: SweepJob):
    if job.prefetcher == "context" and job.context_config is not None:
        return ContextPrefetcher(job.context_config)
    return PREFETCHER_FACTORIES[job.prefetcher]()


#: (kernel handled the cell?, fallback reason when it did not); ``None``
#: stands in for cells where no kernel ran this invocation (cache hits)
NativeInfo = tuple[bool, str | None]


def _run_cell(
    job: SweepJob, trace: Sequence[MemoryAccess]
) -> tuple[SimulationResult, NativeInfo]:
    sim = Simulator(
        _make_prefetcher(job),
        hierarchy_config=job.hierarchy_config,
        core_config=job.core_config,
        native=job.native,
    )
    result = sim.run(trace, workload_name=job.workload, limit=job.limit)
    return result, (sim.last_run_native, sim.last_native_fallback)


# -- store-degrade accounting -------------------------------------------
#
# Each process counts its own corrupt-store degrade events; worker-side
# counts return to the parent *by value* inside batch results (nothing
# is shared across the spawn boundary), and the parent drains its own
# counter for inline/resolve-time events.  Both accessors are reachable
# from the worker entry points, so every access to the counter lives on
# one side of the boundary at a time.

_STORE_DEGRADES = [0]


def _count_store_degrade() -> None:
    _STORE_DEGRADES[0] += 1


def _drain_store_degrades() -> int:
    """Read-and-reset this process's degrade count (returned by value)."""
    count = _STORE_DEGRADES[0]
    _STORE_DEGRADES[0] = 0
    return count


def _rebuild_by_name(workload: str, limit: int | None) -> Sequence[MemoryAccess]:
    trace: Sequence[MemoryAccess] = get_workload(workload).build().trace()
    if limit is not None:
        trace = trace[:limit]
    return trace


def _load_trace(
    workload: str,
    store_path: str | None,
    store_fingerprint: str,
    limit: int | None,
    native: bool,
) -> Sequence[MemoryAccess]:
    """Load one workload's trace from the store, or rebuild by name."""
    if store_path is not None:
        try:
            if native:
                # hand the mmap-backed reader straight to the simulator:
                # the native kernel decodes it zero-copy via as_array,
                # and any interpreted fallback iterates it lazily.  A
                # fingerprint mismatch falls through to read_trace, which
                # raises the descriptive store error
                reader = TraceReader(store_path)
                if (
                    not store_fingerprint
                    or reader.meta.fingerprint == store_fingerprint
                ):
                    return reader
            return read_trace(
                store_path,
                limit=limit,
                expect_fingerprint=store_fingerprint or None,
            )
        except (TraceStoreError, FileNotFoundError, OSError):
            # the store file went bad between submit and execute;
            # degrade to a rebuild, never fail the sweep
            _count_store_degrade()
            return _rebuild_by_name(workload, limit)
    return _rebuild_by_name(workload, limit)


def _job_trace(job: SweepJob) -> Sequence[MemoryAccess]:
    """Resolve one job's trace (by value, from the store, or rebuilt)."""
    if job.trace is not None:
        return job.trace
    return _load_trace(
        job.workload, job.store_path, job.store_fingerprint, job.limit, job.native
    )


def run_job(job: SweepJob) -> SimulationResult:
    """Execute one cell from scratch (also the in-worker entry point)."""
    return _run_cell(job, _job_trace(job))[0]


def _execute_job(job: SweepJob) -> tuple[int, dict[str, Any], NativeInfo]:
    """Worker body: run the cell, return its index + encoded result.

    Returning the *encoded* form means every parallel result crosses the
    process boundary through the same versioned codec the cache uses.
    The :data:`NativeInfo` rides along so the parent can summarize which
    cells the kernel actually took and why the rest fell back.
    """
    result, native_info = _run_cell(job, _job_trace(job))
    return job.index, encode_result(result), native_info


# -- worker-side trace memo ---------------------------------------------
#
# An affinity batch carries every cell of (a chunk of) one workload, so
# the trace is materialised once per batch; the memo additionally lets a
# worker that receives several batches of the same workload (or the same
# workload at several limits) reuse the decoded records across batches.
# Keyed by content fingerprint — never by path alone — so a swapped file
# can't alias a stale trace.  Capped: traces are large and workers churn
# through workloads in affinity order, so keeping the last few is enough.

_WORKER_TRACE_MEMO: dict[
    tuple[str, str, str, int | None, bool], Sequence[MemoryAccess]
] = {}
_WORKER_TRACE_MEMO_CAP = 4


def _resolve_worker_trace(
    workload: str,
    store_path: str | None,
    store_fingerprint: str,
    limit: int | None,
    native: bool,
    shipped: Sequence[MemoryAccess] | None = None,
) -> Sequence[MemoryAccess]:
    """Memoized trace resolution shared by every batch executor.

    Both the legacy pool-per-call batches and the persistent warm
    workers (:mod:`repro.sim.sched.pool`) resolve traces here, so the
    two dispatch paths cannot drift: same memo, same degrade handling,
    same fingerprint checks.
    """
    if shipped is not None:
        return shipped
    if store_path is not None:
        key = ("store", store_path, store_fingerprint, limit, native)
    else:
        key = ("name", workload, "", limit, native)
    trace = _WORKER_TRACE_MEMO.get(key)
    if trace is None:
        trace = _load_trace(workload, store_path, store_fingerprint, limit, native)
        while len(_WORKER_TRACE_MEMO) >= _WORKER_TRACE_MEMO_CAP:
            _WORKER_TRACE_MEMO.pop(next(iter(_WORKER_TRACE_MEMO)))
        _WORKER_TRACE_MEMO[key] = trace
    return trace


def _batch_trace(job: SweepJob) -> Sequence[MemoryAccess]:
    return _resolve_worker_trace(
        job.workload,
        job.store_path,
        job.store_fingerprint,
        job.limit,
        job.native,
        job.trace,
    )


def _execute_batch(
    jobs: tuple[SweepJob, ...],
) -> tuple[list[tuple[int, dict[str, Any], NativeInfo]], int]:
    """Worker body for one affinity batch: shared trace, ordered results.

    The second element is this worker's store-degrade count since the
    last batch, returned by value for the parent's resilience summary.
    """
    out = []
    for job in jobs:
        result, native_info = _run_cell(job, _batch_trace(job))
        out.append((job.index, encode_result(result), native_info))
    return out, _drain_store_degrades()


@dataclass
class _Cell:
    """Bookkeeping for one grid position during a sweep.

    ``local_trace`` is the parent-resolved trace, used by the inline
    (jobs == 1) path so cached-but-cold runs never rebuild a workload
    per cell; it is never shipped to workers — only ``job`` is.
    """

    workload: str
    prefetcher: str
    job: SweepJob
    local_trace: Sequence[MemoryAccess] | None = None
    key: str | None = None
    result: SimulationResult | None = None
    cached: bool = False
    #: satisfied from the result DB (content-addressed, like the cache)
    from_db: bool = False
    #: unset for cache hits — no kernel ran, so there is nothing to count
    native_info: NativeInfo | None = None


@dataclass
class _GridEntry:
    """One workload of the sweep, resolved to its cheapest trace supply."""

    name: str
    #: compiled store file (registry workloads with a store configured)
    stored: StoredTrace | None = None
    #: in-memory trace: ad-hoc programs, custom specs, store fallbacks —
    #: and the just-built trace when this resolve compiled the store file
    trace: Sequence[MemoryAccess] | None = None
    #: workers may rebuild this workload from the registry by name
    by_name: bool = False
    #: the originating program, for per-instance fingerprint memoization
    program: TraceProgram | None = None


#: full-trace fingerprints of *registry* workloads, memoized per process:
#: the trace is a pure function of the workload source (hashed into the
#: store address and the cache's code fingerprint), so within a process
#: the same name can never map to two different streams
_REGISTRY_FP_MEMO: dict[str, str] = {}


def _registry_fingerprint(workload: str) -> str:
    """Fingerprint a registry workload by name (builds at most once)."""
    fp = _REGISTRY_FP_MEMO.get(workload)
    if fp is None:
        fp = trace_fingerprint(get_workload(workload).build().trace())
        _REGISTRY_FP_MEMO[workload] = fp
    return fp


def _entry_fingerprint(entry: _GridEntry) -> str:
    """Content fingerprint of one workload's full trace, hashed at most
    once per trace identity (store header > per-name memo > per-program
    memo) instead of once per sweep call."""
    if entry.stored is not None:
        return entry.stored.fingerprint
    assert entry.trace is not None
    if entry.by_name:
        fp = _REGISTRY_FP_MEMO.get(entry.name)
        if fp is None:
            fp = trace_fingerprint(entry.trace)
            _REGISTRY_FP_MEMO[entry.name] = fp
        return fp
    if entry.program is not None:
        fp = getattr(entry.program, "_fingerprint_cache", None)
        if fp is None:
            fp = trace_fingerprint(entry.trace)
            entry.program._fingerprint_cache = fp  # type: ignore[attr-defined]
        return fp
    return trace_fingerprint(entry.trace)


def _resolve_grid(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
    store: TraceStore | None,
) -> list[_GridEntry]:
    """One :class:`_GridEntry` per workload, in input order.

    A workload is rebuilt by name inside workers (or addressed in the
    store) only when the name resolves to the *same* registry entry the
    caller passed — a custom spec or ad-hoc program that merely shares a
    name ships its trace explicitly instead, so workers can never run
    the wrong workload.  With a store, registry workloads resolve to a
    compiled file without the parent building (or hashing) anything on
    a warm store; a failing store degrades to the in-memory path.
    """
    out: list[_GridEntry] = []
    for workload in workloads:
        spec: WorkloadSpec | None = None
        if isinstance(workload, str):
            spec = get_workload(workload)
        elif isinstance(workload, WorkloadSpec):
            spec = workload
        if spec is not None:
            by_name = False
            try:
                by_name = get_workload(spec.name) is spec
            except KeyError:
                by_name = False
            if by_name and store is not None:
                try:
                    ref, built = store.ensure(spec.name, build=spec)
                except TraceStoreError:
                    # unwritable/unreadable store: in-memory path
                    _count_store_degrade()
                else:
                    out.append(
                        _GridEntry(
                            name=spec.name,
                            stored=ref,
                            trace=built,
                            by_name=True,
                        )
                    )
                    continue
            out.append(
                _GridEntry(
                    name=spec.name, trace=spec.build().trace(), by_name=by_name
                )
            )
        else:
            assert isinstance(workload, TraceProgram)
            out.append(
                _GridEntry(
                    name=workload.name,
                    trace=workload.trace(),
                    program=workload,
                )
            )
    return out


def _affinity_batches(pending: list[_Cell], jobs: int) -> list[tuple[_Cell, ...]]:
    """Group pending cells into workload-affinity batches, grid order.

    All cells of a batch share one workload, so the worker materialises
    the trace once per batch.  Each workload is split into at most
    ``ceil(jobs / n_workloads)`` contiguous chunks — enough batches to
    occupy every worker, few enough that a trace is decoded a bounded
    number of times.  Batch order is grid order (workloads outer, chunk
    offset inner), keeping submission deterministic.
    """
    groups: dict[str, list[_Cell]] = {}
    for cell in pending:
        groups.setdefault(cell.workload, []).append(cell)
    chunks_per = max(1, -(-jobs // len(groups)))  # ceil division
    batches: list[tuple[_Cell, ...]] = []
    for cells in groups.values():
        k = min(len(cells), chunks_per)
        size = -(-len(cells) // k)
        for start in range(0, len(cells), size):
            batches.append(tuple(cells[start : start + size]))
    return batches


def parallel_compare(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
    prefetchers: Iterable[str],
    *,
    hierarchy_config: HierarchyConfig | None = None,
    core_config: CoreConfig | None = None,
    context_config: ContextPrefetcherConfig | None = None,
    limit: int | None = None,
    jobs: int = 1,
    cache: SweepCache | None = None,
    store: TraceStore | None = None,
    native: bool = False,
    warm: bool | None = None,
    db: "ResultDB | None" = None,
    progress: ProgressFn | None = None,
) -> "ComparisonResult":
    """Run the sweep grid with ``jobs`` workers and an optional cache.

    Returns the same :class:`~repro.sim.runner.ComparisonResult` the
    serial path builds, with identical cell values and identical
    workload/prefetcher ordering.  ``store`` supplies registry-workload
    traces from compiled binary files (see module docstring); cache
    keys are identical with the store on or off, because the store
    header carries the same content fingerprint the cache hashes.

    ``warm`` selects the dispatch path for store-backed grids: ``True``
    (the default) sends workload-affinity batches to the process-wide
    persistent worker pool (:mod:`repro.sim.sched.pool`), so repeated
    sweeps share spawned interpreters, decoded traces and warm kernel
    handles; ``False`` restores the PR 5 pool-per-call executor.  Both
    are bit-identical to serial.  ``db`` streams executed cells into a
    queryable :class:`~repro.sim.sched.db.ResultDB` and reuses any cell
    the DB already holds; ``None`` defers both to the process-wide
    execution defaults.
    """
    from repro.sim.runner import ComparisonResult

    defaults = default_execution()
    effective_warm = defaults.warm if warm is None else warm
    effective_db = defaults.db if db is None else db

    # per-call resilience accounting: discard any counts left over from
    # an earlier call, snapshot the cache/store counters to diff later
    _drain_store_degrades()
    store_degrades = 0
    cache_errors_before = cache.counters.errors if cache is not None else 0
    store_heals_before = store.heals if store is not None else 0

    prefetcher_names = list(prefetchers)
    grid = _resolve_grid(workloads, store)

    cells: list[_Cell] = []
    for entry in grid:
        name = entry.name
        want_key = cache is not None or effective_db is not None
        trace_fp = _entry_fingerprint(entry) if want_key else ""
        if entry.stored is not None:
            # the worker maps the compiled file (or this process decodes
            # it lazily on the inline path); nothing ships by value
            shipped = None
        elif entry.by_name and limit is None:
            shipped = None
        elif limit is not None:
            assert entry.trace is not None
            shipped = tuple(entry.trace[:limit])
        else:
            assert entry.trace is not None
            shipped = tuple(entry.trace)
        for pf_name in prefetcher_names:
            job = SweepJob(
                index=len(cells),
                workload=name,
                prefetcher=pf_name,
                limit=limit,
                hierarchy_config=hierarchy_config,
                core_config=core_config,
                context_config=context_config,
                trace=shipped,
                store_path=(
                    entry.stored.path if entry.stored is not None else None
                ),
                store_fingerprint=(
                    entry.stored.fingerprint if entry.stored is not None else ""
                ),
                native=native,
            )
            cell = _Cell(
                workload=name,
                prefetcher=pf_name,
                job=job,
                local_trace=entry.trace,
            )
            if want_key:
                cell.key = cell_key(
                    workload=name,
                    trace_fp=trace_fp,
                    prefetcher=pf_name,
                    limit=limit,
                    hierarchy_config=hierarchy_config,
                    core_config=core_config,
                    context_config=context_config,
                )
            if cache is not None and cell.key is not None:
                cell.result = cache.load(cell.key)
                cell.cached = cell.result is not None
            if (
                cell.result is None
                and effective_db is not None
                and cell.key is not None
            ):
                cell.result = effective_db.load(cell.key)
                cell.from_db = cell.result is not None
                if cell.from_db and cache is not None and cell.key is not None:
                    # backfill the JSON cache so later runs hit locally
                    cache.store(cell.key, cell.result)
            cells.append(cell)

    total = len(cells)
    done = 0

    def report(cell: _Cell) -> None:
        if progress is None:
            return
        assert cell.result is not None
        suffix = " [cached]" if cell.cached else " [db]" if cell.from_db else ""
        progress(f"[{done}/{total}] {cell.result.summary()}{suffix}")

    for cell in cells:
        if cell.cached or cell.from_db:
            done += 1
            report(cell)

    def finish(
        cell: _Cell, payload: dict[str, Any], native_info: NativeInfo
    ) -> None:
        nonlocal done
        cell.result = decode_result(payload)
        cell.native_info = native_info
        done += 1
        if cache is not None and cell.key is not None:
            cache.store(cell.key, cell.result)
        if effective_db is not None and cell.key is not None:
            # ad-hoc rows carry an empty sweep id: `repro serve status`
            # reports them as their own bucket
            effective_db.store_cells(
                "",
                [
                    (
                        cell.key,
                        cell.job.index,
                        cell.workload,
                        cell.prefetcher,
                        payload,
                    )
                ],
            )
        report(cell)

    pending = [cell for cell in cells if cell.result is None]
    if pending and jobs > 1:
        # spawn (not fork): workers start from a clean interpreter and
        # can only re-seed from config, never inherit parent RNG state
        if store is not None and effective_warm:
            # persistent warm workers via the scheduler dispatch path:
            # same affinity batching, but the pool (and everything warm
            # inside it) outlives this call and is shared process-wide
            from repro.sim.sched.plan import shard_by_workload
            from repro.sim.sched.pool import BatchShared, shared_pool
            from repro.sim.sched.scheduler import dispatch_sync

            batches = shard_by_workload(
                pending, lambda cell: cell.workload, jobs
            )
            messages = []
            for batch in batches:
                lead = batch[0].job
                shared = BatchShared(
                    workload=lead.workload,
                    limit=lead.limit,
                    native=lead.native,
                    hierarchy_config=lead.hierarchy_config,
                    core_config=lead.core_config,
                    context_table=(lead.context_config,),
                    store_path=lead.store_path,
                    store_fingerprint=lead.store_fingerprint,
                    trace=lead.trace,
                    kernel_threads=default_execution().kernel_threads,
                )
                messages.append(
                    (
                        shared,
                        tuple(
                            (cell.job.index, cell.job.prefetcher, 0)
                            for cell in batch
                        ),
                    )
                )
            by_index = {cell.job.index: cell for cell in pending}

            def on_batch(_pos: int, results: list, degrades: int) -> None:
                nonlocal store_degrades
                store_degrades += degrades
                for index, payload, native_info in results:
                    finish(by_index[index], payload, native_info)

            dispatch_sync(shared_pool(jobs), messages, on_batch)
        elif store is not None:
            # PR 5 cold path (kept as the measurable dispatch baseline):
            # workload-affinity batches on a pool spawned per call
            batches = _affinity_batches(pending, jobs)
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(batches)),
                mp_context=get_context("spawn"),
            ) as pool:
                futures: list[tuple[tuple[_Cell, ...], Future]] = [
                    (batch, pool.submit(_execute_batch, tuple(c.job for c in batch)))
                    for batch in batches
                ]
                # iterate submission order, not completion order:
                # progress lines and cache stores stay deterministic
                by_index = {cell.job.index: cell for cell in pending}
                for batch, future in futures:
                    results, degrades = future.result()
                    store_degrades += degrades
                    for index, payload, native_info in results:
                        finish(by_index[index], payload, native_info)
        else:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                mp_context=get_context("spawn"),
            ) as pool:
                job_futures: list[tuple[_Cell, Future]] = [
                    (cell, pool.submit(_execute_job, cell.job)) for cell in pending
                ]
                for cell, future in job_futures:
                    index, payload, native_info = future.result()
                    assert index == cell.job.index
                    finish(cell, payload, native_info)
    else:
        # inline path: materialise each store-backed workload at most
        # once in this process, so cached-but-cold runs never decode (or
        # rebuild) a trace per cell
        local_traces: dict[str, Sequence[MemoryAccess]] = {}
        for cell in pending:
            trace = cell.local_trace
            if trace is None:
                trace = local_traces.get(cell.workload)
                if trace is None:
                    trace = _job_trace(cell.job)
                    local_traces[cell.workload] = trace
            result, native_info = _run_cell(cell.job, trace)
            cell.result = decode_result(encode_result(result))
            cell.native_info = native_info
            done += 1
            if cache is not None and cell.key is not None:
                cache.store(cell.key, cell.result)
            report(cell)

    comparison = ComparisonResult()
    for cell in cells:
        assert cell.result is not None
        comparison.results.setdefault(cell.workload, {})[cell.prefetcher] = cell.result
        if native and cell.native_info is not None:
            comparison.native_cells[f"{cell.workload}/{cell.prefetcher}"] = (
                cell.native_info
            )
    # resilience roll-up: worker deltas came back by value with each
    # batch; the parent's own events (grid resolve, inline path) drain
    # here, and the cache/store instance counters diff against the
    # snapshots taken on entry
    store_degrades += _drain_store_degrades()
    if store is not None:
        store_degrades += store.heals - store_heals_before
    comparison.store_degrades = store_degrades
    if cache is not None:
        comparison.cache_heals = cache.counters.errors - cache_errors_before
    if progress is not None and cache is not None:
        progress(cache.counters.summary())
    if progress is not None:
        summary = comparison.native_summary()
        if summary is not None:
            progress(summary)
        resilience = comparison.resilience_summary()
        if resilience is not None:
            progress(resilience)
    return comparison


def parallel_storage_sweep(
    workloads: Iterable[WorkloadSpec | TraceProgram | str],
    cst_sizes: Iterable[int],
    *,
    limit: int | None = None,
    base_config: ContextPrefetcherConfig | None = None,
    jobs: int = 1,
    cache: SweepCache | None = None,
    store: TraceStore | None = None,
    native: bool = False,
    progress: ProgressFn | None = None,
) -> dict[int, dict[str, SimulationResult]]:
    """Figure 13's (CST size × workload) grid on the parallel engine.

    Each size is one ``context`` configuration (CST rescaled, reducer at
    8×), so the cache keys config sweeps exactly like prefetcher sweeps.
    With a store, registry traces are compiled once and then mapped per
    size instead of being rebuilt per (size × workload).
    """
    base = base_config or ContextPrefetcherConfig()
    workload_list = list(workloads)  # reused across sizes; don't exhaust
    sizes = list(cst_sizes)
    out: dict[int, dict[str, SimulationResult]] = {}
    for size in sizes:
        comparison = parallel_compare(
            workload_list,
            ("context",),
            context_config=base.scaled(size),
            limit=limit,
            jobs=jobs,
            cache=cache,
            store=store,
            native=native,
            progress=progress,
        )
        out[size] = {
            wl: comparison.get(wl, "context") for wl in comparison.workloads()
        }
    return out


__all__ = [
    "ExecutionDefaults",
    "SweepJob",
    "default_execution",
    "parallel_compare",
    "parallel_storage_sweep",
    "run_job",
    "set_default_execution",
]
