"""Tests for context capture and hashing."""

from hypothesis import given, strategies as st

from repro.core.attributes import ALL_ATTRIBUTES, Attribute, AttributeSet
from repro.core.context import ContextCapture, ContextTracker, context_hash
from repro.hints import RefForm, SemanticHints
from repro.prefetchers.base import AccessInfo


def info(addr=0x1000, pc=0x400000, **kwargs):
    return AccessInfo(index=0, cycle=0, addr=addr, pc=pc, **kwargs)


values8 = st.tuples(*[st.integers(min_value=0, max_value=1 << 48)] * 8)


class TestContextHash:
    @given(values8)
    def test_deterministic(self, values):
        active = AttributeSet()
        assert context_hash(values, active, 16) == context_hash(values, active, 16)

    @given(values8)
    def test_respects_bit_width(self, values):
        assert context_hash(values, AttributeSet(), 14) < (1 << 14)
        assert context_hash(values, AttributeSet(ALL_ATTRIBUTES), 19) < (1 << 19)

    def test_inactive_attributes_do_not_affect_hash(self):
        active = AttributeSet((Attribute.IP,))
        a = context_hash((1, 2, 3, 4, 5, 6, 7, 8), active, 19)
        b = context_hash((1, 9, 9, 9, 9, 9, 9, 9), active, 19)
        assert a == b

    def test_active_attribute_changes_hash(self):
        active = AttributeSet((Attribute.IP, Attribute.TYPE_ID))
        a = context_hash((1, 2, 0, 0, 0, 0, 0, 0), active, 19)
        b = context_hash((1, 3, 0, 0, 0, 0, 0, 0), active, 19)
        assert a != b

    def test_active_set_is_part_of_key(self):
        # the same values under different selections must hash apart,
        # otherwise splitting a context would alias its old entry
        values = (1, 0, 0, 0, 0, 0, 0, 0)
        a = context_hash(values, AttributeSet((Attribute.IP,)), 19)
        b = context_hash(
            values, AttributeSet((Attribute.IP, Attribute.TYPE_ID)), 19
        )
        assert a != b


class TestContextTracker:
    def test_captures_all_table1_attributes(self):
        tracker = ContextTracker(block_bytes=32)
        hints = SemanticHints(type_id=3, link_offset=16, ref_form=RefForm.ARROW)
        capture = tracker.capture(
            info(
                addr=0x1234,
                pc=0x400100,
                branch_history=0b1011,
                reg_value=99,
                last_value=0x5678,
                hints=hints,
            )
        )
        v = capture.values
        assert v[Attribute.IP] == 0x400100
        assert v[Attribute.TYPE_ID] == 3
        assert v[Attribute.LINK_OFFSET] == 16
        assert v[Attribute.REF_FORM] == int(RefForm.ARROW)
        assert v[Attribute.BRANCH_HISTORY] == 0b1011
        assert v[Attribute.REG_VALUE] == 99
        assert v[Attribute.LAST_VALUE] == 0x5678
        assert capture.block == 0x1234 // 32

    def test_addr_history_excludes_current_access(self):
        tracker = ContextTracker(block_bytes=32)
        first = tracker.capture(info(addr=0x1000))
        assert first.values[Attribute.ADDR_HISTORY] == 0

    def test_addr_history_reflects_previous_accesses(self):
        t1 = ContextTracker(block_bytes=32)
        t2 = ContextTracker(block_bytes=32)
        t1.capture(info(addr=0x1000))
        t2.capture(info(addr=0x2000))
        a = t1.capture(info(addr=0x9000))
        b = t2.capture(info(addr=0x9000))
        assert a.values[Attribute.ADDR_HISTORY] != b.values[Attribute.ADDR_HISTORY]

    def test_history_depth_bounds_memory(self):
        tracker = ContextTracker(block_bytes=32, addr_history_depth=2)
        for i in range(10):
            tracker.capture(info(addr=0x1000 + i * 64))
        # only the last two accesses matter: replaying them from scratch
        # must give the same history value
        fresh = ContextTracker(block_bytes=32, addr_history_depth=2)
        fresh.capture(info(addr=0x1000 + 8 * 64))
        fresh.capture(info(addr=0x1000 + 9 * 64))
        a = tracker.capture(info(addr=0x5000))
        b = fresh.capture(info(addr=0x5000))
        assert a.values[Attribute.ADDR_HISTORY] == b.values[Attribute.ADDR_HISTORY]

    def test_reset(self):
        tracker = ContextTracker(block_bytes=32)
        tracker.capture(info(addr=0x1000))
        tracker.reset()
        capture = tracker.capture(info(addr=0x2000))
        assert capture.values[Attribute.ADDR_HISTORY] == 0

    def test_capture_hash_shortcut(self):
        capture = ContextCapture(values=(1, 2, 3, 4, 5, 6, 7, 8), block=10)
        active = AttributeSet()
        assert capture.hash(active, 19) == context_hash(capture.values, active, 19)
