"""Ready-made IR programs and their runtime setup.

These close the loop of Section 6 end to end: a "source program" in the
mini-IR, the hint pass deciding which accesses carry semantic hints, and
the interpreter producing a simulator trace.  Each builder returns the
function plus a setup helper that lays the input data structure out on a
workload heap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.compiler.interp import Interpreter, Memory
from repro.compiler.ir import Function, FunctionBuilder, StructDecl
from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

NODE_STRUCT_FIELDS = [("value", 0, "int"), ("next", 8, "ptr:node")]


def build_list_sum() -> Function:
    """``int list_sum(node* head)`` — sum values along a linked list."""
    fb = FunctionBuilder("list_sum", params=("head",))
    fb.struct("node", NODE_STRUCT_FIELDS)
    fb.block("entry")
    fb.arith("sum", "add", 0, 0)
    fb.arith("cur", "add", "head", 0)
    fb.jump("check")
    fb.block("check")
    fb.cmp("more", "ne", "cur", 0)
    fb.branch_if("more", "body", "done")
    fb.block("body")
    fb.load("v", "cur", "node", "value")
    fb.arith("sum", "add", "sum", "v")
    fb.load("cur", "cur", "node", "next")
    fb.jump("check")
    fb.block("done")
    fb.ret("sum")
    return fb.build()


def build_list_search() -> Function:
    """``node* list_search(node* head, int key)`` — first node with key."""
    fb = FunctionBuilder("list_search", params=("head", "key"))
    fb.struct("node", NODE_STRUCT_FIELDS)
    fb.key_register("key")
    fb.block("entry")
    fb.arith("cur", "add", "head", 0)
    fb.jump("check")
    fb.block("check")
    fb.cmp("more", "ne", "cur", 0)
    fb.branch_if("more", "test", "miss")
    fb.block("test")
    fb.load("v", "cur", "node", "value")
    fb.cmp("found", "eq", "v", "key")
    fb.branch_if("found", "hit", "advance")
    fb.block("advance")
    fb.load("cur", "cur", "node", "next")
    fb.jump("check")
    fb.block("hit")
    fb.ret("cur")
    fb.block("miss")
    fb.ret(0)
    return fb.build()


def build_array_sum() -> Function:
    """``int array_sum(long* base, int n)`` — dense sequential sum."""
    fb = FunctionBuilder("array_sum", params=("base", "n"))
    fb.block("entry")
    fb.arith("sum", "add", 0, 0)
    fb.arith("i", "add", 0, 0)
    fb.jump("check")
    fb.block("check")
    fb.cmp("more", "lt", "i", "n")
    fb.branch_if("more", "body", "done")
    fb.block("body")
    fb.load_idx("v", "base", "i", scale=8, elem_type="int")
    fb.arith("sum", "add", "sum", "v")
    fb.arith("i", "add", "i", 1)
    fb.jump("check")
    fb.block("done")
    fb.ret("sum")
    return fb.build()


# ----------------------------------------------------------------------
# runtime setup + TraceProgram adapter


@dataclass
class ListLayout:
    head: int
    node_addrs: list[int]
    values: list[int]


def setup_linked_list(
    memory: Memory,
    heap: Heap,
    values: list[int],
    *,
    struct: StructDecl | None = None,
) -> ListLayout:
    """Allocate and initialise a singly linked list in IR memory."""
    struct = struct or StructDecl("node", tuple(NODE_STRUCT_FIELDS))
    addrs = [heap.alloc(struct.size) for _ in values]
    for i, (addr, value) in enumerate(zip(addrs, values)):
        nxt = addrs[i + 1] if i + 1 < len(addrs) else 0
        memory.write_struct(addr, struct, {"value": value, "next": nxt})
    return ListLayout(head=addrs[0] if addrs else 0, node_addrs=addrs, values=values)


def setup_array(memory: Memory, heap: Heap, values: list[int]) -> int:
    """Allocate and fill a dense array; returns the base address."""
    base = heap.alloc(max(1, len(values)) * 8)
    for i, value in enumerate(values):
        memory.write(base + i * 8, value)
    return base


class CompiledListSumProgram(TraceProgram):
    """A workload whose trace comes from the compiler toolchain.

    Builds a shuffled-heap linked list, then runs ``list_sum`` over it
    ``iterations`` times through the interpreter — the compiled analogue
    of :class:`~repro.workloads.linked_list.ListTraversalProgram`.
    """

    name = "compiled-listsum"
    suite = "compiled"

    def __init__(self, *, num_nodes: int = 512, iterations: int = 6, seed: int = 7):
        super().__init__(seed=seed)
        self.num_nodes = num_nodes
        self.iterations = iterations
        self.expected_sum = 0

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(placement="shuffled", seed=self.seed)
        memory = Memory()
        values = [rng.randrange(1 << 16) for _ in range(self.num_nodes)]
        layout = setup_linked_list(memory, heap, values)
        self.expected_sum = sum(values)

        function = build_list_sum()
        interp = Interpreter(function, memory=memory)
        tb = TraceBuilder()
        for _ in range(self.iterations):
            result = interp.run(layout.head, trace_builder=tb)
            if result.return_value != self.expected_sum:
                raise AssertionError(
                    f"list_sum computed {result.return_value}, "
                    f"expected {self.expected_sum}"
                )
        return tb
