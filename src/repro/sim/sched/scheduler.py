"""The asyncio submit/drain scheduler over the persistent worker pool.

One dispatch loop serves every caller: ``repro serve submit`` runs a
whole :class:`~repro.sim.sched.plan.GridPlan` through
:meth:`SweepScheduler.run_plan`, and
:func:`repro.sim.parallel.parallel_compare` pushes its store-backed
grids through :func:`dispatch_sync` — the same chunked submit/drain,
the same ordering guarantees, the same pool.

Ordering contract: batches are processed **in submission order**, never
completion order.  Out-of-order results are buffered until their turn,
so progress lines, cache stores and DB commits are deterministic for a
given grid regardless of worker scheduling — which is what lets the
parity suites compare a batched run against the serial loop line for
line.  In-flight batches are capped, so a million-cell grid streams
through bounded queues instead of materialising everywhere at once.

Resume: before dispatching, :meth:`run_plan` diffs the plan's
content-addressed cell keys against the result DB and enqueues only the
remainder.  Completed cells are never re-simulated — the kill-and-
resume suite proves a resumed sweep's DB is canonically identical to an
uninterrupted one.

Wall-clock time is deliberately absent (lint rule DET003 covers this
package): throughput measurement lives in ``scripts/bench_report.py``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.sim.cache import SweepCache
from repro.sim.sched.db import ResultDB
from repro.sim.sched.plan import (
    DEFAULT_BATCH_CELLS,
    KERNEL_BATCH_CELLS,
    GridPlan,
    PlanCell,
    shard_by_workload,
)
from repro.sim.sched.pool import BatchShared, WorkerPool, shared_pool
from repro.workloads.store import TraceStore

__all__ = [
    "SchedulerError",
    "SweepScheduler",
    "SweepStats",
    "dispatch",
    "dispatch_sync",
]

ProgressFn = Callable[[str], None]

#: batches in flight per worker: 2 keeps every worker busy the moment it
#: finishes (the next batch is already queued) without ballooning queues
_INFLIGHT_PER_WORKER = 2


class SchedulerError(Exception):
    """The sweep cannot proceed (worker failure, unresolvable plan)."""


@dataclass
class SweepStats:
    """What one ``run_plan`` call did (no wall-clock; see bench)."""

    sweep: str
    total: int
    executed: int
    resumed: int
    store_degrades: int = 0

    def summary(self) -> str:
        line = (
            f"sweep {self.sweep[:12]}: {self.total} cells, "
            f"{self.executed} executed, {self.resumed} resumed"
        )
        if self.store_degrades:
            line += f", {self.store_degrades} store degrades"
        return line


async def dispatch(
    pool: WorkerPool,
    batches: Sequence[tuple[BatchShared, tuple[tuple[int, str, int], ...]]],
    on_batch: Callable[[int, list, int], None],
) -> None:
    """Chunked submit/drain of ``batches`` over ``pool``.

    ``on_batch(batch_pos, results, store_degrades)`` fires once per
    batch **in submission order**; ``results`` is the worker's ordered
    ``(index, payload, native_info)`` list.  At most
    ``_INFLIGHT_PER_WORKER × pool.jobs`` batches are in flight.
    """
    inflight_cap = max(2, _INFLIGHT_PER_WORKER * pool.jobs)
    buffered: dict[int, tuple[list, int]] = {}
    next_submit = 0
    next_finish = 0
    while next_finish < len(batches):
        while next_submit < len(batches) and (
            next_submit - next_finish
        ) < inflight_cap:
            shared, cells = batches[next_submit]
            pool.submit(next_submit, shared, cells)
            next_submit += 1
        if next_finish in buffered:
            results, degrades = buffered.pop(next_finish)
        else:
            # queue reads block; keep the event loop responsive so
            # concurrent serve callers (status/query) stay serviceable
            batch_id, results, degrades = await asyncio.to_thread(pool.drain_one)
            if batch_id != next_finish:
                buffered[batch_id] = (results, degrades)
                continue
        on_batch(next_finish, results, degrades)
        next_finish += 1


def dispatch_sync(
    pool: WorkerPool,
    batches: Sequence[tuple[BatchShared, tuple[tuple[int, str, int], ...]]],
    on_batch: Callable[[int, list, int], None],
) -> None:
    """Synchronous façade over :func:`dispatch` for non-async callers."""
    asyncio.run(dispatch(pool, batches, on_batch))


class SweepScheduler:
    """Runs grid plans over the shared pool into the result DB."""

    def __init__(
        self,
        *,
        db: ResultDB,
        store: TraceStore | None = None,
        cache: SweepCache | None = None,
        jobs: int = 1,
        native: bool = False,
        kernel_batch: bool = True,
        kernel_threads: int = 0,
    ):
        self.db = db
        self.store = store
        self.cache = cache
        self.jobs = max(1, jobs)
        self.native = native
        #: hand whole shards to the kernel's batch driver (native only);
        #: False pins the PR 9 per-cell dispatch (benchmarks, bisection)
        self.kernel_batch = kernel_batch
        #: OpenMP team size inside each worker's batch call (0 = default)
        self.kernel_threads = kernel_threads

    # ------------------------------------------------------------------

    def _fingerprints(self, plan: GridPlan) -> tuple[dict[str, str], dict[str, Any]]:
        """Resolve every plan workload to (fingerprint, trace supply).

        With a store, resolution is a header read on a warm store (the
        file compiles at most once); without one, the trace is built in
        the parent purely to fingerprint it and workers rebuild by name.
        """
        from repro.sim.parallel import _count_store_degrade, _registry_fingerprint
        from repro.workloads.store import TraceStoreError

        fingerprints: dict[str, str] = {}
        supplies: dict[str, Any] = {}
        for workload in plan.workloads:
            if workload in fingerprints:
                continue
            if self.store is not None:
                try:
                    ref, _built = self.store.ensure(workload)
                except TraceStoreError:
                    _count_store_degrade()
                else:
                    fingerprints[workload] = ref.fingerprint
                    supplies[workload] = ref
                    continue
            fingerprints[workload] = _registry_fingerprint(workload)
            supplies[workload] = None
        return fingerprints, supplies

    def _batch_message(
        self, plan: GridPlan, supplies: dict[str, Any], batch: tuple[PlanCell, ...]
    ) -> tuple[BatchShared, tuple[tuple[int, str, int], ...]]:
        workload = batch[0].workload
        ref = supplies[workload]
        # ship only the context-table slice this shard references (shards
        # are contiguous in grid order, so the referenced ids form a tight
        # range); cell tuples are rebased onto the slice.  On a config
        # sweep the full table is the bulk of every batch message, and
        # each shard touches ~1/jobs of it.
        lo = min(cell.context_id for cell in batch)
        hi = max(cell.context_id for cell in batch)
        shared = BatchShared(
            workload=workload,
            limit=plan.limit,
            native=self.native,
            hierarchy_config=plan.hierarchy_config,
            core_config=plan.core_config,
            context_table=plan.context_configs[lo : hi + 1],
            store_path=ref.path if ref is not None else None,
            store_fingerprint=ref.fingerprint if ref is not None else "",
            kernel_batch=self.kernel_batch,
            kernel_threads=self.kernel_threads,
        )
        return shared, tuple(
            (cell.index, cell.prefetcher, cell.context_id - lo) for cell in batch
        )

    # ------------------------------------------------------------------

    async def run_plan(
        self,
        plan: GridPlan,
        *,
        progress: ProgressFn | None = None,
        max_cells: int | None = None,
        on_cells: Callable[[str, int, int], None] | None = None,
    ) -> SweepStats:
        """Execute ``plan``, resuming any cells the DB already holds.

        ``max_cells`` caps how many *pending* cells this call executes
        (the deterministic stand-in for a mid-sweep kill: the DB is left
        exactly as a real interruption after that many cells would).
        Every executed cell commits with its batch, so interrupting the
        loop anywhere loses at most the in-flight batches.

        ``on_cells(sweep, done, total)`` fires once after the resume
        diff and again after every committed batch — a deterministic
        cell-count stream (this package stays clock-free; see DET003).
        ``repro serve`` timestamps it *outside* the scheduler to derive
        live throughput and ETA.
        """
        from repro.sim.parallel import _drain_store_degrades

        fingerprints, supplies = self._fingerprints(plan)
        missing = [w for w in plan.workloads if w not in fingerprints]
        if missing:
            raise SchedulerError(f"unresolvable workloads: {', '.join(missing)}")
        keys = plan.cell_keys(fingerprints)
        sweep = plan.sweep_id(keys)
        self.db.ensure_sweep(sweep, plan.spec(), plan.n_cells)

        done_keys = self.db.completed_keys(keys)
        cells = list(plan.cells())
        pending = [cell for cell in cells if keys[cell.index] not in done_keys]
        resumed = len(cells) - len(pending)
        if max_cells is not None:
            pending = pending[:max_cells]

        stats = SweepStats(
            sweep=sweep,
            total=len(cells),
            executed=len(pending),
            resumed=resumed,
            store_degrades=_drain_store_degrades(),
        )
        if progress is not None and resumed:
            progress(f"resume: {resumed}/{len(cells)} cells already in the DB")
        if on_cells is not None:
            on_cells(sweep, resumed, len(cells))
        if not pending:
            if progress is not None:
                progress(stats.summary())
            return stats

        # in-kernel batching amortises the C-call boundary across the
        # whole shard, so bigger shards help; cap them lower on the
        # per-cell path, where a shard is also the commit granule
        max_batch = (
            KERNEL_BATCH_CELLS
            if self.native and self.kernel_batch
            else DEFAULT_BATCH_CELLS
        )
        batches = [
            self._batch_message(plan, supplies, batch)
            for batch in shard_by_workload(
                pending, lambda cell: cell.workload, self.jobs, max_batch=max_batch
            )
        ]
        by_index = {cell.index: cell for cell in pending}
        finished = 0

        def on_batch(batch_pos: int, results: list, degrades: int) -> None:
            nonlocal finished
            stats.store_degrades += degrades
            rows = []
            for index, payload, _native_info in results:
                cell = by_index[index]
                rows.append(
                    (keys[index], index, cell.workload, cell.prefetcher, payload)
                )
                if self.cache is not None:
                    from repro.sim.codec import decode_result

                    self.cache.store(keys[index], decode_result(payload))
            self.db.store_cells(sweep, rows)
            finished += len(results)
            if on_cells is not None:
                on_cells(sweep, finished + resumed, len(cells))
            if progress is not None:
                workload = by_index[results[0][0]].workload if results else "?"
                progress(
                    f"[{finished + resumed}/{len(cells)}] "
                    f"batch {batch_pos + 1}/{len(batches)} ({workload}) committed"
                )

        pool = shared_pool(self.jobs)
        await dispatch(pool, batches, on_batch)
        if progress is not None:
            progress(stats.summary())
        return stats

    def run_plan_sync(
        self,
        plan: GridPlan,
        *,
        progress: ProgressFn | None = None,
        max_cells: int | None = None,
        on_cells: Callable[[str, int, int], None] | None = None,
    ) -> SweepStats:
        """:meth:`run_plan` for synchronous callers (CLI, scripts)."""
        return asyncio.run(
            self.run_plan(
                plan, progress=progress, max_cells=max_cells, on_cells=on_cells
            )
        )
