"""Simulation driver: wires traces, the hierarchy, the core model and a
prefetcher into a run, and sweeps workloads × prefetchers for the figures.
"""

from repro.sim.cache import SweepCache, cell_key, code_fingerprint, trace_fingerprint
from repro.sim.codec import CODEC_VERSION, CodecError, decode_result, encode_result
from repro.sim.config import PREFETCHER_FACTORIES, SystemConfig, make_prefetcher
from repro.sim.metrics import HitDepthCDF, SimulationResult, geomean
from repro.sim.parallel import (
    SweepJob,
    default_execution,
    parallel_compare,
    parallel_storage_sweep,
    set_default_execution,
)
from repro.sim.phases import PhasedResult, run_phased, split_phases
from repro.sim.runner import ComparisonResult, compare, run_workload, storage_sweep
from repro.sim.simulator import Simulator

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "ComparisonResult",
    "HitDepthCDF",
    "PREFETCHER_FACTORIES",
    "PhasedResult",
    "SimulationResult",
    "Simulator",
    "SweepCache",
    "SweepJob",
    "SystemConfig",
    "cell_key",
    "code_fingerprint",
    "compare",
    "decode_result",
    "default_execution",
    "encode_result",
    "geomean",
    "make_prefetcher",
    "parallel_compare",
    "parallel_storage_sweep",
    "run_phased",
    "run_workload",
    "set_default_execution",
    "split_phases",
    "storage_sweep",
    "trace_fingerprint",
]
