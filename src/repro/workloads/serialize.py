"""Trace serialization: save and load access streams as JSON lines.

Lets users capture a workload's trace once and replay it later (or feed
externally generated traces — e.g. converted from a binary-instrumentation
tool — into the simulator).  One JSON object per access; fields with
default values are omitted to keep files compact.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.hints import NO_HINTS, RefForm, SemanticHints
from repro.workloads.trace import MemoryAccess

FORMAT_VERSION = 1


def access_to_dict(access: MemoryAccess) -> dict:
    """Compact dict form of one access (defaults omitted)."""
    out: dict = {"a": access.addr, "p": access.pc}
    if not access.is_load:
        out["st"] = 1
    if access.inst_gap != 2:
        out["g"] = access.inst_gap
    if access.depends_on_prev:
        out["d"] = 1
    if access.branches:
        out["b"] = [int(t) for t in access.branches]
    if access.reg_value:
        out["r"] = access.reg_value
    if access.value:
        out["v"] = access.value
    if access.hints is not NO_HINTS and access.hints != NO_HINTS:
        out["h"] = [
            access.hints.type_id,
            access.hints.link_offset,
            int(access.hints.ref_form),
        ]
    return out


def access_from_dict(data: dict) -> MemoryAccess:
    """Inverse of :func:`access_to_dict`; validates required fields."""
    if "a" not in data or "p" not in data:
        raise ValueError(f"access record missing addr/pc: {data!r}")
    hints = NO_HINTS
    if "h" in data:
        type_id, link_offset, ref_form = data["h"]
        hints = SemanticHints(
            type_id=type_id, link_offset=link_offset, ref_form=RefForm(ref_form)
        )
    return MemoryAccess(
        addr=data["a"],
        pc=data["p"],
        is_load=not data.get("st", 0),
        inst_gap=data.get("g", 2),
        depends_on_prev=bool(data.get("d", 0)),
        branches=tuple(bool(t) for t in data.get("b", ())),
        reg_value=data.get("r", 0),
        value=data.get("v", 0),
        hints=hints,
    )


def trace_fingerprint(trace: Iterable[MemoryAccess]) -> str:
    """Stable content hash of an access stream (canonical serialized form).

    This is the fingerprint the result cache keys sweep cells on and the
    binary trace store records in its header — both must agree byte for
    byte, which is why the one implementation lives here, next to the
    canonical dict form it hashes.
    """
    digest = hashlib.sha256()
    for access in trace:
        digest.update(
            json.dumps(
                access_to_dict(access), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        )
        digest.update(b"\n")
    return digest.hexdigest()


def dump_trace(trace: Iterable[MemoryAccess], fp: TextIO) -> int:
    """Write a trace as JSONL with a header line; returns records written."""
    header = {"format": "repro-trace", "version": FORMAT_VERSION}
    fp.write(json.dumps(header) + "\n")
    count = 0
    for access in trace:
        fp.write(json.dumps(access_to_dict(access), separators=(",", ":")) + "\n")
        count += 1
    return count


def iter_trace(fp: TextIO) -> Iterator[MemoryAccess]:
    """Stream accesses back from a JSONL trace file."""
    header_line = fp.readline()
    if not header_line:
        raise ValueError("empty trace file")
    header = json.loads(header_line)
    if header.get("format") != "repro-trace":
        raise ValueError(f"not a repro trace file: {header!r}")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {header.get('version')!r}")
    for line in fp:
        line = line.strip()
        if line:
            yield access_from_dict(json.loads(line))


def save_trace(trace: Iterable[MemoryAccess], path: str | Path) -> int:
    """Write a trace file; returns the number of accesses written."""
    with open(path, "w", encoding="utf-8") as fp:
        return dump_trace(trace, fp)


def load_trace(path: str | Path) -> list[MemoryAccess]:
    """Read a trace file fully into memory."""
    with open(path, "r", encoding="utf-8") as fp:
        return list(iter_trace(fp))
