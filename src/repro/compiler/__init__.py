"""The compiler substrate: a mini-IR with the paper's hint-injection pass.

Section 6 of the paper modifies LLVM to (a) identify pointer-based memory
accesses to objects, (b) enumerate object types, (c) identify pointer
data members, and (d) inject the resulting semantic hints as extended-NOP
immediates — but only for "operations that write new values to addresses
that are represented as pointers at the program level".

This package reproduces that toolchain at model scale:

* :mod:`repro.compiler.ir` — a small typed IR (structs, loads/stores,
  arithmetic, compare-and-branch) with a builder API;
* :mod:`repro.compiler.hintpass` — the hint-injection pass implementing
  the paper's rule over the IR's type information;
* :mod:`repro.compiler.interp` — an interpreter that executes IR programs
  against the workload heap, emitting simulator traces with the injected
  hints, dependence edges and branch outcomes attached;
* :mod:`repro.compiler.programs` — ready-made IR programs (linked-list
  sum, array sum, list search) demonstrating the flow end to end.
"""

from repro.compiler.hintpass import HintInjectionPass, HintTable
from repro.compiler.interp import ExecutionResult, Interpreter
from repro.compiler.ir import (
    Arith,
    BranchIf,
    Function,
    FunctionBuilder,
    Jump,
    Load,
    LoadIdx,
    Ret,
    Store,
    StructDecl,
)

__all__ = [
    "Arith",
    "BranchIf",
    "ExecutionResult",
    "Function",
    "FunctionBuilder",
    "HintInjectionPass",
    "HintTable",
    "Interpreter",
    "Jump",
    "Load",
    "LoadIdx",
    "Ret",
    "Store",
    "StructDecl",
]
