"""Tests for the prefetcher interface layer and the no-op baseline."""

from repro.hints import NO_HINTS, RefForm, SemanticHints
from repro.prefetchers.base import AccessInfo, DegreeCounter, PrefetchRequest
from repro.prefetchers.nopf import NoPrefetcher


class TestNoPrefetcher:
    def test_never_prefetches(self):
        pf = NoPrefetcher()
        info = AccessInfo(index=0, cycle=0, addr=0x1000, pc=0x400000)
        assert pf.on_access(info) == []

    def test_zero_storage(self):
        assert NoPrefetcher().storage_bits() == 0
        assert NoPrefetcher().storage_kib() == 0.0

    def test_name(self):
        assert NoPrefetcher().name == "none"


class TestAccessInfo:
    def test_defaults(self):
        info = AccessInfo(index=0, cycle=0, addr=0x1000, pc=0x400000)
        assert info.is_load
        assert not info.l1_hit
        assert not info.primary_miss
        assert info.hints is NO_HINTS

    def test_frozen(self):
        info = AccessInfo(index=0, cycle=0, addr=0x1000, pc=0x400000)
        try:
            info.addr = 5
        except AttributeError:
            pass
        else:
            raise AssertionError("AccessInfo should be immutable")


class TestSemanticHints:
    def test_packed_round_trip_fields(self):
        hints = SemanticHints(type_id=7, link_offset=16, ref_form=RefForm.ARROW)
        packed = hints.packed()
        assert packed & 0xFFFF == 7
        assert (packed >> 16) & 0xFFF == 16
        assert (packed >> 28) & 0xF == int(RefForm.ARROW)

    def test_hints_hashable_and_comparable(self):
        a = SemanticHints(type_id=1, link_offset=8, ref_form=RefForm.DOT)
        b = SemanticHints(type_id=1, link_offset=8, ref_form=RefForm.DOT)
        assert a == b
        assert hash(a) == hash(b)


class TestDegreeCounter:
    def test_take_until_exhausted(self):
        counter = DegreeCounter(degree=2)
        assert counter.take()
        assert counter.take()
        assert not counter.take()

    def test_reset_restores(self):
        counter = DegreeCounter(degree=1)
        counter.take()
        counter.reset()
        assert counter.take()


class TestPrefetchRequest:
    def test_defaults(self):
        req = PrefetchRequest(addr=0x1000)
        assert not req.shadow
        assert req.meta is None
