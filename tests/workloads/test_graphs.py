"""Tests for graph substrates, generators and graph algorithms."""

import networkx as nx
import pytest

from repro.workloads.graphs import (
    CSRGraph,
    LinkedGraph,
    bfs_order,
    grid_edges,
    random_edges,
    rmat_edges,
)
from repro.workloads.prim import PrimProgram, prim_mst_weight
from repro.workloads.ssca2 import betweenness_reference
from repro.workloads.trace import Heap


class TestGenerators:
    def test_rmat_vertex_range(self):
        edges = rmat_edges(scale=6, edge_factor=4, seed=1)
        assert all(0 <= u < 64 and 0 <= v < 64 for u, v in edges)

    def test_rmat_no_self_loops(self):
        assert all(u != v for u, v in rmat_edges(scale=6, seed=1))

    def test_rmat_is_skewed(self):
        # RMAT concentrates edges on low-numbered vertices
        edges = rmat_edges(scale=8, edge_factor=8, seed=1)
        degree = {}
        for u, _ in edges:
            degree[u] = degree.get(u, 0) + 1
        top = sorted(degree.values(), reverse=True)
        assert top[0] > 4 * (len(edges) / 256)

    def test_rmat_deterministic(self):
        assert rmat_edges(6, seed=5) == rmat_edges(6, seed=5)

    def test_random_edges_count_and_range(self):
        edges = random_edges(50, 200, seed=2)
        assert len(edges) == 200
        assert all(u != v for u, v in edges)

    def test_grid_edges_structure(self):
        edges = grid_edges(3)
        assert len(edges) == 12  # 2*3*(3-1)
        assert (0, 1) in edges and (0, 3) in edges

    def test_rmat_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            rmat_edges(0)


class TestLayoutEquivalence:
    def test_linked_and_csr_expose_same_neighbors(self):
        edges = rmat_edges(scale=6, edge_factor=4, seed=3)
        linked = LinkedGraph(64, edges, Heap(seed=1))
        csr = CSRGraph(64, edges, Heap(seed=2))
        for v in range(64):
            assert sorted(linked.neighbors(v)) == sorted(csr.neighbors(v))

    def test_edge_counts_agree(self):
        edges = rmat_edges(scale=6, edge_factor=4, seed=3)
        linked = LinkedGraph(64, edges, Heap(seed=1))
        csr = CSRGraph(64, edges, Heap(seed=2))
        assert linked.num_edges == csr.num_edges == len(edges)

    def test_csr_row_offsets_monotonic(self):
        csr = CSRGraph(64, rmat_edges(6, seed=3), Heap())
        offsets = csr.row_offsets
        assert offsets == sorted(offsets)
        assert offsets[-1] == csr.num_edges

    def test_csr_addresses_disjoint(self):
        csr = CSRGraph(64, rmat_edges(6, seed=3), Heap())
        bases = [csr.row_base, csr.col_base, csr.weight_base, csr.visited_base]
        assert len(set(bases)) == 4


class TestBFSOrder:
    def test_visits_reachable_component_once(self):
        edges = [(0, 1), (1, 2), (0, 2), (3, 4)]
        linked = LinkedGraph(5, edges, Heap())
        order = bfs_order(linked.neighbors, 5, root=0)
        assert sorted(order) == [0, 1, 2]
        assert len(order) == len(set(order))

    def test_level_order(self):
        edges = [(0, 1), (0, 2), (1, 3), (2, 4)]
        linked = LinkedGraph(5, edges, Heap())
        order = bfs_order(linked.neighbors, 5, root=0)
        assert order[0] == 0
        assert set(order[1:3]) == {1, 2}
        assert set(order[3:]) == {3, 4}

    def test_matches_networkx(self):
        edges = random_edges(40, 150, seed=4)
        linked = LinkedGraph(40, edges, Heap())
        ours = set(bfs_order(linked.neighbors, 40, root=0))
        g = nx.DiGraph(edges)
        g.add_nodes_from(range(40))
        theirs = set(nx.descendants(g, 0)) | {0}
        assert ours == theirs


class TestPrimReference:
    def test_known_small_graph(self):
        heap = Heap()
        graph = LinkedGraph(3, [], heap)
        graph.add_edge(0, 1, weight=5)
        graph.add_edge(1, 0, weight=5)
        graph.add_edge(1, 2, weight=2)
        graph.add_edge(2, 1, weight=2)
        graph.add_edge(0, 2, weight=9)
        graph.add_edge(2, 0, weight=9)
        assert prim_mst_weight(graph) == 7

    def test_matches_networkx_on_undirected_graph(self):
        import random as _random

        rng = _random.Random(8)
        heap = Heap()
        graph = LinkedGraph(20, [], heap)
        g = nx.Graph()
        g.add_nodes_from(range(20))
        # connected ring + chords, symmetric weights
        pairs = [(i, (i + 1) % 20) for i in range(20)]
        pairs += [(rng.randrange(20), rng.randrange(20)) for _ in range(30)]
        for u, v in pairs:
            if u == v or g.has_edge(u, v):
                continue
            w = rng.randrange(1, 50)
            g.add_edge(u, v, weight=w)
            graph.add_edge(u, v, weight=w)
            graph.add_edge(v, u, weight=w)
        expected = sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True))
        assert prim_mst_weight(graph) == expected

    def test_prim_trace_builds(self):
        prog = PrimProgram(num_vertices=24, num_edges=80)
        assert len(prog.trace()) > 0


class TestBetweennessReference:
    def test_matches_networkx_directed(self):
        # deduplicate: nx.DiGraph collapses parallel edges, LinkedGraph
        # keeps them, and shortest-path counts differ on multigraphs
        edges = sorted(set(random_edges(25, 120, seed=6)))
        g = nx.DiGraph()
        g.add_nodes_from(range(25))
        g.add_edges_from(edges)
        expected = nx.betweenness_centrality(g, normalized=False)
        linked = LinkedGraph(25, edges, Heap())
        ours = betweenness_reference(linked.neighbors, 25, sources=list(range(25)))
        for v in range(25):
            assert ours[v] == pytest.approx(expected[v], abs=1e-9)

    def test_star_graph_center_has_zero_betweenness_from_leaves(self):
        # directed star (center -> leaves): no vertex lies between others
        edges = [(0, i) for i in range(1, 6)]
        linked = LinkedGraph(6, edges, Heap())
        bc = betweenness_reference(linked.neighbors, 6, sources=list(range(6)))
        assert all(v == 0 for v in bc)

    def test_path_graph_middle_maximal(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        linked = LinkedGraph(4, edges, Heap())
        bc = betweenness_reference(linked.neighbors, 4, sources=[0, 1, 2, 3])
        assert bc[1] > 0 and bc[2] > 0
        assert bc[0] == bc[3] == 0
