"""Unit tests for the static-analysis rule families.

Each family is exercised against known-good and known-bad snippets laid
out as a miniature package under ``tmp_path``; the live-tree test lives
in ``test_live_tree.py``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze, load_project
from repro.analysis.registry import all_rules
from repro.analysis.rules.budget import HardwareBudgetRule
from repro.analysis.rules.contracts import PrefetcherContractRule
from repro.analysis.rules.determinism import (
    FloatEqualityRule,
    GlobalRandomRule,
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.experiments import ExperimentHygieneRule


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


def run_rules(root: Path, rules, manifest: dict | None = None) -> list:
    project = load_project(root, manifest=manifest or {})
    return analyze(project=project, rules=rules)


def rule_ids(findings) -> list[str]:
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# determinism (DET*)


class TestGlobalRandomRule:
    def test_flags_global_rng_calls(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                import random
                def pick(items):
                    random.shuffle(items)
                    return random.choice(items) if random.random() < 0.5 else None
                """
            },
        )
        findings = run_rules(tmp_path, [GlobalRandomRule()])
        assert rule_ids(findings) == ["DET001", "DET001", "DET001"]
        assert all(f.path == "core/x.py" for f in findings)

    def test_seeded_instance_calls_are_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "workloads/x.py": """
                import random
                def pick(items, seed):
                    rng = random.Random(seed)
                    return rng.choice(items)
                """
            },
        )
        assert run_rules(tmp_path, [GlobalRandomRule()]) == []

    def test_attribute_named_random_is_not_flagged(self, tmp_path):
        # spec_proxy-style: a dataclass field called `random`
        write_tree(
            tmp_path,
            {
                "workloads/x.py": """
                def mix(profile):
                    return profile.random() + profile.random
                """
            },
        )
        assert run_rules(tmp_path, [GlobalRandomRule()]) == []


class TestUnseededRandomRule:
    def test_flags_unseeded_random(self, tmp_path):
        write_tree(
            tmp_path,
            {"workloads/x.py": "import random\nrng = random.Random()\n"},
        )
        assert rule_ids(run_rules(tmp_path, [UnseededRandomRule()])) == ["DET002"]

    def test_flags_system_random(self, tmp_path):
        write_tree(
            tmp_path,
            {"workloads/x.py": "import random\nrng = random.SystemRandom()\n"},
        )
        assert rule_ids(run_rules(tmp_path, [UnseededRandomRule()])) == ["DET002"]

    def test_literal_seed_in_core_is_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {"core/x.py": "import random\nrng = random.Random(1234)\n"},
        )
        findings = run_rules(tmp_path, [UnseededRandomRule()])
        assert rule_ids(findings) == ["DET002"]
        assert "config" in findings[0].message

    def test_literal_seed_in_workloads_is_fine(self, tmp_path):
        # workload dataclasses carry their own seed defaults
        write_tree(
            tmp_path,
            {"workloads/x.py": "import random\nrng = random.Random(1234)\n"},
        )
        assert run_rules(tmp_path, [UnseededRandomRule()]) == []

    def test_config_seed_in_core_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {"core/x.py": "import random\ndef f(cfg):\n    return random.Random(cfg.seed)\n"},
        )
        assert run_rules(tmp_path, [UnseededRandomRule()]) == []


class TestWallClockRule:
    def test_flags_time_and_datetime(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "sim/x.py": """
                import time
                import datetime
                def stamp():
                    return time.time(), time.perf_counter(), datetime.datetime.now()
                """
            },
        )
        findings = run_rules(tmp_path, [WallClockRule()])
        assert rule_ids(findings) == ["DET003", "DET003", "DET003"]

    def test_simulated_time_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {"sim/x.py": "def tick(core):\n    return core.time + 1\n"},
        )
        assert run_rules(tmp_path, [WallClockRule()]) == []


class TestSetIterationRule:
    def test_flags_for_and_comprehension_and_list(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "memory/x.py": """
                def f(a, b):
                    for item in {1, 2, 3}:
                        print(item)
                    out = [v for v in set(a)]
                    return list(set(a) | set(b)), out
                """
            },
        )
        findings = run_rules(tmp_path, [SetIterationRule()])
        assert rule_ids(findings) == ["DET004", "DET004", "DET004"]

    def test_sorted_set_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "memory/x.py": """
                def f(a):
                    for item in sorted(set(a)):
                        print(item)
                    return item in set(a)
                """
            },
        )
        assert run_rules(tmp_path, [SetIterationRule()]) == []

    def test_outside_strict_dirs_not_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {"experiments/x.py": "def f(a):\n    return [v for v in set(a)]\n"},
        )
        assert run_rules(tmp_path, [SetIterationRule()]) == []


class TestFloatEqualityRule:
    def test_flags_float_literal_equality(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                def f(x, y):
                    return x == 0.5 or y != -1.0
                """
            },
        )
        findings = run_rules(tmp_path, [FloatEqualityRule()])
        assert rule_ids(findings) == ["DET005"]

    def test_ordering_and_int_equality_are_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/x.py": """
                def f(x, y):
                    return x >= 0.5 and y == 1 and x <= 1.0
                """
            },
        )
        assert run_rules(tmp_path, [FloatEqualityRule()]) == []


# ----------------------------------------------------------------------
# hardware budget (BUD*)

GOOD_CONFIG = """
from dataclasses import dataclass

@dataclass
class ContextPrefetcherConfig:
    cst_entries: int = 16
    cst_links: int = 2
    cst_tag_bits: int = 4
    reducer_entries: int = 32
    reducer_tag_bits: int = 2
    full_hash_bits: int = 9
    reduced_hash_bits: int = 8
    history_entries: int = 4
    prefetch_queue_entries: int = 8
    delta_bits: int = 8
"""

GOOD_CST = """
from dataclasses import dataclass

@dataclass
class Candidate:
    delta: int
    score: int
"""

MINI_MANIFEST = {
    "config_defaults": {
        "cst_entries": 16,
        "cst_links": 2,
        "cst_tag_bits": 4,
        "reducer_entries": 32,
        "reducer_tag_bits": 2,
        "full_hash_bits": 9,
        "reduced_hash_bits": 8,
        "history_entries": 4,
        "prefetch_queue_entries": 8,
        "delta_bits": 8,
    },
    "derived": {
        "score_bits": 8,
        "reducer_payload_bits": 8,
        "queue_extra_bits": 56,
        "reducer_index_bits": 5,
        "cst_index_bits": 4,
        "cst_entry_bits": 36,
        # 16*36 + 32*10 + 4*8 + 8*64 = 1440
        "expected_total_bits": 1440,
        "max_total_bits": 2048,
    },
    "structure": {"core/cst.py": {"Candidate": ["delta", "score"]}},
}


class TestHardwareBudgetRule:
    def build(self, tmp_path, config=GOOD_CONFIG, cst=GOOD_CST):
        return write_tree(
            tmp_path, {"core/config.py": config, "core/cst.py": cst}
        )

    def test_clean_tree(self, tmp_path):
        root = self.build(tmp_path)
        assert run_rules(root, [HardwareBudgetRule()], MINI_MANIFEST) == []

    def test_entry_count_drift_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path,
            config=GOOD_CONFIG.replace(
                "cst_entries: int = 16", "cst_entries: int = 64"
            ),
        )
        findings = run_rules(root, [HardwareBudgetRule()], MINI_MANIFEST)
        codes = set(rule_ids(findings))
        assert "BUD001" in codes  # the default itself
        assert "BUD003" in codes  # derived geometry + budget cap

    def test_field_width_drift_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path,
            config=GOOD_CONFIG.replace(
                "delta_bits: int = 8", "delta_bits: int = 16"
            ),
        )
        findings = run_rules(root, [HardwareBudgetRule()], MINI_MANIFEST)
        assert "BUD001" in rule_ids(findings)

    def test_non_literal_default_is_unauditable(self, tmp_path):
        root = self.build(
            tmp_path,
            config=GOOD_CONFIG.replace(
                "cst_entries: int = 16", "cst_entries: int = 1 << 4"
            ),
        )
        findings = run_rules(root, [HardwareBudgetRule()], MINI_MANIFEST)
        assert rule_ids(findings) == ["BUD002"]

    def test_lost_structure_field_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path, cst=GOOD_CST.replace("    score: int\n", "")
        )
        findings = run_rules(root, [HardwareBudgetRule()], MINI_MANIFEST)
        assert rule_ids(findings) == ["BUD004"]

    def test_missing_manifest_is_an_error(self, tmp_path):
        root = self.build(tmp_path)
        findings = run_rules(root, [HardwareBudgetRule()], manifest={})
        assert rule_ids(findings) == ["BUD002"]


# ----------------------------------------------------------------------
# prefetcher contract (CON*)

BASE_MODULE = """
import abc

class Prefetcher(abc.ABC):
    name = "base"

    @abc.abstractmethod
    def on_access(self, access):
        ...

    def on_prefetch_issue(self, request, issued, reason):
        ...

    def accuracy(self):
        return 0.0
"""

GOOD_IMPL = """
from repro.prefetchers.base import Prefetcher

class GoodPrefetcher(Prefetcher):
    name = "good"

    def on_access(self, access):
        return []
"""

FACTORY = """
PREFETCHER_FACTORIES = {
    "good": GoodPrefetcher,
}
"""


class TestPrefetcherContractRule:
    def build(self, tmp_path, impl=GOOD_IMPL, factory=FACTORY):
        return write_tree(
            tmp_path,
            {
                "prefetchers/base.py": BASE_MODULE,
                "prefetchers/good.py": impl,
                "sim/config.py": factory,
            },
        )

    def test_clean_tree(self, tmp_path):
        root = self.build(tmp_path)
        assert run_rules(root, [PrefetcherContractRule()]) == []

    def test_not_subclassing_base_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path, impl=GOOD_IMPL.replace("(Prefetcher)", "")
        )
        findings = run_rules(root, [PrefetcherContractRule()])
        assert "CON001" in rule_ids(findings)

    def test_incompatible_signature_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path,
            impl=GOOD_IMPL.replace(
                "def on_access(self, access):",
                "def on_access(self, access, extra):",
            ),
        )
        findings = run_rules(root, [PrefetcherContractRule()])
        assert rule_ids(findings) == ["CON002"]

    def test_missing_on_access_is_flagged(self, tmp_path):
        impl = """
        from repro.prefetchers.base import Prefetcher

        class GoodPrefetcher(Prefetcher):
            name = "good"
        """
        root = self.build(tmp_path, impl=textwrap.dedent(impl))
        findings = run_rules(root, [PrefetcherContractRule()])
        assert "CON002" in rule_ids(findings)

    def test_unregistered_prefetcher_is_flagged(self, tmp_path):
        root = self.build(tmp_path, factory="PREFETCHER_FACTORIES = {}\n")
        findings = run_rules(root, [PrefetcherContractRule()])
        assert rule_ids(findings) == ["CON003"]

    def test_registration_through_lambda_is_seen(self, tmp_path):
        root = self.build(
            tmp_path,
            factory=(
                "PREFETCHER_FACTORIES = {\n"
                '    "good": lambda: GoodPrefetcher(),\n'
                "}\n"
            ),
        )
        assert run_rules(root, [PrefetcherContractRule()]) == []

    def test_missing_name_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path, impl=GOOD_IMPL.replace('    name = "good"\n', "")
        )
        findings = run_rules(root, [PrefetcherContractRule()])
        assert rule_ids(findings) == ["CON004"]

    def test_name_set_in_init_is_fine(self, tmp_path):
        impl = GOOD_IMPL.replace(
            '    name = "good"\n',
            '    def __init__(self):\n        self.name = "good"\n',
        )
        root = self.build(tmp_path, impl=impl)
        assert run_rules(root, [PrefetcherContractRule()]) == []

    def test_base_without_accuracy_is_flagged(self, tmp_path):
        root = self.build(tmp_path)
        base = (tmp_path / "prefetchers/base.py").read_text()
        (tmp_path / "prefetchers/base.py").write_text(
            base.replace("    def accuracy(self):\n        return 0.0\n", "")
        )
        findings = run_rules(root, [PrefetcherContractRule()])
        assert "CON005" in rule_ids(findings)

    def test_accuracy_signature_drift_is_flagged(self, tmp_path):
        impl = GOOD_IMPL.rstrip() + (
            "\n\n    def accuracy(self, window):\n        return 0.0\n"
        )
        root = self.build(tmp_path, impl=impl)
        findings = run_rules(root, [PrefetcherContractRule()])
        assert "CON002" in rule_ids(findings)


# ----------------------------------------------------------------------
# experiment hygiene (EXP*)

GOOD_FIGURE = """
def run(scale: str = "small"):
    return {"scale": scale}

def render(result) -> str:
    return str(result)
"""

GOOD_CLI = """
from repro.experiments import fig99_demo

_FIGURES = {
    "99": (fig99_demo, True),
}
"""


class TestExperimentHygieneRule:
    def build(self, tmp_path, figure=GOOD_FIGURE, cli=GOOD_CLI):
        return write_tree(
            tmp_path,
            {"experiments/fig99_demo.py": figure, "cli.py": cli},
        )

    def test_clean_tree(self, tmp_path):
        root = self.build(tmp_path)
        assert run_rules(root, [ExperimentHygieneRule()]) == []

    def test_missing_run_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path, figure=GOOD_FIGURE.replace("def run", "def build")
        )
        findings = run_rules(root, [ExperimentHygieneRule()])
        assert "EXP001" in rule_ids(findings)

    def test_missing_render_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path, figure=GOOD_FIGURE.replace("def render", "def show")
        )
        findings = run_rules(root, [ExperimentHygieneRule()])
        assert "EXP002" in rule_ids(findings)

    def test_run_with_extra_required_args_is_flagged(self, tmp_path):
        root = self.build(
            tmp_path,
            figure=GOOD_FIGURE.replace(
                'def run(scale: str = "small"):', "def run(scale, extra):"
            ),
        )
        findings = run_rules(root, [ExperimentHygieneRule()])
        assert rule_ids(findings) == ["EXP003"]

    def test_unwired_figure_is_flagged(self, tmp_path):
        root = self.build(tmp_path, cli="_FIGURES = {}\n")
        findings = run_rules(root, [ExperimentHygieneRule()])
        assert rule_ids(findings) == ["EXP004"]

    def test_non_figure_modules_are_ignored(self, tmp_path):
        root = write_tree(
            tmp_path,
            {"experiments/tables.py": "def main():\n    pass\n", "cli.py": "_FIGURES = {}\n"},
        )
        assert run_rules(root, [ExperimentHygieneRule()]) == []


# ----------------------------------------------------------------------
# framework behaviour


class TestFramework:
    def test_parse_error_is_reported_not_fatal(self, tmp_path):
        root = write_tree(tmp_path, {"core/broken.py": "def f(:\n"})
        findings = run_rules(root, [GlobalRandomRule()])
        assert rule_ids(findings) == ["PARSE"]

    def test_catalogue_has_all_families(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert {"DET001", "DET002", "DET003", "DET004", "DET005"} <= ids
        assert {"BUD", "CON", "EXP"} <= ids

    def test_findings_are_deterministically_ordered(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/b.py": "import random\nx = random.random()\n",
                "core/a.py": "import random\ny = random.random()\nz = random.random()\n",
            },
        )
        findings = run_rules(tmp_path, [GlobalRandomRule()])
        assert [(f.path, f.line) for f in findings] == [
            ("core/a.py", 2),
            ("core/a.py", 3),
            ("core/b.py", 2),
        ]


# ----------------------------------------------------------------------
# hot-path performance (PERF*)


class TestSlotsRule:
    def _run(self, tmp_path, files):
        from repro.analysis.rules.perf import SlotsRule

        write_tree(tmp_path, files)
        return run_rules(tmp_path, [SlotsRule()])

    def test_plain_class_is_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            {
                "core/x.py": """
                class HotRecord:
                    def __init__(self):
                        self.a = 1
                """
            },
        )
        assert rule_ids(findings) == ["PERF001"]

    def test_slotted_layouts_pass(self, tmp_path):
        findings = self._run(
            tmp_path,
            {
                "memory/x.py": """
                from dataclasses import dataclass
                from enum import Enum
                from typing import NamedTuple

                class Slotted:
                    __slots__ = ("a",)

                @dataclass(slots=True)
                class SlottedData:
                    a: int = 0

                class Record(NamedTuple):
                    a: int

                class Kind(Enum):
                    A = "a"

                class BadConfigError(ValueError):
                    pass
                """
            },
        )
        assert findings == []

    def test_dataclass_without_slots_is_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            {
                "prefetchers/x.py": """
                from dataclasses import dataclass

                @dataclass
                class HotEntry:
                    a: int = 0
                """
            },
        )
        assert rule_ids(findings) == ["PERF001"]

    def test_outside_hot_dirs_is_ignored(self, tmp_path):
        findings = self._run(
            tmp_path,
            {
                "workloads/x.py": """
                class Builder:
                    def __init__(self):
                        self.a = 1
                """
            },
        )
        assert findings == []

    def test_allowlist_suppresses(self, tmp_path):
        from repro.analysis.rules.perf import SlotsRule

        write_tree(
            tmp_path,
            {
                "core/reward.py": """
                class RewardFunction:
                    def __init__(self):
                        self.peak = 8
                """
            },
        )
        assert run_rules(tmp_path, [SlotsRule()]) == []

class TestRecordLayoutRule:
    """PERF002: the trace-store record layout is pinned per version."""

    def _rule(self):
        from repro.analysis.rules.perf import RecordLayoutRule

        return RecordLayoutRule()

    def _store_source(self, version: int, fields: str) -> str:
        return f"STORE_VERSION = {version}\nRECORD_FIELDS = {fields}\n"

    def test_live_layout_matches_pin(self):
        # the real module must always satisfy its own pin — this is the
        # test that fires when someone edits RECORD_FIELDS in place
        from repro.analysis.rules.perf import PINNED_RECORD_LAYOUTS
        from repro.workloads.store import STORE_VERSION, record_layout_hash

        assert PINNED_RECORD_LAYOUTS[STORE_VERSION] == record_layout_hash()

    def test_current_layout_passes(self, tmp_path):
        from repro.workloads.store import RECORD_FIELDS, STORE_VERSION

        write_tree(
            tmp_path,
            {
                "workloads/store.py": self._store_source(
                    STORE_VERSION, repr(RECORD_FIELDS)
                )
            },
        )
        assert run_rules(tmp_path, [self._rule()]) == []

    def test_layout_drift_without_bump_is_flagged(self, tmp_path):
        from repro.workloads.store import RECORD_FIELDS, STORE_VERSION

        drifted = RECORD_FIELDS + (("extra", "B"),)
        write_tree(
            tmp_path,
            {
                "workloads/store.py": self._store_source(
                    STORE_VERSION, repr(drifted)
                )
            },
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF002"]
        assert "bump STORE_VERSION" in findings[0].message

    def test_new_version_requires_a_pin(self, tmp_path):
        from repro.workloads.store import RECORD_FIELDS

        write_tree(
            tmp_path,
            {"workloads/store.py": self._store_source(999, repr(RECORD_FIELDS))},
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF002"]
        assert "no pinned record layout" in findings[0].message

    def test_missing_module_is_flagged(self, tmp_path):
        write_tree(tmp_path, {"core/x.py": "pass\n"})
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF002"]

    def test_non_literal_layout_is_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "workloads/store.py": (
                    "STORE_VERSION = 1\n"
                    "RECORD_FIELDS = tuple(make_fields())\n"
                )
            },
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF002"]
        assert "statically auditable" in findings[0].message

    def test_non_int_version_is_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {"workloads/store.py": 'STORE_VERSION = "one"\nRECORD_FIELDS = ()\n'},
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF002"]
        assert "integer literal" in findings[0].message


class TestVectorPhaseContractRule:
    """PERF003: vectorized phases keep their scalar-fallback twins."""

    def _rule(self):
        from repro.analysis.rules.perf import VectorPhaseContractRule

        return VectorPhaseContractRule()

    def _good_tree(self) -> dict[str, str]:
        # miniature native package: one phase whose native side is a
        # top-level function and whose fallback is a one-level method
        return {
            "sim/native/__init__.py": """
            VECTOR_PHASES = (
                (
                    "kernel",
                    "repro.sim.native.adapter:phase_kernel",
                    "repro.sim.simulator:Simulator.run",
                ),
            )
            """,
            "sim/native/adapter.py": """
            def phase_kernel(sim, cols):
                return cols
            """,
            "sim/simulator.py": """
            class Simulator:
                def run(self, trace):
                    return trace
            """,
        }

    def test_live_contract_resolves(self):
        # the real tree must satisfy its own phase table — this is the
        # test that fires when someone renames a phase function in place
        from repro.analysis.rules.perf import _module_rel
        from repro.sim.native import VECTOR_PHASES

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        for _phase, native_impl, fallback in VECTOR_PHASES:
            for ref in (native_impl, fallback):
                module, _, qualname = ref.partition(":")
                assert (src / _module_rel(module)).exists(), ref

    def test_paired_phases_pass(self, tmp_path):
        write_tree(tmp_path, self._good_tree())
        assert run_rules(tmp_path, [self._rule()]) == []

    def test_deleted_fallback_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/simulator.py"] = """
        class Simulator:
            def run_batches(self, trace):
                return trace
        """
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF003"]
        assert "scalar" in findings[0].message

    def test_deleted_native_impl_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/native/adapter.py"] = "def other():\n    pass\n"
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF003"]
        assert "phase_kernel" in findings[0].message

    def test_missing_module_is_flagged(self, tmp_path):
        files = self._good_tree()
        del files["sim/native/adapter.py"]
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF003"]
        assert "does not exist" in findings[0].message

    def test_missing_contract_module_is_flagged(self, tmp_path):
        write_tree(tmp_path, {"core/x.py": "pass\n"})
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF003"]
        assert "VECTOR_PHASES" in findings[0].message

    def test_non_literal_table_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/native/__init__.py"] = (
            "VECTOR_PHASES = tuple(build_phases())\n"
        )
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF003"]
        assert "statically auditable" in findings[0].message

    def test_malformed_row_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/native/__init__.py"] = (
            'VECTOR_PHASES = (("kernel", "only-one-side"),)\n'
        )
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF003"]
        assert "malformed" in findings[0].message

    def test_bad_reference_shape_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/native/__init__.py"] = """
        VECTOR_PHASES = (
            (
                "kernel",
                "no-colon-here",
                "repro.sim.simulator:Simulator.run",
            ),
        )
        """
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF003"]
        assert "module:qualname" in findings[0].message


class TestBatchDispatchLayoutRule:
    """PERF004: the warm-pool batch-dispatch layout is pinned."""

    def _rule(self):
        from repro.analysis.rules.perf import BatchDispatchLayoutRule

        return BatchDispatchLayoutRule()

    def _good_tree(self) -> dict[str, str]:
        # miniature dispatch stack: the pinned wire shape, puts only in
        # the reviewed pool entry points, submits only in the reviewed
        # dispatch loop and legacy parallel_compare
        return {
            "sim/sched/pool.py": """
            CELL_FIELDS = ("index", "prefetcher", "context_id")

            def _worker_main(task_q, result_q):
                result_q.put(("done", 0, [], 0))

            class WorkerPool:
                def submit(self, batch_id, shared, cells):
                    self._task_q.put((batch_id, shared, cells))

                def close(self):
                    self._task_q.put(None)
            """,
            "sim/sched/scheduler.py": """
            async def dispatch(pool, batches, on_batch):
                for i, (shared, cells) in enumerate(batches):
                    pool.submit(i, shared, cells)
            """,
            "sim/parallel.py": """
            def parallel_compare(workloads, prefetchers):
                with executor() as pool:
                    futures = [pool.submit(run, job) for job in jobs()]
                return futures
            """,
        }

    def test_pinned_layout_passes(self, tmp_path):
        write_tree(tmp_path, self._good_tree())
        assert run_rules(tmp_path, [self._rule()]) == []

    def test_live_pin_matches_pool(self):
        from repro.analysis.rules.perf import PINNED_CELL_FIELDS
        from repro.sim.sched.pool import CELL_FIELDS

        assert CELL_FIELDS == PINNED_CELL_FIELDS

    def test_missing_pool_module_is_flagged(self, tmp_path):
        write_tree(tmp_path, {"core/x.py": "pass\n"})
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF004"]
        assert "pool.py is missing" in findings[0].message

    def test_grown_cell_tuple_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/sched/pool.py"] = files["sim/sched/pool.py"].replace(
            '"context_id")', '"context_id", "config")'
        )
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF004"]
        assert "reviewed decision" in findings[0].message

    def test_non_literal_fields_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/sched/pool.py"] = (
            "CELL_FIELDS = tuple(make_fields())\n"
        )
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert "PERF004" in rule_ids(findings)
        assert "statically auditable" in findings[0].message

    def test_sweepjob_in_sched_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/sched/scheduler.py"] = """
        from repro.sim.parallel import SweepJob

        async def dispatch(pool, batches, on_batch):
            for i, batch in enumerate(batches):
                pool.submit(i, [SweepJob(c) for c in batch], ())
        """
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert set(rule_ids(findings)) == {"PERF004"}
        assert any("SweepJob" in f.message for f in findings)

    def test_executor_in_sched_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/sched/scheduler.py"] = """
        from concurrent.futures import ProcessPoolExecutor

        async def dispatch(pool, batches, on_batch):
            pass
        """
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert set(rule_ids(findings)) == {"PERF004"}
        assert any("concurrent.futures" in f.message for f in findings)

    def test_unreviewed_queue_put_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/sched/scheduler.py"] += """

            def side_channel(q, cell):
                q.put_nowait(cell)
            """
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF004"]
        assert "QUEUE_PUT_ALLOWLIST" in findings[0].message

    def test_unreviewed_submit_in_sched_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/sched/scheduler.py"] += """

            def rogue(pool, cells):
                return [pool.submit(run, c) for c in cells]
            """
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF004"]
        assert "SUBMIT_ALLOWLIST" in findings[0].message

    def test_unreviewed_submit_in_parallel_is_flagged(self, tmp_path):
        files = self._good_tree()
        files["sim/parallel.py"] += """

            def per_cell_dispatch(pool, cells):
                return [pool.submit(run, c) for c in cells]
            """
        write_tree(tmp_path, files)
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF004"]
        assert "per-cell futures" in findings[0].message


class TestBatchKernelLayoutRule:
    """PERF005: the in-kernel batch driver is pinned and state-free."""

    def _rule(self):
        from repro.analysis.rules.perf import BatchKernelLayoutRule

        return BatchKernelLayoutRule()

    def _csrc_source(self, version, cdef, body) -> str:
        return (
            f"BATCH_VERSION = {version}\n"
            f"CDEF_BATCH = {cdef!r}\n"
            f"SOURCE_BATCH = {body!r}\n"
        )

    def test_live_layout_matches_pin(self):
        # the real module must always satisfy its own pin — this fires
        # when someone edits the batch C source in place
        from repro.analysis.rules.perf import (
            PINNED_BATCH_LAYOUTS,
            batch_layout_hash,
        )
        from repro.sim.native._csrc import (
            BATCH_VERSION,
            CDEF_BATCH,
            SOURCE_BATCH,
        )

        assert PINNED_BATCH_LAYOUTS[BATCH_VERSION] == batch_layout_hash(
            CDEF_BATCH, SOURCE_BATCH
        )

    def test_current_layout_passes(self, tmp_path):
        from repro.sim.native._csrc import (
            BATCH_VERSION,
            CDEF_BATCH,
            SOURCE_BATCH,
        )

        write_tree(
            tmp_path,
            {
                "sim/native/_csrc.py": self._csrc_source(
                    BATCH_VERSION, CDEF_BATCH, SOURCE_BATCH
                )
            },
        )
        assert run_rules(tmp_path, [self._rule()]) == []

    def test_drift_without_bump_is_flagged(self, tmp_path):
        from repro.sim.native._csrc import BATCH_VERSION, CDEF_BATCH, SOURCE_BATCH

        write_tree(
            tmp_path,
            {
                "sim/native/_csrc.py": self._csrc_source(
                    BATCH_VERSION, CDEF_BATCH, SOURCE_BATCH + "\nint x;\n"
                )
            },
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF005"]
        assert "bump BATCH_VERSION" in findings[0].message

    def test_new_version_requires_a_pin(self, tmp_path):
        from repro.sim.native._csrc import CDEF_BATCH, SOURCE_BATCH

        write_tree(
            tmp_path,
            {
                "sim/native/_csrc.py": self._csrc_source(
                    999, CDEF_BATCH, SOURCE_BATCH
                )
            },
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF005"]
        assert "no pinned layout" in findings[0].message

    def test_static_storage_is_flagged(self, tmp_path):
        body = (
            "#ifdef _OPENMP\n#endif\n"
            "int f(void) { static int hits = 0; return ++hits; }\n"
        )
        write_tree(
            tmp_path,
            {"sim/native/_csrc.py": self._csrc_source(1, "int f(void);", body)},
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert "PERF005" in rule_ids(findings)
        assert any("`static` storage" in f.message for f in findings)

    def test_missing_openmp_guard_is_flagged(self, tmp_path):
        body = "int f(void) { return 0; }\n"
        write_tree(
            tmp_path,
            {"sim/native/_csrc.py": self._csrc_source(1, "int f(void);", body)},
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert "PERF005" in rule_ids(findings)
        assert any("_OPENMP" in f.message for f in findings)

    def test_non_literal_source_is_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "sim/native/_csrc.py": (
                    "BATCH_VERSION = 1\n"
                    'CDEF_BATCH = "int f(void);"\n'
                    "SOURCE_BATCH = make_source()\n"
                )
            },
        )
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF005"]
        assert "statically auditable" in findings[0].message

    def test_missing_module_is_flagged(self, tmp_path):
        write_tree(tmp_path, {"core/x.py": "pass\n"})
        findings = run_rules(tmp_path, [self._rule()])
        assert rule_ids(findings) == ["PERF005"]
