"""Context attributes (Table 1 of the paper) and attribute-set bitmaps.

Each memory access is described by up to eight attributes: five hardware
attributes the CPU can capture and three software attributes injected by
the compiler.  The Reducer selects, per context, which subset is *active*;
the activation order below puts cheap, low-cardinality attributes first
and the "use sparingly" address history last, following the paper's note
that address history risks overly localized learning.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator


class Attribute(IntEnum):
    """One context attribute; the value is the attribute's bitmap position."""

    IP = 0  # instruction pointer of the access (hardware)
    TYPE_ID = 1  # unique object-type enumeration (compiler)
    LINK_OFFSET = 2  # offset of link field within object (compiler)
    REF_FORM = 3  # syntactic form of the reference (compiler)
    LAST_VALUE = 4  # data loaded by the previous access (hardware)
    BRANCH_HISTORY = 5  # global branch-history register (hardware)
    REG_VALUE = 6  # live general-register contents (hardware)
    ADDR_HISTORY = 7  # recent memory addresses (hardware, use sparingly)


#: All attributes in activation order (base first, riskiest last).
ALL_ATTRIBUTES: tuple[Attribute, ...] = tuple(Attribute)

#: Attributes active in a freshly allocated reducer entry.  The IP is the
#: paper's base context element; the compiler hints are included because
#: they are exactly the information the LLVM pass was built to provide.
DEFAULT_ACTIVE: tuple[Attribute, ...] = (
    Attribute.IP,
    Attribute.TYPE_ID,
    Attribute.LINK_OFFSET,
    Attribute.REF_FORM,
)


class AttributeSet:
    """An immutable bitmap of active attributes with activation order."""

    __slots__ = ("_bits", "indices")

    def __init__(self, attributes: tuple[Attribute, ...] = DEFAULT_ACTIVE):
        bits = 0
        for attr in attributes:
            bits |= 1 << int(attr)
        self._bits = bits
        self.indices = self._compute_indices()

    def _compute_indices(self) -> tuple[int, ...]:
        return tuple(i for i in range(len(ALL_ATTRIBUTES)) if self._bits & (1 << i))

    @classmethod
    def from_bits(cls, bits: int) -> "AttributeSet":
        obj = cls.__new__(cls)
        obj._bits = bits & ((1 << len(ALL_ATTRIBUTES)) - 1)
        obj.indices = obj._compute_indices()
        return obj

    @property
    def bits(self) -> int:
        return self._bits

    def __contains__(self, attr: Attribute) -> bool:
        return bool(self._bits & (1 << int(attr)))

    def __iter__(self) -> Iterator[Attribute]:
        for attr in ALL_ATTRIBUTES:
            if attr in self:
                yield attr

    def __len__(self) -> int:
        return bin(self._bits).count("1")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeSet) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        names = "+".join(attr.name for attr in self)
        return f"AttributeSet({names or 'empty'})"

    def activate_next(self) -> "AttributeSet":
        """Return a set with the first inactive attribute activated.

        This is the overload response of Section 4.4: splitting one reduced
        context into several distinguished by the new attribute.  Returns
        ``self`` when every attribute is already active.
        """
        for attr in ALL_ATTRIBUTES:
            if attr not in self:
                return AttributeSet.from_bits(self._bits | (1 << int(attr)))
        return self

    def deactivate_last(self) -> "AttributeSet":
        """Return a set with the last-activated optional attribute dropped.

        The underload response: merging context states that are spread over
        too many unique reduced contexts.  The IP is never deactivated —
        without it every load site would collapse together.
        """
        for attr in reversed(ALL_ATTRIBUTES):
            if attr in self and attr is not Attribute.IP:
                return AttributeSet.from_bits(self._bits & ~(1 << int(attr)))
        return self
