"""Per-suite summary: geomean speedups segmented as the paper narrates.

The paper discusses results per suite — SPEC2006 versus the graph suites
versus the μkernels ("up to 2.8× over the SPEC2006 suite alone ... up to
4.3× over our full set").  This view aggregates any sweep that way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.experiments.sweep import standard_sweep
from repro.sim.metrics import geomean
from repro.sim.runner import ComparisonResult
from repro.workloads.suites import get_workload


@dataclass
class SuiteSummaryResult:
    #: suite -> prefetcher -> geomean speedup over none
    by_suite: dict[str, dict[str, float]]
    #: suite -> prefetcher -> peak speedup within the suite
    peaks: dict[str, dict[str, float]]

    def best_prefetcher(self, suite: str) -> str:
        row = self.by_suite[suite]
        return max(row, key=row.get)


def run(
    scale: str = "small", comparison: ComparisonResult | None = None
) -> SuiteSummaryResult:
    comparison = comparison or standard_sweep(scale)
    speedups = comparison.speedups()
    prefetchers = [p for p in comparison.prefetchers() if p != "none"]

    groups: dict[str, list[str]] = {}
    for workload in speedups:
        suite = get_workload(workload).suite
        groups.setdefault(suite, []).append(workload)

    by_suite: dict[str, dict[str, float]] = {}
    peaks: dict[str, dict[str, float]] = {}
    for suite, members in groups.items():
        by_suite[suite] = {
            pf: geomean([speedups[wl][pf] for wl in members]) for pf in prefetchers
        }
        peaks[suite] = {
            pf: max(speedups[wl][pf] for wl in members) for pf in prefetchers
        }
    return SuiteSummaryResult(by_suite=by_suite, peaks=peaks)


def render(result: SuiteSummaryResult) -> str:
    prefetchers = list(next(iter(result.by_suite.values())))
    rows = []
    for suite, row in result.by_suite.items():
        rows.append(
            (suite, "geomean")
            + tuple(f"{row[pf]:.2f}" for pf in prefetchers)
        )
        rows.append(
            (suite, "peak")
            + tuple(f"{result.peaks[suite][pf]:.2f}" for pf in prefetchers)
        )
    return render_table(
        ("suite", "stat") + tuple(prefetchers),
        rows,
        title="Per-suite speedups over no prefetching",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
