"""Seed robustness: are the headline speedups stable across randomness?

Two sources of randomness exist: the workload's (heap placement, keys,
graph structure) and the prefetcher's (ε-greedy exploration).  This
experiment re-runs a workload subset across several seeds of each and
reports the spread of the context prefetcher's speedup — evidence that
the reproduction's conclusions do not hinge on a lucky seed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.experiments.report import render_table
from repro.experiments.sweep import SCALES
from repro.prefetchers.nopf import NoPrefetcher
from repro.sim.simulator import Simulator
from repro.workloads.suites import get_workload

DEFAULT_WORKLOADS = ("list", "graph500-list", "array")
DEFAULT_SEEDS = (7, 11, 23, 41)


@dataclass
class SpeedupSpread:
    samples: list[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.samples) if len(self.samples) > 1 else 0.0

    @property
    def spread(self) -> float:
        return max(self.samples) - min(self.samples)

    @property
    def cv(self) -> float:
        """Coefficient of variation (stdev / mean)."""
        return self.stdev / self.mean if self.mean else 0.0


@dataclass
class RobustnessResult:
    #: workload -> spread over workload seeds (prefetcher seed fixed)
    workload_seed_spread: dict[str, SpeedupSpread]
    #: workload -> spread over prefetcher seeds (workload seed fixed)
    prefetcher_seed_spread: dict[str, SpeedupSpread]


def _speedup(trace, pf_config: ContextPrefetcherConfig, limit) -> float:
    base = Simulator(NoPrefetcher()).run(trace, limit=limit)
    ctx = Simulator(ContextPrefetcher(pf_config)).run(trace, limit=limit)
    return ctx.speedup_over(base)


def run(
    scale: str = "small",
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
) -> RobustnessResult:
    limit = SCALES[scale]["limit"]
    base_config = ContextPrefetcherConfig()

    workload_spread: dict[str, SpeedupSpread] = {}
    prefetcher_spread: dict[str, SpeedupSpread] = {}
    for name in workloads:
        spec = get_workload(name)

        samples = []
        for seed in seeds:
            program = spec.factory()
            program.seed = seed
            if hasattr(program, "_trace_cache"):
                del program._trace_cache
            samples.append(_speedup(program.trace(), base_config, limit))
        workload_spread[name] = SpeedupSpread(samples)

        trace = spec.build().trace()
        samples = [
            _speedup(trace, replace(base_config, seed=seed), limit)
            for seed in seeds
        ]
        prefetcher_spread[name] = SpeedupSpread(samples)
    return RobustnessResult(
        workload_seed_spread=workload_spread,
        prefetcher_seed_spread=prefetcher_spread,
    )


def render(result: RobustnessResult) -> str:
    rows = []
    for name, spread in result.workload_seed_spread.items():
        rows.append(
            ("workload-seed", name, f"{spread.mean:.2f}", f"{spread.stdev:.3f}", f"{spread.cv:.1%}")
        )
    for name, spread in result.prefetcher_seed_spread.items():
        rows.append(
            ("prefetcher-seed", name, f"{spread.mean:.2f}", f"{spread.stdev:.3f}", f"{spread.cv:.1%}")
        )
    return render_table(
        ("varied", "workload", "mean speedup", "stdev", "cv"),
        rows,
        title="Seed robustness — context prefetcher speedup spread",
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
