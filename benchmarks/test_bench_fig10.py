"""Figure 10 bench: L1 MPKI per prefetcher."""

from conftest import run_once

from repro.experiments import fig10_l1_mpki as fig10


def test_fig10_l1_mpki(benchmark, bench_sweep):
    result = run_once(benchmark, fig10.run, "small", bench_sweep)

    # paper shape: the context prefetcher clearly reduces L1 MPKI versus
    # no prefetching and versus the delta/stride prefetchers.  SMS can be
    # close or ahead on the streaming workloads at L1 (its bulk region
    # prefetch buys more lead time than the 18-50-access reward window),
    # so the SMS comparison gets a tolerance; the L2 picture (Figure 11)
    # is where the paper's headline ratios live.
    avg = result.average
    assert avg["context"] < 0.9 * avg["none"]
    for competitor in ("stride", "ghb-gdc", "ghb-pcdc"):
        assert avg["context"] < avg[competitor]
    assert avg["context"] <= 2.0 * avg["sms"]
    # on the irregular linked workloads the context prefetcher cuts L1
    # MPKI far below the baseline and the delta/stride prefetchers; SMS
    # may tie or slightly edge it on `list` (pool allocation gives SMS
    # real footprints to stage) while context still wins IPC there
    for workload in ("list", "graph500-list"):
        if workload in result.table:
            row = result.table[workload]
            assert row["context"] < 0.85 * row["none"], workload
            for competitor in ("stride", "ghb-gdc", "ghb-pcdc"):
                assert row["context"] < row[competitor], workload
            assert row["context"] <= 1.2 * row["sms"], workload
    # the figure only lists memory-intensive workloads
    assert all(row["none"] > result.threshold for row in result.table.values())
    print()
    print(fig10.render(result))
