"""Shared sweep machinery for the evaluation figures.

The evaluation figures (9–12) are all views over one workloads ×
prefetchers sweep.  ``standard_sweep`` runs it at a chosen scale:

* ``"small"``  — a representative workload subset, truncated traces; for
  tests and quick sanity runs (seconds to a couple of minutes).
* ``"medium"`` — the same subset, full traces.
* ``"full"``   — every Table 3 workload, full traces (the real figures;
  several minutes of pure-Python simulation).
"""

from __future__ import annotations

from repro.sim.config import PREFETCHER_ORDER
from repro.sim.runner import ComparisonResult, compare
from repro.workloads.suites import all_workloads, get_workload

#: the subset used at "small"/"medium" scale: one or two representatives
#: per suite, spanning regular, irregular and mixed behaviour
REPRESENTATIVE_WORKLOADS = (
    "lbm",  # SPEC streaming
    "mcf",  # SPEC pointer-chasing
    "h264ref",  # SPEC region reuse
    "sjeng",  # SPEC cache-resident
    "graph500-list",
    "graph500-csr",
    "ssca2-list",
    "ssca2-csr",
    "suffixarray",
    "array",
    "list",
    "hashtest",
    "maptest",
    "bst",
    "prim",
    "listsort",
)

#: the μbenchmark set Figure 8's top panel uses
UKERNELS = (
    "array",
    "list",
    "bst",
    "hashtest",
    "maptest",
    "prim",
    "listsort",
    "bfs",
    "ssca-lds",
    "graph500-list",
)

SCALES = {
    "small": dict(limit=15000, subset=True),
    "medium": dict(limit=None, subset=True),
    "full": dict(limit=None, subset=False),
}


def sweep_workloads(scale: str = "small"):
    """The workload list for a scale."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
    if SCALES[scale]["subset"]:
        return [get_workload(name) for name in REPRESENTATIVE_WORKLOADS]
    return all_workloads()


def standard_sweep(
    scale: str = "small",
    *,
    prefetchers=PREFETCHER_ORDER,
    workloads=None,
    progress=None,
    jobs=None,
    cache=None,
    store=None,
) -> ComparisonResult:
    """Run the workloads × prefetchers sweep behind Figures 9–12.

    ``jobs``/``cache``/``store`` thread straight through to
    :func:`repro.sim.runner.compare`: > 1 job fans the grid over worker
    processes, ``cache=True`` (or a path / ``SweepCache``) memoizes
    cells under ``results/.cache/``, ``store=True`` (or a path /
    ``TraceStore``) supplies registry traces from compiled binary files
    under ``results/.cache/traces/``.  Left at ``None`` they follow the
    process-wide defaults the CLI's ``--jobs``/``--no-cache``/
    ``--no-store`` flags set; the results are bit-identical either way
    (see tests/sim/test_parallel_parity.py).
    """
    if workloads is None:
        workloads = sweep_workloads(scale)
    limit = SCALES[scale]["limit"] if scale in SCALES else None
    return compare(
        workloads,
        prefetchers,
        limit=limit,
        progress=progress,
        jobs=jobs,
        cache=cache,
        store=store,
    )
