"""Regenerate the kernel-parity golden (tests/golden/kernel_parity.json).

Usage:  PYTHONPATH=src python scripts/regen_kernel_golden.py

The fixture pins the complete :class:`SimulationResult` (every field,
via the lossless codec) for every registered prefetcher across three
workloads, including the warmup and multi-phase simulator paths.  It was
generated from the pre-PR-4 tree, *before* the hot-path rewrite, so
``tests/sim/test_kernel_parity.py`` proves the optimized kernel
bit-identical to the unoptimized one.  Regenerate only when a change is
*supposed* to move simulation results, and say why in the commit
message — a perf-only PR must never need to touch this file.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.sim.codec import encode_result  # noqa: E402
from repro.sim.config import PREFETCHER_FACTORIES  # noqa: E402
from repro.sim.phases import run_phased  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.workloads.suites import get_workload  # noqa: E402

#: also recorded inside the JSON so the parity test re-runs exactly this
SPEC = {
    "workloads": ["list", "mcf", "graph500-csr"],
    "prefetchers": sorted(PREFETCHER_FACTORIES),
    "limit": 3000,
    "warmup": {"workloads": ["list", "mcf", "graph500-csr"], "warmup": 500},
    "phased": {
        "workload": "list",
        "prefetchers": sorted(PREFETCHER_FACTORIES),
        "num_phases": 3,
        "cold_start": False,
    },
}

GOLDEN_PATH = REPO / "tests" / "golden" / "kernel_parity.json"


def collect() -> dict:
    traces = {
        name: get_workload(name).build().trace()[: SPEC["limit"]]
        for name in SPEC["workloads"]
    }
    results: dict[str, dict] = {}
    for wl in SPEC["workloads"]:
        for pf in SPEC["prefetchers"]:
            sim = Simulator(PREFETCHER_FACTORIES[pf]())
            results[f"plain/{wl}/{pf}"] = encode_result(
                sim.run(traces[wl], workload_name=wl)
            )
    for wl in SPEC["warmup"]["workloads"]:
        for pf in SPEC["prefetchers"]:
            sim = Simulator(PREFETCHER_FACTORIES[pf]())
            results[f"warmup/{wl}/{pf}"] = encode_result(
                sim.run(
                    traces[wl],
                    workload_name=wl,
                    warmup=SPEC["warmup"]["warmup"],
                )
            )
    phased = SPEC["phased"]
    for pf in phased["prefetchers"]:
        run = run_phased(
            traces[phased["workload"]],
            pf,
            workload_name=phased["workload"],
            num_phases=phased["num_phases"],
            cold_start=phased["cold_start"],
        )
        for i, phase_result in enumerate(run.phases):
            results[f"phased/{phased['workload']}/{pf}/p{i}"] = encode_result(
                phase_result
            )
    return results


def main() -> int:
    payload = {
        "description": (
            "Field-for-field SimulationResult golden pinned before the "
            "PR-4 hot-path rewrite; the kernel-parity suite proves the "
            "optimized kernel produces identical results."
        ),
        "spec": SPEC,
        "results": collect(),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH} ({len(payload['results'])} results)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
