"""Prim's minimum-spanning-tree μkernel.

The paper's ``Prim`` μbenchmark: an algorithm whose inner loop alternates
a dense scan (finding the cheapest frontier vertex) with a pointer-chasing
sweep over the chosen vertex's edge list — a half-regular, half-irregular
mix that rewards a prefetcher able to follow both.
"""

from __future__ import annotations

from repro.workloads.graphs import (
    EDGE_NEXT_OFFSET,
    EDGE_TARGET_OFFSET,
    EDGE_WEIGHT_OFFSET,
    EDGES_OFFSET,
    LinkedGraph,
    random_edges,
)
from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

WORD = 8
INF = 1 << 30


def prim_mst_weight(graph: LinkedGraph) -> int:
    """Reference Prim over the substrate (validation helper).

    Returns the total weight of the MST of the component containing
    vertex 0 (edges are treated as undirected only if present both ways;
    the generator emits directed pairs, so this is MST of the digraph's
    underlying reachable structure as the workload computes it).
    """
    n = len(graph)
    dist = [INF] * n
    in_tree = [False] * n
    dist[0] = 0
    total = 0
    for _ in range(n):
        u = -1
        best = INF
        for v in range(n):
            if not in_tree[v] and dist[v] < best:
                best, u = dist[v], v
        if u < 0:
            break
        in_tree[u] = True
        total += best
        edge = graph.vertices[u].edges
        while edge is not None:
            t = edge.target.vid
            if not in_tree[t] and edge.weight < dist[t]:
                dist[t] = edge.weight
            edge = edge.next
    return total


class PrimProgram(TraceProgram):
    """Prim's MST over a linked adjacency graph."""

    name = "prim"
    suite = "ukernel-alg"

    def __init__(
        self,
        *,
        num_vertices: int = 192,
        num_edges: int = 1600,
        placement: str = "shuffled",
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.placement = placement

    def build(self) -> TraceBuilder:
        heap = Heap(placement=self.placement, seed=self.seed)
        tb = TraceBuilder()
        n = self.num_vertices
        graph = LinkedGraph(
            n, random_edges(n, self.num_edges, self.seed), heap, weight_seed=self.seed
        )
        dist_base = heap.alloc(n * WORD)
        intree_base = heap.alloc(n * WORD)
        dist_hints = tb.index_hints("dist")
        edge_hints = tb.pointer_hints("edge", EDGE_NEXT_OFFSET)
        head_hints = tb.pointer_hints("vertex", EDGES_OFFSET)

        dist = [INF] * n
        in_tree = [False] * n
        dist[0] = 0
        for _ in range(n):
            # dense scan for the cheapest unvisited vertex
            u, best = -1, INF
            for v in range(n):
                tb.load(intree_base + v * WORD, "prim.intree", value=int(in_tree[v]), gap=1)
                tb.load(dist_base + v * WORD, "prim.dist", value=dist[v], hints=dist_hints, gap=1)
                better = not in_tree[v] and dist[v] < best
                tb.branch(better)
                if better:
                    best, u = dist[v], v
            if u < 0:
                break
            in_tree[u] = True
            tb.store(intree_base + u * WORD, "prim.mark", gap=2)

            # relax the chosen vertex's edges (pointer chase)
            vert = graph.vertices[u]
            edge = vert.edges
            tb.load(
                vert.addr + EDGES_OFFSET,
                "prim.head",
                value=edge.addr if edge else 0,
                hints=head_hints,
                gap=2,
            )
            while edge is not None:
                t = edge.target.vid
                tb.load(
                    edge.addr + EDGE_TARGET_OFFSET,
                    "prim.target",
                    value=edge.target.addr,
                    depends=True,
                    gap=1,
                )
                tb.load(
                    edge.addr + EDGE_WEIGHT_OFFSET,
                    "prim.weight",
                    value=edge.weight,
                    depends=True,
                    gap=1,
                )
                tb.load(dist_base + t * WORD, "prim.reldist", value=dist[t], gap=1)
                relax = not in_tree[t] and edge.weight < dist[t]
                tb.branch(relax)
                if relax:
                    dist[t] = edge.weight
                    tb.store(dist_base + t * WORD, "prim.update", gap=1)
                nxt = edge.next
                tb.load(
                    edge.addr + EDGE_NEXT_OFFSET,
                    "prim.next",
                    value=nxt.addr if nxt else 0,
                    depends=True,
                    hints=edge_hints,
                    gap=1,
                )
                edge = nxt
        return tb
