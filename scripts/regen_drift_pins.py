"""Regenerate the DRIFT fingerprint pins in src/repro/analysis/drift_pins.json.

Usage:  PYTHONPATH=src python scripts/regen_drift_pins.py [--check]

The pins tie each canonical component method (CoreModel.issue_time,
Reducer.lookup, ...) to its inlined fast-path copy (the ``# drift:``
marker regions in sim/simulator.py and core/prefetcher.py).  The DRIFT
lint family fails when either side's fingerprint leaves its pin, so a
one-sided edit can never land silently.

Only run this after an *intentional, paired* edit — and only once the
kernel-golden and parallel-parity suites have re-proven that the fast
and slow paths still agree bit-for-bit.  The script recomputes both
sides of every pair together (it has no way to update just one), which
is the point: re-pinning is a deliberate, reviewable diff.

``--check`` recomputes without writing and exits 1 on any difference —
the same comparison the DRIFT rule performs, in script form for CI or
pre-commit hooks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.rules.drift import (  # noqa: E402
    PINS_PATH,
    compute_fingerprints,
    load_pins,
)
from repro.analysis.runner import DEFAULT_ROOT  # noqa: E402
from repro.analysis.visitor import load_project  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare current fingerprints against the pins; write nothing",
    )
    args = parser.parse_args(argv)

    project = load_project(DEFAULT_ROOT)
    try:
        current = compute_fingerprints(project)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2

    pinned = load_pins()
    changed = sorted(
        key for key in {*current, *pinned} if current.get(key) != pinned.get(key)
    )
    if args.check:
        for key in changed:
            print(f"drift pin out of date: {key}")
        if changed:
            print(f"{len(changed)} pin(s) differ; run this script to re-pin")
        else:
            print(f"all {len(current)} drift pins up to date")
        return 1 if changed else 0

    PINS_PATH.write_text(
        json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    verb = "updated" if changed else "unchanged"
    print(f"wrote {PINS_PATH} ({len(current)} pairs, {len(changed)} {verb})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
