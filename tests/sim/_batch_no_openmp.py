"""Subprocess body for the no-OpenMP batch parity test.

Runs with ``REPRO_NATIVE_NO_OPENMP=1``, so the kernel loads (or builds)
the serial artifact; executes the same fixed shard as the parent test
and prints the encoded payloads as JSON.  A real script file — the
worker path uses spawn, and spawned interpreters cannot re-import
stdin-fed ``__main__`` bodies.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

WORKLOAD = "list"
THREADS = 4  # ignored by the serial build; proves the knob is harmless


def main() -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import test_native_batch as batch_suite

    from repro.sim.native.build import kernel_openmp, kernel_or_none

    if kernel_or_none() is None:
        print("compiled kernel unavailable", file=sys.stderr)
        return 2
    if kernel_openmp():
        print("REPRO_NATIVE_NO_OPENMP=1 did not force the serial build",
              file=sys.stderr)
        return 3
    encoded, reasons = batch_suite._batch_encoded(
        batch_suite._mixed_prefetchers(),
        batch_suite._trace(WORKLOAD),
        threads=THREADS,
    )
    if any(reasons):
        print(f"unexpected fallbacks: {reasons}", file=sys.stderr)
        return 4
    json.dump(
        {
            "openmp": False,
            "workload": WORKLOAD,
            "threads": THREADS,
            "results": encoded,
        },
        sys.stdout,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
