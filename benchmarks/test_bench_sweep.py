"""Benchmark the standard sweep itself (the engine behind Figures 9-12)."""

from conftest import bench_sweep_impl, run_once


def test_bench_standard_sweep(benchmark):
    comparison = run_once(benchmark, bench_sweep_impl)
    assert len(comparison.workloads()) == 6
    assert len(comparison.prefetchers()) == 6
