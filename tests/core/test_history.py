"""Tests for the history queue ring buffer."""

import pytest

from repro.core.history import HistoryQueue, HistoryRecord


def rec(i):
    return HistoryRecord(reduced_hash=i, block=i * 2, line=i, index=i)


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            HistoryQueue(0, (1,))

    def test_rejects_depths_beyond_capacity(self):
        with pytest.raises(ValueError):
            HistoryQueue(10, (5, 11))

    def test_rejects_depth_zero(self):
        with pytest.raises(ValueError):
            HistoryQueue(10, (0,))


class TestSampling:
    def test_depth_one_is_newest(self):
        hq = HistoryQueue(10, (1,))
        hq.push(rec(1))
        hq.push(rec(2))
        assert hq.sample()[0].index == 2

    def test_depths_count_backwards(self):
        hq = HistoryQueue(10, (1, 3))
        for i in range(5):
            hq.push(rec(i))
        sampled = hq.sample()
        assert [r.index for r in sampled] == [4, 2]

    def test_shallow_queue_yields_partial_sample(self):
        hq = HistoryQueue(50, (1, 18, 50))
        hq.push(rec(0))
        hq.push(rec(1))
        assert len(hq.sample()) == 1

    def test_wraparound_keeps_newest(self):
        hq = HistoryQueue(4, (1, 4))
        for i in range(10):
            hq.push(rec(i))
        sampled = hq.sample()
        assert [r.index for r in sampled] == [9, 6]

    def test_duplicate_depths_deduplicated(self):
        hq = HistoryQueue(10, (3, 3, 1))
        assert hq.sample_depths == (1, 3)


class TestAccessors:
    def test_len_caps_at_capacity(self):
        hq = HistoryQueue(4, (1,))
        for i in range(10):
            hq.push(rec(i))
        assert len(hq) == 4

    def test_at_depth_bounds(self):
        hq = HistoryQueue(4, (1,))
        hq.push(rec(7))
        assert hq.at_depth(1).index == 7
        assert hq.at_depth(2) is None
        assert hq.at_depth(0) is None

    def test_newest(self):
        hq = HistoryQueue(4, (1,))
        assert hq.newest() is None
        hq.push(rec(3))
        assert hq.newest().index == 3

    def test_reset(self):
        hq = HistoryQueue(4, (1,))
        hq.push(rec(1))
        hq.reset()
        assert len(hq) == 0
        assert hq.sample() == []
