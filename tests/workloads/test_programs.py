"""Cross-cutting tests over every registered workload program."""

import pytest

from repro.hints import RefForm
from repro.workloads.hashtable import ChainedHashTable
from repro.workloads.linked_list import InsertionSortProgram, ListTraversalProgram
from repro.workloads.spec_proxy import SPEC_PROFILES, SpecProfile, SpecProxyProgram
from repro.workloads.suites import SUITES, all_workloads, get_workload
from repro.workloads.trace import Heap


# small parameterisations so the whole-registry scan stays fast
SMALL = {
    "list": dict(num_nodes=64, iterations=3),
    "listsort": dict(num_elements=40),
}


class TestRegistry:
    def test_table3_suites_present(self):
        assert set(SUITES) == {
            "spec2006",
            "pbbs",
            "graph500",
            "hpcs",
            "ukernel-alg",
            "ukernel-ds",
        }

    def test_sixteen_spec_workloads(self):
        assert len(SUITES["spec2006"]) == 16

    def test_unknown_workload_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get_workload("nope")

    def test_every_workload_buildable(self):
        for spec in all_workloads():
            assert callable(spec.factory)

    def test_names_unique(self):
        names = [spec.name for spec in all_workloads()]
        assert len(names) == len(set(names))


@pytest.mark.parametrize(
    "name", [spec.name for spec in all_workloads() if spec.suite != "spec2006"]
)
class TestEveryProgramTrace:
    def _trace(self, name):
        spec = get_workload(name)
        prog = spec.build()
        return prog.trace()[:4000]

    def test_trace_nonempty_with_positive_addresses(self, name):
        trace = self._trace(name)
        assert trace
        assert all(a.addr > 0 for a in trace)

    def test_trace_has_instruction_gaps(self, name):
        trace = self._trace(name)
        assert all(a.inst_gap >= 0 for a in trace)
        assert sum(a.inst_gap for a in trace) > 0


class TestListPrograms:
    def test_traversal_revisits_same_addresses(self):
        prog = ListTraversalProgram(**SMALL["list"])
        trace = prog.trace()
        per_iter = len(trace) // 3
        first = [a.addr for a in trace[:per_iter]]
        second = [a.addr for a in trace[per_iter : 2 * per_iter]]
        assert first == second  # semantic recurrence (Figure 1 bottom)

    def test_shuffled_layout_is_not_address_ordered(self):
        prog = ListTraversalProgram(**SMALL["list"], placement="shuffled")
        addrs = [a.addr for a in prog.trace() if a.is_load][:40]
        assert addrs != sorted(addrs)

    def test_sequential_layout_is_address_ordered(self):
        prog = ListTraversalProgram(**SMALL["list"], placement="sequential")
        key_addrs = [a.addr for a in prog.trace() if a.addr % 32 == 0][:20]
        assert key_addrs == sorted(key_addrs)

    def test_pointer_loads_hinted(self):
        prog = ListTraversalProgram(**SMALL["list"])
        hinted = [a for a in prog.trace() if a.hints.ref_form is RefForm.ARROW]
        assert hinted
        assert all(a.hints.link_offset == 16 for a in hinted)

    def test_next_loads_carry_successor_address(self):
        prog = ListTraversalProgram(num_nodes=16, iterations=1)
        trace = prog.trace()
        next_loads = [a for a in trace if a.hints.ref_form is RefForm.ARROW]
        # each next-pointer load's value is the next node's base address
        for load, nxt in zip(next_loads, next_loads[1:]):
            assert load.value == nxt.addr - 16


class TestInsertionSort:
    def test_figure1_series_populated(self):
        prog = InsertionSortProgram(num_elements=40)
        prog.trace()
        assert prog.figure1_series
        ordinals = [o for o, _, _ in prog.figure1_series]
        assert ordinals == sorted(ordinals)

    def test_logical_indices_increase_within_insertion(self):
        prog = InsertionSortProgram(num_elements=40)
        prog.trace()
        logical = [l for _, _, l in prog.figure1_series]
        # each traversal restarts at 0 and walks up
        assert logical[0] == 0
        assert max(logical) > 3

    def test_phase_mode_traces_only_tail(self):
        full = InsertionSortProgram(num_elements=60)
        tail = InsertionSortProgram(num_elements=60, trace_from=50)
        assert len(tail.trace()) < len(full.trace())
        assert len(tail.trace()) > 0

    def test_phase_mode_validation(self):
        with pytest.raises(ValueError):
            InsertionSortProgram(num_elements=10, trace_from=10)

    def test_trace_deterministic(self):
        a = InsertionSortProgram(num_elements=30).trace()
        b = InsertionSortProgram(num_elements=30).trace()
        assert [x.addr for x in a] == [x.addr for x in b]


class TestHashTable:
    def test_chain_finds_key(self):
        table = ChainedHashTable(Heap(), num_buckets=8)
        table.insert(42)
        chain = table.chain(42)
        assert chain[-1].key == 42

    def test_chain_walks_collisions(self):
        table = ChainedHashTable(Heap(), num_buckets=1)
        for key in (1, 2, 3):
            table.insert(key)
        assert len(table.chain(1)) == 3  # inserted at head: 3,2,1

    def test_load_factor(self):
        table = ChainedHashTable(Heap(), num_buckets=4)
        for key in range(8):
            table.insert(key)
        assert table.load_factor() == 2.0

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            ChainedHashTable(Heap(), num_buckets=0)


class TestSpecProxies:
    def test_all_profiles_have_valid_mixes(self):
        for profile in SPEC_PROFILES.values():
            mix = profile.mix()
            assert sum(mix.values()) == pytest.approx(1.0)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            SpecProfile("broken", 0.3).mix()

    def test_proxy_by_name(self):
        prog = SpecProxyProgram("mcf", num_accesses=500)
        assert prog.name == "mcf"
        assert len(prog.trace()) >= 500

    def test_streaming_profile_is_mostly_sequential(self):
        prog = SpecProxyProgram("libquantum", num_accesses=2000)
        addrs = [a.addr for a in prog.trace()]
        ups = sum(1 for x, y in zip(addrs, addrs[1:]) if 0 < y - x <= 64)
        assert ups / len(addrs) > 0.5

    def test_pointer_profile_has_dependent_loads(self):
        prog = SpecProxyProgram("mcf", num_accesses=2000)
        dependent = sum(1 for a in prog.trace() if a.depends_on_prev)
        assert dependent / len(prog.trace()) > 0.3

    def test_mem_ratio_shapes_instruction_gaps(self):
        lean = SpecProxyProgram("sjeng", num_accesses=2000)  # mem_ratio .25
        dense = SpecProxyProgram("lbm", num_accesses=2000)  # mem_ratio .45
        lean_ratio = lean.access_count() / lean.instruction_count()
        dense_ratio = dense.access_count() / dense.instruction_count()
        assert dense_ratio > lean_ratio

    def test_deterministic(self):
        a = SpecProxyProgram("omnetpp", num_accesses=1000).trace()
        b = SpecProxyProgram("omnetpp", num_accesses=1000).trace()
        assert [x.addr for x in a] == [x.addr for x in b]
