"""Tests for the characterization experiment module."""

import pytest

from repro.experiments import characterization


class TestCharacterizationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return characterization.run(
            workloads=("list", "array", "mcf"), limit=5000
        )

    def test_profiles_per_workload(self, result):
        assert set(result.profiles) == {"list", "array", "mcf"}

    def test_linked_list_is_irregular(self, result):
        assert "list" in result.irregular_workloads()
        assert "array" not in result.irregular_workloads()

    def test_array_has_dominant_stride(self, result):
        assert result.profiles["array"].dominant_stride() == 8

    def test_hint_coverage_nonzero_for_pointer_codes(self, result):
        assert result.profiles["list"].hinted_fraction > 0.3

    def test_render(self, result):
        text = characterization.render(result)
        assert "Workload characterization" in text
        assert "mem/inst" in text
        assert "list" in text
