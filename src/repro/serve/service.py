"""The sweep service: scheduler + result DB behind one client object.

This is deliberately a thin composition layer — policy (enumeration,
sharding, resume, ordering) lives in :mod:`repro.sim.sched`, and the
service only wires a DB handle, a trace store and a pool size together
so callers (the ``repro serve`` CLI, scripts, tests) do not repeat the
plumbing.  Everything here is synchronous: the asyncio loop lives
inside the scheduler and is an implementation detail of dispatch.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, NamedTuple

from repro.core.config import ContextPrefetcherConfig
from repro.serve.progress import ProgressTracker
from repro.sim.cache import SweepCache
from repro.sim.sched.db import DEFAULT_DB_PATH, CellRow, ResultDB
from repro.sim.sched.plan import GridPlan
from repro.sim.sched.scheduler import SweepScheduler, SweepStats
from repro.workloads.store import TraceStore

__all__ = ["SweepService", "SweepStatus", "plan_from_axes"]

ProgressFn = Callable[[str], None]


def plan_from_axes(
    *,
    workloads: list[str],
    prefetchers: list[str],
    cst_sizes: list[int] | None = None,
    limit: int | None = None,
    base_config: ContextPrefetcherConfig | None = None,
) -> GridPlan:
    """Build a :class:`GridPlan` from CLI-style axis lists.

    ``cst_sizes`` expands to one context-config variant per size (CST
    rescaled, reducer at 8× — the Figure 13 convention); empty means a
    single default-config slice.
    """
    base = base_config or ContextPrefetcherConfig()
    configs: tuple[ContextPrefetcherConfig | None, ...]
    if cst_sizes:
        configs = tuple(base.scaled(size) for size in cst_sizes)
    else:
        configs = (None,)
    return GridPlan(
        workloads=tuple(workloads),
        prefetchers=tuple(prefetchers),
        context_configs=configs,
        limit=limit,
    )


class SweepStatus(NamedTuple):
    """One ``status()`` row: counts plus live-throughput telemetry.

    ``cells_per_sec``/``eta_seconds`` come from the progress sidecar
    (see :mod:`repro.serve.progress`) and are ``None`` for sweeps with
    no recent submitter — the counts themselves are always live.
    """

    sweep: str
    done: int
    total: int
    cells_per_sec: float | None
    eta_seconds: float | None


class SweepService:
    """Submit/status/query over one result DB and the shared pool."""

    def __init__(
        self,
        *,
        db: ResultDB | str | Path = DEFAULT_DB_PATH,
        store: TraceStore | None = None,
        cache: SweepCache | None = None,
        jobs: int = 1,
        native: bool = False,
        kernel_batch: bool = True,
        kernel_threads: int = 0,
    ):
        self.db = db if isinstance(db, ResultDB) else ResultDB(db)
        self.store = store
        self.cache = cache
        self.jobs = max(1, jobs)
        self.native = native
        self.kernel_batch = kernel_batch
        self.kernel_threads = kernel_threads
        self.tracker = ProgressTracker(self.db.path)

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def submit(
        self,
        plan: GridPlan,
        *,
        progress: ProgressFn | None = None,
        max_cells: int | None = None,
    ) -> SweepStats:
        """Run ``plan`` to completion (resuming from the DB); stats back.

        Safe to call repeatedly with the same plan: completed cells are
        never recomputed.  ``max_cells`` bounds how many pending cells
        this call executes (deterministic partial run — the testing and
        checkpointing knob).
        """
        scheduler = SweepScheduler(
            db=self.db,
            store=self.store,
            cache=self.cache,
            jobs=self.jobs,
            native=self.native,
            kernel_batch=self.kernel_batch,
            kernel_threads=self.kernel_threads,
        )
        return scheduler.run_plan_sync(
            plan,
            progress=progress,
            max_cells=max_cells,
            on_cells=self.tracker.on_cells,
        )

    def status(self) -> list[SweepStatus]:
        """Per-sweep counts plus live cells/s and remaining-cells ETA."""
        rates = self.tracker.rates()
        return [
            SweepStatus(sweep, done, total, *rates.get(sweep, (None, None)))
            for sweep, done, total in self.db.sweeps()
        ]

    def query(
        self,
        *,
        sweep: str | None = None,
        workload: str | None = None,
        prefetcher: str | None = None,
    ) -> list[CellRow]:
        """Decoded result rows matching the filters, (sweep, idx) order."""
        return self.db.query(sweep=sweep, workload=workload, prefetcher=prefetcher)
