"""Visitor core: the project model and the shared single-pass AST walk.

``load_project`` parses every ``*.py`` under the package root once into
:class:`SourceFile` records.  :class:`NodeRule` is the base class for
per-node rules; ``run_node_rules`` walks each file's AST exactly once
and fans every node out to the rules that subscribed to its type, so
adding a rule never adds another tree traversal.

Project-level rules (budget, contract, hygiene) that need to correlate
several files subclass :class:`repro.analysis.registry.Rule` directly
and receive the whole :class:`Project`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.graph import SemanticModel

#: directories never scanned (build products, caches)
EXCLUDED_DIRS = frozenset({"__pycache__", ".git", "egg-info"})


@dataclass(frozen=True)
class SourceFile:
    """One parsed module of the project under analysis."""

    rel: str  # posix path relative to the package root
    path: Path
    tree: ast.Module
    #: raw source text (comments carry suppressions and drift markers,
    #: which the AST alone cannot see)
    text: str = ""


@dataclass
class Project:
    """Everything a rule may look at: parsed files plus the manifest."""

    root: Path
    files: dict[str, SourceFile] = field(default_factory=dict)
    manifest: dict = field(default_factory=dict)
    #: files that failed to parse, as findings (reported unconditionally)
    parse_errors: list[Finding] = field(default_factory=list)
    #: lazily built semantic model (import graph, symbols, call graph)
    _semantic: "SemanticModel | None" = field(
        default=None, repr=False, compare=False
    )

    def get(self, rel: str) -> SourceFile | None:
        return self.files.get(rel)

    def in_dir(self, *prefixes: str) -> Iterator[SourceFile]:
        """Files whose relative path starts with any of ``prefixes``."""
        for rel in sorted(self.files):
            if any(rel.startswith(p) for p in prefixes):
                yield self.files[rel]

    def semantic(self) -> "SemanticModel":
        """The project-wide semantic model, built once and cached.

        Import graph, per-module symbol tables and the approximate call
        graph (see :mod:`repro.analysis.graph`).  Every rule that calls
        this shares one model per analysis run.
        """
        if self._semantic is None:
            from repro.analysis.graph import SemanticModel

            self._semantic = SemanticModel.build(self)
        return self._semantic


def _iter_py_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if any(part in EXCLUDED_DIRS or part.endswith(".egg-info") for part in parts):
            continue
        yield path


def load_project(root: Path, manifest: dict | None = None) -> Project:
    """Parse every python file under ``root`` into a :class:`Project`."""
    root = root.resolve()
    project = Project(root=root, manifest=manifest or {})
    for path in _iter_py_files(root):
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            project.parse_errors.append(
                Finding(rel, exc.lineno or 0, "PARSE", f"syntax error: {exc.msg}")
            )
            continue
        project.files[rel] = SourceFile(rel=rel, path=path, tree=tree, text=text)
    return project


class NodeRule(Rule):
    """A per-node rule driven by the shared AST walk.

    Subclasses declare the node types they care about and implement
    :meth:`visit_node`; ``scope`` restricts the rule to files under the
    given relative-path prefixes (empty = the whole package).
    """

    #: AST node classes this rule wants to see
    node_types: tuple[type[ast.AST], ...] = ()
    #: relative-path prefixes the rule applies to; empty = everywhere
    scope: tuple[str, ...] = ()

    def applies(self, source: SourceFile) -> bool:
        return not self.scope or any(source.rel.startswith(p) for p in self.scope)

    def visit_node(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        raise NotImplementedError

    def check(self, project: Project) -> Iterator[Finding]:
        # Standalone fallback so a single rule can run outside the shared
        # walk (unit tests, --select with one rule).
        for source in (project.files[rel] for rel in sorted(project.files)):
            if not self.applies(source):
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, self.node_types):
                    yield from self.visit_node(source, node)


def run_node_rules(
    project: Project, rules: Iterable[NodeRule]
) -> Iterator[Finding]:
    """Walk each file once, dispatching nodes to all subscribed rules."""
    rules = list(rules)
    for rel in sorted(project.files):
        source = project.files[rel]
        active = [rule for rule in rules if rule.applies(source)]
        if not active:
            continue
        dispatch: Mapping[NodeRule, tuple[type[ast.AST], ...]] = {
            rule: rule.node_types for rule in active
        }
        for node in ast.walk(source.tree):
            for rule, types in dispatch.items():
                if isinstance(node, types):
                    yield from rule.visit_node(source, node)


# ----------------------------------------------------------------------
# small AST helpers shared by the rule families


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def class_fields(cls: ast.ClassDef) -> list[str]:
    """Declared per-instance fields: dataclass AnnAssigns and __slots__."""
    fields: list[str] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    if isinstance(stmt.value, (ast.Tuple, ast.List)):
                        fields.extend(
                            el.value
                            for el in stmt.value.elts
                            if isinstance(el, ast.Constant)
                            and isinstance(el.value, str)
                        )
    return fields


def top_level_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, ast.ClassDef)
    }


def top_level_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, ast.FunctionDef)
    }
