"""Tests for the prefetcher-state introspection helpers."""

import pytest

from repro.core.introspect import (
    attribute_set_distribution,
    delta_distribution,
    render_state,
    state_report,
    top_contexts,
)
from repro.core.prefetcher import ContextPrefetcher
from tests.core.test_prefetcher import drive_ring, ring_trace


@pytest.fixture(scope="module")
def trained():
    pf = ContextPrefetcher()
    drive_ring(pf, ring_trace(), iterations=60)
    return pf


class TestTopContexts:
    def test_sorted_by_best_score(self, trained):
        tops = top_contexts(trained, count=5)
        scores = [s.best_score for s in tops]
        assert scores == sorted(scores, reverse=True)

    def test_count_respected(self, trained):
        assert len(top_contexts(trained, count=3)) == 3

    def test_trained_prefetcher_has_positive_contexts(self, trained):
        assert top_contexts(trained, count=1)[0].best_score > 0

    def test_cold_prefetcher_empty(self):
        assert top_contexts(ContextPrefetcher()) == []


class TestDistributions:
    def test_attribute_distribution_nonempty(self, trained):
        dist = attribute_set_distribution(trained)
        assert sum(dist.values()) == trained.reducer.occupancy()

    def test_delta_distribution_within_range(self, trained):
        dist = delta_distribution(trained)
        assert dist
        cfg = trained.config
        assert all(cfg.delta_min <= d <= cfg.delta_max for d in dist)
        assert 0 not in dist  # same-line deltas are never stored


class TestStateReport:
    def test_counts_consistent(self, trained):
        report = state_report(trained)
        assert report.cst_occupancy <= report.cst_capacity
        assert report.reducer_occupancy <= report.reducer_capacity
        total = report.positive_candidates + report.negative_candidates
        assert total <= report.cst_occupancy * trained.config.cst_links
        assert 0.0 <= report.queue_hit_rate <= 1.0

    def test_trained_state_has_positive_candidates(self, trained):
        assert state_report(trained).positive_candidates > 0

    def test_render_sections(self, trained):
        text = render_state(trained)
        assert "Prefetcher state" in text
        assert "Attribute selections" in text
        assert "Top" in text
