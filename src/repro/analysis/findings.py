"""Findings: what a rule reports, and how it is rendered.

A finding pins a violation to ``path:line`` so editors and CI logs can
jump straight to it.  The reporter groups findings by file and appends a
per-rule summary; the exit-code contract (0 clean, 1 findings, 2 usage
or internal error) lives in :mod:`repro.analysis.runner`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a source location."""

    path: str  # posix path relative to the package root (e.g. core/cst.py)
    line: int  # 1-based; 0 means "whole file / project"
    rule: str  # e.g. DET001
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic report order: by file, then line, then rule."""
    return sorted(set(findings))


def format_findings(findings: Sequence[Finding]) -> str:
    """Render a full report: one line per finding plus a rule summary."""
    ordered = sort_findings(findings)
    if not ordered:
        return "analysis: clean (0 findings)"
    lines = [f.render() for f in ordered]
    by_rule = Counter(f.rule for f in ordered)
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    lines.append(f"analysis: {len(ordered)} finding(s) [{summary}]")
    return "\n".join(lines)
