"""Figure 5 bench: regenerate the reward-function curve."""

from conftest import run_once

from repro.experiments import fig05_reward as fig05


def test_fig05_reward_curve(benchmark):
    result = run_once(benchmark, fig05.run, 80)
    curve = dict(result.curve)
    lo, hi = result.window
    # paper shape: negative edges, positive bell peaking at the center
    assert all(curve[d] < 0 for d in range(0, lo))
    assert all(curve[d] >= 1 for d in range(lo, hi + 1))
    assert all(curve[d] < 0 for d in range(hi + 1, 81))
    assert curve[result.center] == result.peak
    # the Section 4.3 example lands in the paper's ~10-90 range, near 30
    assert 15 <= result.example_distance <= 60
    print()
    print(fig05.render(result))
