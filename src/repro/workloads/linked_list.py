"""Linked-list μbenchmarks: traversal and insertion sort (Figure 1).

These are the paper's ``list`` and ``listsort`` μkernels.  Nodes are
allocated from a *shuffled* heap, so address order bears no relation to
list order — the regime where spatio-temporal prefetchers fail and
semantic locality is the only signal left.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.trace import Heap, TraceBuilder, TraceProgram

#: node layout: key @0, payload @8, next pointer @16 (padded to 32 bytes)
NODE_BYTES = 32
KEY_OFFSET = 0
NEXT_OFFSET = 16


@dataclass
class _Node:
    addr: int
    key: int
    next: "_Node | None" = None


class ListTraversalProgram(TraceProgram):
    """The ``list`` μkernel: repeated full traversals of a linked list."""

    name = "list"
    suite = "ukernel-ds"

    def __init__(
        self,
        *,
        num_nodes: int = 3000,
        iterations: int = 10,
        placement: str = "shuffled",
        heap_utilization: float = 0.5,
        seed: int = 7,
    ):
        super().__init__(seed=seed)
        self.num_nodes = num_nodes
        self.iterations = iterations
        self.placement = placement
        self.heap_utilization = heap_utilization

    def _build_list(self, heap: Heap, rng: random.Random) -> _Node:
        nodes = [
            _Node(addr=heap.alloc(NODE_BYTES), key=rng.randrange(1 << 20))
            for _ in range(self.num_nodes)
        ]
        for a, b in zip(nodes, nodes[1:]):
            a.next = b
        return nodes[0]

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(
            placement=self.placement,
            utilization=self.heap_utilization,
            seed=self.seed,
        )
        tb = TraceBuilder()
        head = self._build_list(heap, rng)
        next_hints = tb.pointer_hints("list_node", NEXT_OFFSET)

        for _ in range(self.iterations):
            node = head
            first = True
            while node is not None:
                tb.load(
                    node.addr + KEY_OFFSET,
                    "list.key",
                    value=node.key,
                    depends=not first,
                    gap=1,
                )
                nxt = node.next
                tb.load(
                    node.addr + NEXT_OFFSET,
                    "list.next",
                    value=nxt.addr if nxt else 0,
                    depends=not first,
                    hints=next_hints,
                    gap=1,
                )
                tb.branch(nxt is not None)
                node = nxt
                first = False
        return tb


class InsertionSortProgram(TraceProgram):
    """The ``listsort`` μkernel and the Figure 1 case study.

    Elements with random keys are inserted one by one into a sorted linked
    list; every insertion re-traverses the sorted prefix.  Physically the
    nodes scatter (dynamic allocation into a shuffled heap), but logically
    the same sorted sequence is walked on every insertion — the canonical
    demonstration of semantic locality (Figure 1).
    """

    name = "listsort"
    suite = "ukernel-alg"

    def __init__(
        self,
        *,
        num_elements: int = 100,
        placement: str = "shuffled",
        node_bytes: int = NODE_BYTES,
        trace_from: int = 0,
        heap_utilization: float = 0.5,
        seed: int = 7,
    ):
        """``trace_from`` selects a simulation *phase*: insertions before
        it build the list silently (the warm-up), only later insertions
        emit accesses.  This is how a memory-bound listsort run is traced
        without paying for the full O(n²) access stream (the paper
        likewise simulates steady-state phases, Section 6)."""
        super().__init__(seed=seed)
        if not 0 <= trace_from < num_elements:
            raise ValueError("trace_from must fall inside the element range")
        self.num_elements = num_elements
        self.placement = placement
        self.node_bytes = node_bytes
        self.trace_from = trace_from
        self.heap_utilization = heap_utilization
        #: (access ordinal, byte address, logical list index) — Figure 1
        self.figure1_series: list[tuple[int, int, int]] = []

    def build(self) -> TraceBuilder:
        rng = random.Random(self.seed)
        heap = Heap(
            placement=self.placement,
            utilization=self.heap_utilization,
            seed=self.seed,
        )
        tb = TraceBuilder()
        next_offset = min(NEXT_OFFSET, self.node_bytes - 8)
        next_hints = tb.pointer_hints("sort_node", next_offset)
        self.figure1_series = []

        head: _Node | None = None
        for count in range(self.num_elements):
            traced = count >= self.trace_from
            key = rng.randrange(1 << 20)
            new = _Node(addr=heap.alloc(self.node_bytes), key=key)
            if traced:
                # store the new node's key (initialisation)
                tb.store(new.addr + KEY_OFFSET, "sort.init", gap=4)

            # traverse the sorted list to the insertion point
            prev: _Node | None = None
            node = head
            logical = 0
            first = True
            while node is not None and node.key <= key:
                if traced:
                    self.figure1_series.append((len(tb), node.addr, logical))
                    tb.load(
                        node.addr + KEY_OFFSET,
                        "sort.key",
                        value=node.key,
                        depends=not first,
                        reg_value=key,
                        gap=1,
                    )
                    tb.branch(True)  # continue traversal
                nxt = node.next
                if traced:
                    tb.load(
                        node.addr + next_offset,
                        "sort.next",
                        value=nxt.addr if nxt else 0,
                        depends=not first,
                        hints=next_hints,
                        reg_value=key,
                        gap=1,
                    )
                prev, node = node, nxt
                logical += 1
                first = False

            # relink
            new.next = node
            if prev is None:
                head = new
            else:
                prev.next = new
            if traced:
                tb.branch(False)  # loop exit
                tb.store(new.addr + next_offset, "sort.link", hints=next_hints, gap=1)
                if prev is not None:
                    tb.store(
                        prev.addr + next_offset,
                        "sort.relink",
                        hints=next_hints,
                        gap=1,
                    )
        return tb
