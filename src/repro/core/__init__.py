"""The paper's primary contribution: the context-based prefetcher.

The prefetcher approximates *semantic locality* with a contextual-bandits
reinforcement-learning loop (Section 4): it hashes hardware and software
attributes into a context, associates contexts with the addresses observed
shortly after them, scores those associations with a bell-shaped reward
keyed to prefetch timeliness, and selects prefetch actions ε-greedily.

Component map (Figure 6 of the paper):

* collection unit — :mod:`repro.core.history` + :meth:`ContextPrefetcher`
* prediction unit — :mod:`repro.core.cst` + :mod:`repro.core.bandit`
* feedback unit — :mod:`repro.core.prefetch_queue` + :mod:`repro.core.reward`
* online feature selection — :mod:`repro.core.reducer`
"""

from repro.core.attributes import Attribute, AttributeSet, ALL_ATTRIBUTES
from repro.core.config import ContextPrefetcherConfig
from repro.core.context import ContextCapture, context_hash
from repro.core.cst import CSTEntry, ContextStatesTable
from repro.core.history import HistoryQueue
from repro.core.prefetch_queue import PrefetchQueue, QueueEntry
from repro.core.prefetcher import ContextPrefetcher
from repro.core.reducer import Reducer, ReducerEntry
from repro.core.reward import RewardFunction, target_prefetch_distance

__all__ = [
    "ALL_ATTRIBUTES",
    "Attribute",
    "AttributeSet",
    "ContextCapture",
    "ContextPrefetcher",
    "ContextPrefetcherConfig",
    "ContextStatesTable",
    "CSTEntry",
    "HistoryQueue",
    "PrefetchQueue",
    "QueueEntry",
    "Reducer",
    "ReducerEntry",
    "RewardFunction",
    "context_hash",
    "target_prefetch_distance",
]
