"""Analysis runner: discovery, rule execution, reporting, exit codes.

``analyze`` is the library entry point (used by the CLI, ``make lint``
and the test suite); ``main`` is the argparse front-end behind
``python -m repro lint`` and ``python -m repro.analysis``.

Exit codes: 0 — clean; 1 — findings; 2 — usage or setup error.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, format_findings, sort_findings
from repro.analysis.registry import Rule, all_rules, rule_catalogue
from repro.analysis.visitor import NodeRule, Project, load_project, run_node_rules

#: the package this pass audits by default: src/repro itself
DEFAULT_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_MANIFEST = Path(__file__).resolve().with_name("budget_manifest.json")


def load_manifest(path: Path | None = None) -> dict:
    """Read the hardware-budget manifest (the checked-in one by default)."""
    return json.loads((path or DEFAULT_MANIFEST).read_text(encoding="utf-8"))


def analyze(
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
    manifest: dict | None = None,
    project: Project | None = None,
    suppress: bool = True,
) -> list[Finding]:
    """Run the pass and return its findings, deterministically ordered.

    Inline ``# repro: noqa[<RULE>]`` suppressions are applied by default
    (and audited for staleness); pass ``suppress=False`` for the raw
    finding stream.
    """
    from repro.analysis.suppress import apply_suppressions

    if project is None:
        if manifest is None:
            manifest = load_manifest()
        project = load_project(root or DEFAULT_ROOT, manifest=manifest)
    selected = list(rules) if rules is not None else all_rules()

    findings: list[Finding] = list(project.parse_errors)
    node_rules = [r for r in selected if isinstance(r, NodeRule)]
    findings.extend(run_node_rules(project, node_rules))
    for rule in selected:
        if not isinstance(rule, NodeRule):
            findings.extend(rule.check(project))
    if suppress:
        findings = apply_suppressions(
            findings, project, tuple(r.rule_id for r in selected)
        )
    return sort_findings(findings)


def _select_rules(selectors: str | None) -> list[Rule]:
    """Resolve a comma-separated prefix list against the catalogue.

    Every prefix must match at least one registered rule id — a typo'd
    family silently matching nothing would disable the very checks the
    caller asked for, so unknown prefixes are a usage error (exit 2).
    """
    rules = all_rules()
    if not selectors:
        return rules
    prefixes = [s.strip() for s in selectors.split(",") if s.strip()]
    known = ", ".join(r.rule_id for r in rules)
    if not prefixes:
        raise SystemExit(f"error: empty rule selector; known rules: {known}")
    unknown = [
        p for p in prefixes if not any(r.rule_id.startswith(p) for r in rules)
    ]
    if unknown:
        raise SystemExit(
            f"error: unknown rule prefix(es) {', '.join(sorted(unknown))}; "
            f"known rules: {known}"
        )
    return [r for r in rules if r.rule_id.startswith(tuple(prefixes))]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "static-analysis pass enforcing determinism, hardware-budget, "
            "prefetcher-contract, and experiment-hygiene invariants"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package root to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        help="hardware-budget manifest (default: the checked-in one)",
    )
    parser.add_argument(
        "--rules",
        "--select",
        dest="rules",
        default=None,
        metavar="PREFIXES",
        help=(
            "comma-separated rule-id prefixes to run (e.g. DET,RACE); "
            "unknown prefixes are an error"
        ),
    )
    parser.add_argument(
        "--format",
        dest="format",
        choices=("text", "sarif", "github"),
        default="text",
        help="output format: human text, SARIF 2.1.0, or GitHub annotations",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue with per-code descriptions",
    )
    return parser


def _print_catalogue() -> None:
    for rule_id, cls in rule_catalogue().items():
        print(f"{rule_id:8s} {cls.title}")
        for code, desc in sorted(getattr(cls, "codes", {}).items()):
            print(f"  {code:9s} {desc}")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalogue()
        return 0
    root = (args.root or DEFAULT_ROOT).resolve()
    if not root.is_dir():
        print(f"error: {root} is not a directory")
        return 2
    try:
        manifest = load_manifest(args.manifest)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load budget manifest: {exc}")
        return 2
    try:
        rules = _select_rules(args.rules)
    except SystemExit as exc:
        print(exc)
        return 2
    findings = analyze(root=root, rules=rules, manifest=manifest)
    if args.format == "sarif":
        from repro.analysis.sarif import format_sarif

        print(format_sarif(findings, root))
    elif args.format == "github":
        from repro.analysis.sarif import format_github

        out = format_github(findings, root)
        if out:
            print(out)
        print(format_findings(findings))
    else:
        print(format_findings(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
