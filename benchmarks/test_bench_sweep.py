"""Benchmark the standard sweep itself (the engine behind Figures 9-12).

The parallel variant exercises the job engine end to end (spawned
workers, codec round-trip, ordered merge); compare the two runs to
measure the speedup on the current machine.  ``REPRO_BENCH_JOBS``
overrides the parallel worker count (default 4).
"""

import os

from conftest import bench_sweep_impl, run_once


def test_bench_standard_sweep(benchmark):
    comparison = run_once(benchmark, bench_sweep_impl, jobs=1)
    assert len(comparison.workloads()) == 6
    assert len(comparison.prefetchers()) == 6


def test_bench_standard_sweep_parallel(benchmark):
    jobs = max(2, int(os.environ.get("REPRO_BENCH_JOBS", "4")))
    comparison = run_once(benchmark, bench_sweep_impl, jobs=jobs)
    assert len(comparison.workloads()) == 6
    assert len(comparison.prefetchers()) == 6
