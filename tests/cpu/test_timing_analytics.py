"""Analytic cross-checks of the timing model against closed-form bounds.

For simple regular traces the expected cycle counts can be derived by
hand; these tests pin the model to those derivations so timing changes
cannot drift silently.
"""

import pytest

from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.nopf import NoPrefetcher
from repro.sim.simulator import Simulator
from repro.workloads.trace import TraceBuilder


def chase_trace(n, *, stride=4096, gap=1):
    """Dependent chain of distinct lines (serial DRAM misses)."""
    tb = TraceBuilder()
    for i in range(n):
        tb.load(0x100000 + i * stride, "chase", depends=True, gap=gap)
    return tb.accesses


def independent_trace(n, *, stride=4096, gap=1):
    tb = TraceBuilder()
    for i in range(n):
        tb.load(0x100000 + i * stride, "indep", gap=gap)
    return tb.accesses


class TestClosedFormBounds:
    def test_serial_chase_costs_one_dram_latency_per_access(self):
        n = 100
        result = Simulator(NoPrefetcher()).run(chase_trace(n))
        per_access = result.cycles / n
        # each hop waits for the previous completion: ~322 cycles
        assert per_access == pytest.approx(322, rel=0.05)

    def test_independent_misses_bounded_by_mshr_mlp(self):
        n = 200
        result = Simulator(NoPrefetcher()).run(independent_trace(n))
        per_access = result.cycles / n
        # 4 L1 MSHRs -> at best 322/4 ≈ 80 cycles per miss
        assert per_access == pytest.approx(322 / 4, rel=0.10)

    def test_l2_resident_chase_is_far_cheaper_than_dram(self):
        # 1200 lines at stride 128: too many for the L1's conflict sets,
        # comfortably L2-resident.  The second pass pays L2-hit chases.
        first = chase_trace(1200, stride=128)
        trace = first + first
        result = Simulator(NoPrefetcher()).run(trace)
        per_access = result.cycles / 2400
        # average of a DRAM pass (~322) and an L2 pass (~22) is ~172
        assert per_access < 250

    def test_dram_bandwidth_floor(self):
        # far more parallelism than the channel can serve: with 4cy per
        # line, 400 independent lines need >= 1600 cycles of channel time
        config = HierarchyConfig(l1_mshrs=64)
        result = Simulator(NoPrefetcher(), hierarchy_config=config).run(
            independent_trace(400)
        )
        assert result.cycles >= 400 * 4

    def test_frontend_floor(self):
        # all-hit trace: cycles ~= instructions / width
        tb = TraceBuilder()
        for _ in range(500):
            for i in range(4):
                tb.load(0x100000 + i * 64, "hot", gap=7)
        result = Simulator(NoPrefetcher()).run(tb.accesses)
        floor = result.instructions / 4
        assert result.cycles == pytest.approx(floor, rel=0.15)

    def test_gap_instructions_cost_frontend_time(self):
        lean = Simulator(NoPrefetcher()).run(chase_trace(50, gap=1))
        dense = Simulator(NoPrefetcher()).run(chase_trace(50, gap=200))
        # 200-instruction gaps at 4-wide add ~50 cycles per access but
        # overlap with the 322-cycle miss -> totals stay close
        assert dense.cycles < lean.cycles * 1.3
