"""Multi-phase simulation (Section 6 of the paper).

The paper simulates several distinct execution phases per benchmark
("the exact number of phases vary between benchmarks ... spanning
50-100M instructions each") and reports per-benchmark aggregates.  This
module splits a workload trace into contiguous phases, runs each one,
and aggregates: total instructions over total cycles (a weighted-IPC
aggregate), summed cache statistics, and per-phase results for
inspection.

Prefetcher state handling is configurable: ``cold_start=True`` resets the
prefetcher between phases (each phase trains from scratch, as when phases
come from separate simulation checkpoints), ``False`` keeps learned state
across phases (one long run observed in windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prefetchers.base import Prefetcher
from repro.sim.config import PREFETCHER_FACTORIES
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryAccess


@dataclass
class PhasedResult:
    """Aggregate over all phases plus the per-phase breakdown."""

    workload: str
    prefetcher: str
    phases: list[SimulationResult] = field(default_factory=list)

    @property
    def instructions(self) -> int:
        return sum(p.instructions for p in self.phases)

    @property
    def cycles(self) -> int:
        return sum(p.cycles for p in self.phases)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_mpki(self) -> float:
        misses = sum(p.l1.misses for p in self.phases)
        return 1000.0 * misses / self.instructions if self.instructions else 0.0

    @property
    def l2_mpki(self) -> float:
        misses = sum(p.l2.misses for p in self.phases)
        return 1000.0 * misses / self.instructions if self.instructions else 0.0

    def speedup_over(self, baseline: "PhasedResult") -> float:
        return self.ipc / baseline.ipc if baseline.ipc else 0.0

    def ipc_variation(self) -> float:
        """Max/min per-phase IPC ratio — how phase-dependent the workload is."""
        ipcs = [p.ipc for p in self.phases if p.ipc > 0]
        if not ipcs:
            return 0.0
        return max(ipcs) / min(ipcs)


def split_phases(
    trace: list[MemoryAccess], num_phases: int
) -> list[list[MemoryAccess]]:
    """Split a trace into ``num_phases`` contiguous, near-equal windows."""
    if num_phases < 1:
        raise ValueError("need at least one phase")
    if num_phases > len(trace):
        raise ValueError("more phases than accesses")
    size = len(trace) / num_phases
    bounds = [round(i * size) for i in range(num_phases + 1)]
    return [trace[bounds[i] : bounds[i + 1]] for i in range(num_phases)]


def run_phased(
    trace: list[MemoryAccess],
    prefetcher_name: str,
    *,
    workload_name: str = "trace",
    num_phases: int = 4,
    cold_start: bool = True,
    native: bool | None = None,
) -> PhasedResult:
    """Simulate ``trace`` as ``num_phases`` distinct phases."""
    from repro.sim.parallel import default_execution

    effective_native = default_execution().native if native is None else native
    result = PhasedResult(workload=workload_name, prefetcher=prefetcher_name)
    prefetcher: Prefetcher | None = None
    start_index = 0
    for i, phase in enumerate(split_phases(trace, num_phases)):
        if prefetcher is None or cold_start:
            prefetcher = PREFETCHER_FACTORIES[prefetcher_name]()
            start_index = 0
        # each phase gets a fresh memory system (checkpoint semantics); in
        # warm mode the prefetcher keeps its learned state and the access
        # indices continue where the previous phase stopped; the native
        # kernel keys its prefetcher handle to the object, so warm state
        # carries across phases there too
        sim = Simulator(prefetcher, native=effective_native)
        result.phases.append(
            sim.run(phase, workload_name=f"{workload_name}#p{i}", start_index=start_index)
        )
        start_index += len(phase)
    return result
