"""Exhaustive semantics tests for the IR's arithmetic and compare ops."""

import pytest

from repro.compiler.interp import Interpreter, TrapError
from repro.compiler.ir import FunctionBuilder


def run_op(kind, op, a, b):
    fb = FunctionBuilder(f"op_{op}", params=("a", "b"))
    fb.block("entry")
    if kind == "arith":
        fb.arith("r", op, "a", "b")
    else:
        fb.cmp("r", op, "a", "b")
    fb.ret("r")
    return Interpreter(fb.build()).run(a, b).return_value


class TestArithOps:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 7, 5, 12),
            ("sub", 7, 5, 2),
            ("mul", 7, 5, 35),
            ("div", 7, 5, 1),
            ("div", 20, 5, 4),
            ("mod", 7, 5, 2),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 3, 4, 48),
            ("shr", 48, 4, 3),
        ],
    )
    def test_semantics(self, op, a, b, expected):
        assert run_op("arith", op, a, b) == expected

    def test_immediate_operands(self):
        fb = FunctionBuilder("imm")
        fb.block("entry")
        fb.arith("r", "add", 40, 2)
        fb.ret("r")
        assert Interpreter(fb.build()).run().return_value == 42

    def test_unknown_op_traps(self):
        fb = FunctionBuilder("bad", params=("a",))
        fb.block("entry")
        fb.arith("r", "pow", "a", "a")
        fb.ret("r")
        with pytest.raises(TrapError, match="unknown arith"):
            Interpreter(fb.build()).run(2)


class TestCmpOps:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("eq", 3, 3, 1),
            ("eq", 3, 4, 0),
            ("ne", 3, 4, 1),
            ("lt", 3, 4, 1),
            ("lt", 4, 3, 0),
            ("le", 3, 3, 1),
            ("gt", 4, 3, 1),
            ("ge", 3, 3, 1),
            ("ge", 2, 3, 0),
        ],
    )
    def test_semantics(self, op, a, b, expected):
        assert run_op("cmp", op, a, b) == expected

    def test_unknown_cmp_traps(self):
        fb = FunctionBuilder("bad", params=("a",))
        fb.block("entry")
        fb.cmp("r", "spaceship", "a", "a")
        fb.ret("r")
        with pytest.raises(TrapError, match="unknown cmp"):
            Interpreter(fb.build()).run(2)


class TestTaintPropagation:
    def test_arith_propagates_load_taint(self):
        # r = load p->next; q = r + 8; load q->next  => dependent access
        fb = FunctionBuilder("taint", params=("p",))
        fb.struct("node", [("next", 0, "ptr:node")])
        fb.block("entry")
        fb.load("r", "p", "node", "next")
        fb.arith("q", "add", "r", 0)
        fb.load("s", "q", "node", "next")
        fb.ret("s")
        interp = Interpreter(fb.build())
        interp.memory.write(0x1000, 0x2000)
        interp.memory.write(0x2000, 0)
        result = interp.run(0x1000)
        loads = [a for a in result.trace if a.is_load]
        assert not loads[0].depends_on_prev
        assert loads[1].depends_on_prev

    def test_overwriting_register_clears_taint(self):
        fb = FunctionBuilder("clear", params=("p", "q"))
        fb.struct("node", [("next", 0, "ptr:node")])
        fb.block("entry")
        fb.load("r", "p", "node", "next")
        fb.arith("r", "add", "q", 0)  # r no longer derived from the load
        fb.load("s", "r", "node", "next")
        fb.ret("s")
        interp = Interpreter(fb.build())
        interp.memory.write(0x1000, 0x9999)
        interp.memory.write(0x2000, 0)
        result = interp.run(0x1000, 0x2000)
        loads = [a for a in result.trace if a.is_load]
        assert not loads[1].depends_on_prev
