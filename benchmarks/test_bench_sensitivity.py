"""Sensitivity bench: continuous-knob sweep of the context prefetcher."""

from conftest import run_once

from repro.experiments import sensitivity

WORKLOADS = ("list", "array")


def test_sensitivity_grid(benchmark):
    result = run_once(benchmark, sensitivity.run, "small", WORKLOADS)

    # the paper's default should be competitive on every knob: within 15%
    # of the best setting found (it need not win outright)
    defaults = {
        "window": "paper(18-50)",
        "cst_links": "4",
        "queue_depth": "128",
        "max_degree": "4",
        "epsilon_max": "0.20",
    }
    for knob, default_label in defaults.items():
        settings = result.grid[knob]
        best = max(settings.values())
        assert settings[default_label] > 0.85 * best, knob
    print()
    print(sensitivity.render(result))
