"""Component microbenchmarks: per-operation throughput of the hot paths.

Unlike the figure benches (one-shot experiment regenerations), these are
classic pytest-benchmark loops measuring steady-state cost per operation
of the structures the simulator leans on.
"""

import random

from repro.core.attributes import AttributeSet
from repro.core.config import ContextPrefetcherConfig
from repro.core.context import context_hash
from repro.core.cst import ContextStatesTable
from repro.core.prefetcher import ContextPrefetcher
from repro.hints import RefForm, SemanticHints
from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import Hierarchy
from repro.prefetchers.base import AccessInfo
from repro.prefetchers.ghb import GHBPrefetcher
from repro.prefetchers.sms import SMSPrefetcher
from repro.prefetchers.stride import StridePrefetcher


def test_bench_context_hash(benchmark):
    values = tuple(range(1, 9))
    active = AttributeSet()
    benchmark(context_hash, values, active, 19)


def test_bench_cst_add_association(benchmark):
    cst = ContextStatesTable(ContextPrefetcherConfig())
    keys = [random.Random(1).randrange(1 << 19) for _ in range(512)]
    state = {"i": 0}

    def add():
        i = state["i"]
        cst.add_association(keys[i % 512], (i % 100) - 50 or 1)
        state["i"] = i + 1

    benchmark(add)


def test_bench_l1_cache_lookup_fill(benchmark):
    cache = Cache(CacheConfig(size_bytes=64 * 1024, ways=8))
    state = {"i": 0}

    def step():
        i = state["i"]
        line = (i * 7919) % 4096
        if cache.lookup(line) is None:
            cache.fill(line)
        state["i"] = i + 1

    benchmark(step)


def test_bench_hierarchy_demand_access(benchmark):
    hier = Hierarchy()
    state = {"i": 0, "now": 0}

    def step():
        state["now"] += 4
        hier.demand_access(0x10000 + (state["i"] % 8192) * 64, state["now"])
        state["i"] += 1

    benchmark(step)


def _drive(prefetcher_factory):
    pf = prefetcher_factory()
    hints = SemanticHints(type_id=1, link_offset=16, ref_form=RefForm.ARROW)
    addrs = [0x100000 + i * 256 for i in range(64)]
    state = {"i": 0}

    def step():
        i = state["i"]
        info = AccessInfo(
            index=i,
            cycle=0,
            addr=addrs[i % 64],
            pc=0x400008,
            last_value=addrs[(i - 1) % 64],
            hints=hints,
            primary_miss=True,
        )
        pf.on_access(info)
        state["i"] = i + 1

    return step


def test_bench_context_prefetcher_access(benchmark):
    benchmark(_drive(ContextPrefetcher))


def test_bench_stride_prefetcher_access(benchmark):
    benchmark(_drive(StridePrefetcher))


def test_bench_ghb_prefetcher_access(benchmark):
    benchmark(_drive(GHBPrefetcher))


def test_bench_sms_prefetcher_access(benchmark):
    benchmark(_drive(SMSPrefetcher))
