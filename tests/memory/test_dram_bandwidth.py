"""Tests for the DRAM service-rate (bandwidth) model."""

from repro.memory.hierarchy import Hierarchy, HierarchyConfig


def hier(interval=4, **kw) -> Hierarchy:
    return Hierarchy(HierarchyConfig(dram_service_interval=interval, **kw))


class TestChannelQueueing:
    def test_single_fetch_pays_base_latency(self):
        h = hier()
        result = h.demand_access(0x10000, now=0)
        assert result.latency == 322

    def test_burst_queues_behind_channel(self):
        h = hier(interval=50, l1_mshrs=8)
        first = h.demand_access(0x10000, now=0)
        second = h.demand_access(0x20000, now=0)
        assert first.latency == 322
        assert second.latency == 322 + 50  # waits one service slot

    def test_spaced_fetches_do_not_queue(self):
        h = hier(interval=50, l1_mshrs=8)
        h.demand_access(0x10000, now=0)
        late = h.demand_access(0x20000, now=1000)
        assert late.latency == 322

    def test_l2_hits_bypass_the_channel(self):
        h = hier(interval=1000)
        first = h.demand_access(0x10000, now=0)
        # evict from the 8-way L1 set via 8 conflicting fills
        t = first.latency + 10
        for i in range(1, 9):
            r = h.demand_access(0x10000 + i * 8192, now=t)
            t += r.latency + 10
        result = h.demand_access(0x10000, now=t + 2000)
        assert result.l2_hit
        assert result.latency == 22  # no DRAM involvement

    def test_prefetch_traffic_charges_the_channel(self):
        h = hier(interval=100)
        h.prefetch(0x90000, now=0)
        demand = h.demand_access(0x10000, now=0)
        assert demand.latency == 322 + 100  # behind the prefetch's slot

    def test_no_future_reservation_spiral(self):
        # an MSHR-stalled demand must not reserve a channel slot at its
        # (future) issue time and serialise everyone behind it
        h = hier(interval=4, l1_mshrs=1)
        h.demand_access(0x10000, now=0)  # occupies the only MSHR to t=322
        stalled = h.demand_access(0x20000, now=10)  # waits for the MSHR
        assert stalled.latency >= 322
        # a later, unrelated fetch after everything drained is unaffected
        clean = h.demand_access(0x30000, now=5000)
        assert clean.latency == 322

    def test_fetch_counter(self):
        h = hier()
        h.demand_access(0x10000, now=0)
        h.demand_access(0x10000 + 8, now=1)  # same line: merge, no fetch
        h.demand_access(0x20000, now=2)
        assert h.dram_fetches == 2
