"""repro — Semantic Locality and Context-based Prefetching (ISCA 2015).

A from-scratch Python reproduction of Peled, Mannor, Weiser & Etsion,
"Semantic Locality and Context-based Prefetching Using Reinforcement
Learning" (ISCA 2015): the context-based RL prefetcher, the baseline
prefetchers it is compared against, a trace-driven out-of-order timing
substrate standing in for gem5, workload models for the paper's benchmark
suites, and an experiment harness regenerating every evaluation figure.

Quickstart::

    from repro import run_workload

    result = run_workload("list", "context")
    baseline = run_workload("list", "none")
    print(f"speedup: {result.speedup_over(baseline):.2f}x")

Package map:

* :mod:`repro.core` — the context-based prefetcher (the contribution)
* :mod:`repro.prefetchers` — stride / GHB / SMS baselines
* :mod:`repro.memory` — caches, MSHRs, DRAM timing
* :mod:`repro.cpu` — branch history and the OoO interval model
* :mod:`repro.workloads` — benchmark models (Table 3)
* :mod:`repro.sim` — the simulator and sweep runner
* :mod:`repro.experiments` — one module per paper figure
"""

from repro.core.config import ContextPrefetcherConfig
from repro.core.prefetcher import ContextPrefetcher
from repro.hints import RefForm, SemanticHints, TypeRegistry
from repro.memory.hierarchy import Hierarchy, HierarchyConfig
from repro.sim.config import PREFETCHER_FACTORIES, SystemConfig, make_prefetcher
from repro.sim.metrics import SimulationResult, geomean
from repro.sim.runner import ComparisonResult, compare, run_workload, storage_sweep
from repro.sim.simulator import Simulator
from repro.workloads.suites import all_workloads, get_workload, workloads_in_suite

__version__ = "1.0.0"

__all__ = [
    "ComparisonResult",
    "ContextPrefetcher",
    "ContextPrefetcherConfig",
    "Hierarchy",
    "HierarchyConfig",
    "PREFETCHER_FACTORIES",
    "RefForm",
    "SemanticHints",
    "SimulationResult",
    "Simulator",
    "SystemConfig",
    "TypeRegistry",
    "all_workloads",
    "compare",
    "geomean",
    "get_workload",
    "make_prefetcher",
    "run_workload",
    "storage_sweep",
    "workloads_in_suite",
    "__version__",
]
