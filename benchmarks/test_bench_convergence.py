"""Convergence bench: the RL loop's training trajectory at scale."""

from conftest import run_once

from repro.experiments import convergence

WORKLOADS = ("list", "graph500-list")


def test_convergence_trajectories(benchmark):
    result = run_once(
        benchmark, convergence.run, WORKLOADS, samples=8, limit=40000
    )
    for name in WORKLOADS:
        points = result.trajectories[name]
        # Section 7.1's prose: the predictor converges — accuracy rises,
        # exploration falls, the degree throttle opens
        assert points[-1].accuracy > points[0].accuracy, name
        assert points[-1].epsilon < points[0].epsilon, name
        assert points[-1].degree >= points[0].degree, name
        # and it puts the CST to use
        assert points[-1].cst_occupancy > 10, name
    print()
    print(convergence.render(result))
