"""Trace records, the trace builder, and the heap-allocation model.

A workload emits :class:`MemoryAccess` records carrying everything the
machine would expose to the prefetcher: the address and PC, instruction
gaps (for IPC/MPKI accounting), branch outcomes (for the global history
register), the loaded value (the next access's ``last_value`` attribute),
a live register value, data-dependence flags (pointer chasing), and the
compiler hints.

The :class:`Heap` models a dynamic allocator.  Real allocators hand out
same-sized objects from per-size pools, so objects allocated close in time
land close in memory even when logically unrelated — and objects freed and
reallocated scatter.  The ``placement`` modes capture both regimes; the
paper's Figure 1 scatter comes from the ``shuffled`` mode.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.hints import NO_HINTS, RefForm, SemanticHints, TypeRegistry


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One demand memory access as the core's memory unit sees it."""

    addr: int
    pc: int
    is_load: bool = True
    #: non-memory instructions executed since the previous access
    inst_gap: int = 2
    #: the address of this access was produced by the previous load
    depends_on_prev: bool = False
    #: branch outcomes since the previous access, oldest first
    branches: tuple[bool, ...] = ()
    #: live "key" register contents (e.g. a search key)
    reg_value: int = 0
    #: data returned by this access (next access observes it as last_value)
    value: int = 0
    hints: SemanticHints = NO_HINTS


class Heap:
    """Bump/pool allocator with controllable placement randomness.

    ``placement``:

    * ``"sequential"`` — classic bump allocation; consecutive allocations
      are adjacent (spatially friendly layouts, e.g. arrays of nodes).
    * ``"shuffled"`` — allocations land at a random free slot within a
      sliding window of ``shuffle_window`` bytes, modelling a churned
      heap where allocation order no longer matches address order.

    ``utilization`` (shuffled mode) models a heap shared with the rest of
    the program: only that fraction of each window's slots is handed out;
    the remainder stands for other live objects and fragmentation.  This
    matters for spatial prefetchers — a traversal over a structure at 50%
    heap utilization touches a different subset of lines in every region,
    so region footprints stop being learnable.
    """

    def __init__(
        self,
        base: int = 0x1000_0000,
        *,
        placement: str = "sequential",
        shuffle_window: int = 8192,
        utilization: float = 1.0,
        seed: int = 1234,
        align: int = 8,
    ):
        if placement not in ("sequential", "shuffled"):
            raise ValueError(f"unknown placement {placement!r}")
        if base <= 0:
            raise ValueError("heap base must be positive")
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        self.base = base
        self.placement = placement
        self.shuffle_window = shuffle_window
        self.utilization = utilization
        self.align = align
        self._rng = random.Random(seed)
        self._cursor = base
        self._window_slots: list[int] = []
        self._window_slot_size = 0
        self.allocated_bytes = 0

    def _bump(self, size: int) -> int:
        addr = self._cursor
        self._cursor += (size + self.align - 1) & ~(self.align - 1)
        return addr

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the object's base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        self.allocated_bytes += size
        if self.placement == "sequential":
            return self._bump(size)

        # Shuffled: carve the window into size-class slots, keep only the
        # utilized fraction (the rest belongs to "other" program data),
        # and hand slots out in random order, refilling with a fresh
        # window when drained.
        slot = (size + self.align - 1) & ~(self.align - 1)
        if not self._window_slots or slot != self._window_slot_size:
            start = self._cursor
            count = max(1, self.shuffle_window // slot)
            slots = [start + i * slot for i in range(count)]
            if self.utilization < 1.0:
                keep = max(1, int(count * self.utilization))
                slots = self._rng.sample(slots, keep)
            self._rng.shuffle(slots)
            self._window_slots = slots
            self._window_slot_size = slot
            self._cursor = start + count * slot
        return self._window_slots.pop()

    def span(self) -> tuple[int, int]:
        """(low, high) byte addresses of everything carved so far."""
        return self.base, self._cursor


@dataclass
class TraceBuilder:
    """Incremental trace construction with PC/site and branch bookkeeping.

    Workloads call :meth:`site` once per load/store site in their "code"
    to obtain a stable PC, then emit accesses through :meth:`load` /
    :meth:`store`.  Branch outcomes queue up via :meth:`branch` and attach
    to the next access, mirroring how the hardware's global history
    register would have advanced by then.
    """

    code_base: int = 0x40_0000
    type_registry: TypeRegistry = field(default_factory=TypeRegistry)

    def __post_init__(self) -> None:
        self._sites: dict[str, int] = {}
        self._pending_branches: list[bool] = []
        self._pending_gap = 0
        self._accesses: list[MemoryAccess] = []

    # ------------------------------------------------------------------

    def site(self, name: str) -> int:
        """Stable PC for the named load/store site (8 bytes per 'inst')."""
        if name not in self._sites:
            self._sites[name] = self.code_base + 8 * len(self._sites)
        return self._sites[name]

    def type_id(self, name: str) -> int:
        return self.type_registry.type_id(name)

    def branch(self, taken: bool) -> None:
        """Record a branch outcome to attach to the next access."""
        self._pending_branches.append(taken)
        self._pending_gap += 1  # the branch instruction itself

    def gap(self, instructions: int) -> None:
        """Record non-memory compute between accesses."""
        if instructions < 0:
            raise ValueError("instruction gap cannot be negative")
        self._pending_gap += instructions

    # ------------------------------------------------------------------

    def _emit(
        self,
        addr: int,
        pc: int,
        *,
        is_load: bool,
        value: int,
        depends: bool,
        reg_value: int,
        hints: SemanticHints,
        extra_gap: int,
    ) -> MemoryAccess:
        if addr <= 0:
            raise ValueError(f"non-positive address {addr:#x} at pc {pc:#x}")
        access = MemoryAccess(
            addr=addr,
            pc=pc,
            is_load=is_load,
            inst_gap=self._pending_gap + extra_gap,
            depends_on_prev=depends,
            branches=tuple(self._pending_branches),
            reg_value=reg_value,
            value=value,
            hints=hints,
        )
        self._pending_branches.clear()
        self._pending_gap = 0
        self._accesses.append(access)
        return access

    def load(
        self,
        addr: int,
        site: str,
        *,
        value: int = 0,
        depends: bool = False,
        reg_value: int = 0,
        hints: SemanticHints = NO_HINTS,
        gap: int = 2,
    ) -> MemoryAccess:
        return self._emit(
            addr,
            self.site(site),
            is_load=True,
            value=value,
            depends=depends,
            reg_value=reg_value,
            hints=hints,
            extra_gap=gap,
        )

    def store(
        self,
        addr: int,
        site: str,
        *,
        depends: bool = False,
        reg_value: int = 0,
        hints: SemanticHints = NO_HINTS,
        gap: int = 2,
    ) -> MemoryAccess:
        return self._emit(
            addr,
            self.site(site),
            is_load=False,
            value=0,
            depends=depends,
            reg_value=reg_value,
            hints=hints,
            extra_gap=gap,
        )

    # ------------------------------------------------------------------

    def pointer_hints(self, type_name: str, link_offset: int) -> SemanticHints:
        """Hints for a pointer-producing access, as the LLVM pass emits."""
        return SemanticHints(
            type_id=self.type_id(type_name),
            link_offset=link_offset,
            ref_form=RefForm.ARROW,
        )

    def index_hints(self, type_name: str) -> SemanticHints:
        """Hints for an array-indexed access producing an index/pointer."""
        return SemanticHints(
            type_id=self.type_id(type_name),
            link_offset=0,
            ref_form=RefForm.INDEX,
        )

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> list[MemoryAccess]:
        return self._accesses

    def __len__(self) -> int:
        return len(self._accesses)


class TraceProgram(abc.ABC):
    """A benchmark: produces a memory-access trace deterministically."""

    #: short identifier used in figures and the suite registry
    name: str = "program"
    #: Table 3 suite this workload belongs to
    suite: str = "ukernel"

    def __init__(self, *, seed: int = 7):
        self.seed = seed

    @abc.abstractmethod
    def build(self) -> TraceBuilder:
        """Construct and return the full trace."""

    def trace(self) -> list[MemoryAccess]:
        """The access stream (cached per instance)."""
        cached = getattr(self, "_trace_cache", None)
        if cached is None:
            cached = self.build().accesses
            self._trace_cache = cached
        return cached

    def instruction_count(self) -> int:
        """Total instructions in the trace (memory ops + gaps).

        ``inst_gap`` already includes branch instructions, per the
        :class:`TraceBuilder` contract.
        """
        trace = self.trace()
        return sum(a.inst_gap + 1 for a in trace)

    def access_count(self) -> int:
        return len(self.trace())


def interleave(
    streams: Iterable[list[MemoryAccess]], seed: int = 11
) -> list[MemoryAccess]:
    """Randomly interleave several access streams (phase-mix helper)."""
    rng = random.Random(seed)
    cursors = [(list(s), 0) for s in streams if s]
    out: list[MemoryAccess] = []
    live = [[s, 0] for s, _ in cursors]
    while live:
        pick = rng.randrange(len(live))
        stream, pos = live[pick]
        out.append(stream[pos])
        live[pick][1] += 1
        if live[pick][1] >= len(stream):
            live.pop(pick)
    return out
