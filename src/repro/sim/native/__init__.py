"""Batch-oriented native simulation kernel (``repro.sim.native``).

The interpreted per-access loop in :mod:`repro.sim.simulator` is the
reference oracle; this package is its compiled counterpart.  A run is
restructured into phases:

* **decode** — the ``.rpt`` record block reinterprets as a numpy struct
  array (zero-copy from the mmap), and the per-access columns the kernel
  consumes (addresses, PCs, instruction gaps, flags) are extracted
  array-at-a-time.
* **classify** — address classification and cache-index math that is
  pure arithmetic over the columns (line numbers, the 48-bit address
  eligibility scan) runs vectorized in numpy before the kernel starts.
* **kernel** — the inherently sequential state machine (core timing,
  hierarchy, the table-based prefetchers) runs in a cffi-compiled C
  kernel over the decoded columns, chunk-free and allocation-free.
* **finalize** — kernel counters are folded back into the same
  :class:`~repro.sim.metrics.SimulationResult` the interpreted path
  builds.

The context RL prefetcher — the paper's own contribution — runs in the
same kernel: CPython's ``random.Random`` is reproduced bit-for-bit
(MT19937 + ``genrand_res53`` + the exact ``choice``/``choices``
semantics), so the CST/bandit/reward feedback loop is compiled too.
Whenever any phase cannot represent a run exactly — unsupported configs
(degenerate reward bells, subclassed policies), addresses outside the
modelled 48-bit space, branch tuples beyond the u64 bitmap, or a missing
numpy/cffi/toolchain — the run drops to the interpreted scalar path, and
the fallback is logged with a reason the sweep summary aggregates.  The
PERF003 analysis rule pins :data:`VECTOR_PHASES` below: every vectorized
phase must keep its scalar-fallback counterpart, so a one-sided edit
fails ``repro lint``.
"""

from __future__ import annotations

#: (phase, native implementation, scalar fallback) — the contract PERF003
#: pins.  Both sides of every row must exist as importable functions or
#: methods; editing one side without the other fails ``repro lint``.
VECTOR_PHASES = (
    ("decode", "repro.workloads.store:TraceReader.as_array", "repro.workloads.store:TraceReader.materialize"),
    ("classify", "repro.memory.address:lines_of_array", "repro.memory.address:line_of"),
    ("kernel", "repro.sim.native.adapter:phase_kernel", "repro.sim.simulator:Simulator.run"),
    ("kernel-batch", "repro.sim.native.adapter:phase_batch_kernel", "repro.sim.sched.pool:run_batch"),
    ("finalize", "repro.sim.native.adapter:phase_finalize", "repro.sim.simulator:Simulator.run"),
    ("context", "repro.sim.native.adapter:_ctx_config_values", "repro.core.prefetcher:ContextPrefetcher.on_access"),
)


def is_available() -> bool:
    """True when the compiled kernel can be built/loaded in this process."""
    from repro.sim.native.build import kernel_or_none

    return kernel_or_none() is not None


def try_native_run(sim, trace, *, workload_name, limit, start_index, warmup):
    """Attempt a native run; see :func:`repro.sim.native.adapter.try_native_run`."""
    from repro.sim.native import adapter

    return adapter.try_native_run(
        sim,
        trace,
        workload_name=workload_name,
        limit=limit,
        start_index=start_index,
        warmup=warmup,
    )


__all__ = ["VECTOR_PHASES", "is_available", "try_native_run"]
