"""The Context-States Table (CST) — Section 5, "Collection Unit".

Direct-mapped table binding reduced contexts to up to four candidate
address deltas, each with a one-byte score.  Deltas are stored at cache-
line granularity relative to the context's own address (±8kB reach with
the paper's one-byte encoding), which is what keeps each entry at ~9 bytes.
Replacement is score-based: candidates that earned positive rewards
survive; new associations only displace candidates whose score has sunk to
the replacement threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ContextPrefetcherConfig


@dataclass
class Candidate:
    """One context→address association: a delta and its learned score."""

    delta: int  # in delta-granularity units, relative to the context block
    score: int


@dataclass
class CSTEntry:
    tag: int
    candidates: list[Candidate] = field(default_factory=list)
    #: number of reducer entries currently mapping to this entry
    ptr_count: int = 0
    lookups: int = 0
    replacements: int = 0

    def find(self, delta: int) -> Candidate | None:
        for cand in self.candidates:
            if cand.delta == delta:
                return cand
        return None

    def best(self) -> Candidate | None:
        if not self.candidates:
            return None
        return max(self.candidates, key=lambda c: c.score)

    def ranked(self) -> list[Candidate]:
        """Candidates sorted by score, best first (stable for ties)."""
        return sorted(self.candidates, key=lambda c: -c.score)


class ContextStatesTable:
    """Direct-mapped CST with score-based replacement."""

    def __init__(self, config: ContextPrefetcherConfig):
        self.config = config
        self._index_bits = (config.cst_entries - 1).bit_length()
        self._entries: dict[int, CSTEntry] = {}
        self.associations_added = 0
        self.associations_rejected_full = 0
        self.associations_rejected_range = 0
        self.conflict_evictions = 0

    # ------------------------------------------------------------------

    def split_key(self, reduced_hash: int) -> tuple[int, int]:
        """Split the 19-bit reduced hash into (index, tag) per Figure 7."""
        index = reduced_hash & (self.config.cst_entries - 1)
        tag = (reduced_hash >> self._index_bits) & (
            (1 << self.config.cst_tag_bits) - 1
        )
        return index, tag

    def lookup(self, reduced_hash: int) -> CSTEntry | None:
        """Return the entry for ``reduced_hash`` if present with a tag match."""
        index, tag = self.split_key(reduced_hash)
        entry = self._entries.get(index)
        if entry is None or entry.tag != tag:
            return None
        entry.lookups += 1
        return entry

    def _entry_for_update(self, reduced_hash: int) -> CSTEntry:
        """Entry for ``reduced_hash``, (re)allocating on miss or conflict."""
        index, tag = self.split_key(reduced_hash)
        entry = self._entries.get(index)
        if entry is not None and entry.tag == tag:
            return entry
        if entry is not None:
            self.conflict_evictions += 1
        entry = CSTEntry(tag=tag)
        self._entries[index] = entry
        return entry

    # ------------------------------------------------------------------

    def delta_of(self, context_block: int, target_block: int) -> int | None:
        """Delta (in delta-granularity units) or None when out of range.

        Blocks are at the prefetcher's tracking granularity; deltas are
        stored at the coarser cache-line granularity, so nearby blocks in
        the same line collapse to delta 0 (rejected — never self-prefetch).
        """
        cfg = self.config
        scale = cfg.delta_granularity // cfg.block_bytes
        delta = target_block // scale - context_block // scale
        if delta == 0:
            return None
        if not cfg.delta_min <= delta <= cfg.delta_max:
            return None
        return delta

    def add_association(self, reduced_hash: int, delta: int) -> bool:
        """Record that ``delta`` followed the context (data collection).

        Returns True when the association is now present in the table.
        """
        cfg = self.config
        if not cfg.delta_min <= delta <= cfg.delta_max:
            self.associations_rejected_range += 1
            return False
        entry = self._entry_for_update(reduced_hash)
        if entry.find(delta) is not None:
            return True
        if len(entry.candidates) < cfg.cst_links:
            entry.candidates.append(Candidate(delta=delta, score=cfg.initial_score))
            self.associations_added += 1
            return True
        victim = min(entry.candidates, key=lambda c: c.score)
        if victim.score <= cfg.replace_threshold:
            victim.delta = delta
            victim.score = cfg.initial_score
            entry.replacements += 1
            self.associations_added += 1
            return True
        self.associations_rejected_full += 1
        return False

    def apply_reward(self, reduced_hash: int, delta: int, reward: int) -> bool:
        """Add ``reward`` to the association's score (feedback unit)."""
        cfg = self.config
        entry = self.lookup(reduced_hash)
        if entry is None:
            return False
        entry.lookups -= 1  # reward lookups don't count as predictions
        cand = entry.find(delta)
        if cand is None:
            return False
        cand.score = max(cfg.score_min, min(cfg.score_max, cand.score + reward))
        return True

    # ------------------------------------------------------------------
    # reducer-pointer accounting (overload detection, Section 4.4)

    def add_pointer(self, reduced_hash: int) -> None:
        entry = self._entry_for_update(reduced_hash)
        entry.ptr_count += 1

    def remove_pointer(self, reduced_hash: int) -> None:
        index, tag = self.split_key(reduced_hash)
        entry = self._entries.get(index)
        if entry is not None and entry.tag == tag and entry.ptr_count > 0:
            entry.ptr_count -= 1

    def pointer_count(self, reduced_hash: int) -> int:
        entry = self.lookup(reduced_hash)
        if entry is None:
            return 0
        entry.lookups -= 1
        return entry.ptr_count

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
